#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md). The workspace has zero external
# dependencies, so this must succeed on a cold checkout with no network:
# every dependency is an in-workspace path dep (enforced by tests/hermetic.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release && cargo test -q

# Everything else must also compile offline: benches, examples, all targets.
cargo build --offline --workspace --benches --examples
