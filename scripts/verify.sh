#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md). The workspace has zero external
# dependencies, so this must succeed on a cold checkout with no network:
# every dependency is an in-workspace path dep (enforced by tests/hermetic.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

# --quick-scale: just the CI-sized scale sweep — runs the 10^3/10^4 tiers
# and validates that the committed results/BENCH_scale.json still parses
# with all four tiers (the full sweep is expensive and committed; see
# benches/scale_sweep.rs and EXPERIMENTS.md E12).
if [[ "${1:-}" == "--quick-scale" ]]; then
    cargo bench --offline -p chatgraph-bench --bench scale_sweep -- --quick
    exit 0
fi

# --quick-store: the crash-matrix recovery property suite (every-byte
# truncation and bit-flip sweeps, armed crash points, checkpoint
# differentials) plus a small store bench tier validating that the
# committed results/BENCH_store.json still carries the full schema (see
# benches/store.rs and EXPERIMENTS.md E14).
if [[ "${1:-}" == "--quick-store" ]]; then
    cargo test -q --offline -p chatgraph-store
    cargo test -q --offline -p chatgraph-store --test recovery_properties
    cargo bench --offline -p chatgraph-bench --bench store -- --quick
    exit 0
fi

# --quick-serve: the coalescing property suite plus a single-iteration
# duplicate-heavy serving round, validating that the committed
# results/BENCH_serving.json still carries the full schema (env with the
# oversubscription flag, coalescing on/off sections; see benches/serving.rs
# and EXPERIMENTS.md E13).
if [[ "${1:-}" == "--quick-serve" ]]; then
    cargo test -q --offline -p chatgraph-apis --test coalesce_properties
    cargo bench --offline -p chatgraph-bench --bench serving -- --quick
    exit 0
fi

cargo build --release && cargo test -q

# Everything else must also compile offline: benches, examples, all targets.
cargo build --offline --workspace --benches --examples

# Plan scheduler determinism: 1- and 4-worker execution must match the
# sequential reference executor on random valid chains (DESIGN.md §9).
cargo test -q --offline -p chatgraph-apis --test plan_properties

# Plan execution baseline: sequential vs 4-worker vs warm-memo timings,
# written to results/BENCH_plan_exec.json with the measured speedup.
cargo bench --offline -p chatgraph-bench --bench chain_plan_exec

# CSR kernel differential properties: every kernel must equal its
# adjacency-walking reference oracle, at 1 and 4 workers (DESIGN.md §10).
cargo test -q --offline -p chatgraph-graph --test kernel_properties

# CSR kernel baseline: per-kernel reference vs sequential vs parallel CSR
# medians plus the epoch-cache comparison, written to
# results/BENCH_graph_kernels.json.
cargo bench --offline -p chatgraph-bench --bench graph_kernels

# Supervisor fault differentials: a fault-free supervisor is invisible,
# injected faults degrade/abort exactly as modelled at every worker count,
# deadlines cancel cooperatively and retries replay deterministically
# (DESIGN.md §11).
cargo test -q --offline -p chatgraph-apis --test fault_properties

# Supervisor overhead baseline: passive vs armed-fault-free vs all-faulted
# medians, written to results/BENCH_fault_exec.json. The armed overhead must
# stay within bench noise (single-digit percent).
cargo bench --offline -p chatgraph-bench --bench chain_fault_exec

# Serving differentials: N tenants on the shared pool must reply
# bit-identically to the same N sessions run solo at pool widths 1/2/4,
# warm and cold shared memo; poisoning and degraded findings must stay
# within their tenant (DESIGN.md §12).
cargo test -q --offline -p chatgraph-core --test serving_properties

# Coalescing properties: concurrent identical steps execute exactly once,
# results (and failures) are bit-identical to solo runs at widths 1/2/4,
# a panicking leader fails all waiters without hanging, and fault-armed
# supervisors bypass coalescing entirely (DESIGN.md §15).
cargo test -q --offline -p chatgraph-apis --test coalesce_properties

# Serving baseline: requests/sec, sessions/sec, and p50/p95 open-loop
# latency at three pool widths plus solo-vs-shared memo hit rates, written
# to results/BENCH_serving.json. The cross-session hit count must be > 0.
cargo bench --offline -p chatgraph-bench --bench serving

# Delta-CSR differentials: patched snapshots must be bit-identical to full
# rebuilds after random edit sequences, at every worker count and chunking
# strategy, including through the shared CsrCache (DESIGN.md §14).
cargo test -q --offline -p chatgraph-graph --test delta_properties
cargo test -q --offline -p chatgraph-graph --test chunking_determinism

# Scale sweep smoke: 10^3/10^4 tiers plus validation of the committed
# full-sweep artifact (results/BENCH_scale.json, EXPERIMENTS.md E12).
cargo bench --offline -p chatgraph-bench --bench scale_sweep -- --quick

# Durable store crash matrix: recovery at every truncation/bit-flip
# offset, armed crash points, checkpoint differentials (DESIGN.md §16),
# plus the quick store bench tier validating results/BENCH_store.json.
cargo test -q --offline -p chatgraph-store --test recovery_properties
cargo bench --offline -p chatgraph-bench --bench store -- --quick

# Repository lint: no unwrap/expect/panic! in non-test library code beyond
# the shrink-only allowlist (lint-allow.toml), no `unsafe`, hermetic
# manifests, `catch_unwind` only at the supervisor's isolation boundary
# (CG106), and the concurrency pass (DESIGN.md §13): lock-order cycles
# (CG201), guards across dispatch points (CG202), declared-order violations
# (CG203), unsanctioned poisoned-lock recovery (CG204), and the
# Ordering::Relaxed ratchet (CG205). The machine-readable report is kept as
# an artifact alongside the bench JSONs.
mkdir -p results
cargo run -q --offline -p chatgraph-analyzer --bin repolint -- --json \
  > results/repolint.json
cargo run -q --offline -p chatgraph-analyzer --bin repolint
