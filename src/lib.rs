//! # chatgraph
//!
//! Umbrella crate for the ChatGraph reproduction (ICDE 2024, *ChatGraph:
//! Chat with Your Graphs*). Re-exports every workspace crate under one roof
//! so examples and downstream users need a single dependency.
//!
//! ```
//! use chatgraph::graph::prelude::*;
//!
//! let g = generators::molecule(&MoleculeParams::default(), 1);
//! assert!(g.node_count() > 0);
//! ```

pub use chatgraph_analyzer as analyzer;
pub use chatgraph_ann as ann;
pub use chatgraph_apis as apis;
pub use chatgraph_core as core;
pub use chatgraph_embed as embed;
pub use chatgraph_ged as ged;
pub use chatgraph_graph as graph;
pub use chatgraph_llm as llm;
pub use chatgraph_sequencer as sequencer;
pub use chatgraph_store as store;
