#!/bin/sh
# Final experiment re-run (after the last code changes). Outputs supersede
# the earlier captures in this directory.
set -e
cd "$(dirname "$0")/.."
cargo build --release -p chatgraph-bench --bins
./target/release/exp_path_cover        > results/final_e5_path_cover.txt
./target/release/exp_ann_scaling       > results/final_e6_ann_scaling.txt
./target/release/exp_tau_sweep         > results/final_e7_tau_sweep.txt
./target/release/exp_finetune_ablation > results/final_e8_finetune.txt
./target/release/exp_retrieval         > results/final_e9_retrieval.txt
./target/release/scenario_report       > results/final_scenarios.txt
echo "all experiments regenerated"
