//! Property-based tests for the sequentialiser.

use chatgraph_graph::generators::{erdos_renyi, ErParams};
use chatgraph_graph::{Graph, GraphBuilder};
use chatgraph_sequencer::{
    build_supergraph, path_cover, sequentialize, tokens_for_path, CoverParams,
};
use chatgraph_support::prop::{check, Config};
use chatgraph_support::rng::{RngExt, StdRng};
use chatgraph_support::{prop_assert, prop_assert_eq};

fn er(n: usize, p_percent: u8, seed: u64) -> Graph {
    erdos_renyi(
        &ErParams {
            nodes: n,
            edge_prob: p_percent as f64 / 100.0,
        },
        seed,
    )
}

/// A random Erdős–Rényi configuration `(n, p%, seed)`.
fn er_config(rng: &mut StdRng, max_n: usize, p_lo: u8, p_hi: u8) -> (usize, u8, u64) {
    (
        rng.random_range(2..=max_n.max(2)),
        rng.random_range(p_lo..p_hi),
        rng.random_range(0u64..100),
    )
}

/// Path tokens alternate node and edge labels: a path of k nodes yields
/// exactly 2k − 1 tokens.
#[test]
fn token_counts_match_path_lengths() {
    check(
        "token_counts_match_path_lengths",
        Config::default().with_cases(64),
        |rng, size| {
            (
                er_config(rng, 19.min(2 + size), 5, 40),
                rng.random_range(1usize..4),
            )
        },
        |&((n, p, seed), l)| {
            let g = er(n, p, seed);
            let cover = path_cover(
                &g,
                &CoverParams {
                    max_length: l,
                    dedup_singletons: false,
                },
            );
            for path in &cover.paths {
                let tokens = tokens_for_path(&g, path);
                prop_assert!(tokens.is_some());
                prop_assert_eq!(tokens.map(|t| t.len()), Some(2 * path.len() - 1));
            }
            Ok(())
        },
    );
}

/// Super-graph node count never exceeds the original's, and membership
/// is total over live nodes.
#[test]
fn supergraph_is_a_contraction() {
    check(
        "supergraph_is_a_contraction",
        Config::default().with_cases(64),
        |rng, size| er_config(rng, 24.min(2 + size), 10, 50),
        |&(n, p, seed)| {
            let g = er(n, p, seed);
            let sg = build_supergraph(&g, 3);
            prop_assert!(sg.graph.node_count() <= g.node_count());
            for v in g.node_ids() {
                let m = sg.membership[v.index()];
                prop_assert!(m.is_some());
                prop_assert!(sg.graph.contains_node(m.unwrap()));
            }
            // Every super-edge is witnessed by at least one original cross edge.
            for e in sg.graph.edge_ids() {
                let (sa, sb) = sg.graph.edge_endpoints(e).unwrap();
                let witnessed = g.edge_ids().any(|ge| {
                    let (a, b) = g.edge_endpoints(ge).unwrap();
                    let (ma, mb) = (
                        sg.membership[a.index()].unwrap(),
                        sg.membership[b.index()].unwrap(),
                    );
                    (ma == sa && mb == sb) || (ma == sb && mb == sa)
                });
                prop_assert!(witnessed);
            }
            Ok(())
        },
    );
}

/// The dedup_singletons option only ever removes single-node paths, and
/// only when the node is covered elsewhere.
#[test]
fn dedup_only_drops_redundant_singletons() {
    check(
        "dedup_only_drops_redundant_singletons",
        Config::default().with_cases(64),
        |rng, size| er_config(rng, 19.min(2 + size), 0, 30),
        |&(n, p, seed)| {
            let g = er(n, p, seed);
            let params_all = CoverParams {
                max_length: 2,
                dedup_singletons: false,
            };
            let params_dedup = CoverParams {
                max_length: 2,
                dedup_singletons: true,
            };
            let all = path_cover(&g, &params_all);
            let dedup = path_cover(&g, &params_dedup);
            prop_assert!(dedup.len() <= all.len());
            // Every node still appears somewhere in the deduped cover.
            let mut seen = std::collections::HashSet::new();
            for path in &dedup.paths {
                seen.extend(path.iter().copied());
            }
            for v in g.node_ids() {
                prop_assert!(seen.contains(&v), "node {v} lost by dedup");
            }
            Ok(())
        },
    );
}

/// Sequentialisation of the multi-level view contains the base view's token
/// count (super sequences only add).
#[test]
fn multi_level_only_adds_tokens() {
    let g = GraphBuilder::undirected()
        .node("a", "C").node("b", "C").node("c", "C").node("d", "O")
        .edge("a", "b", "-").edge("b", "c", "-").edge("c", "a", "-")
        .edge("c", "d", "-")
        .build();
    let params = CoverParams::default();
    let base = sequentialize(&g, &params, false);
    let multi = sequentialize(&g, &params, true);
    assert_eq!(base.base, multi.base);
    assert!(multi.token_count() >= base.token_count());
    assert!(!multi.multi_level.is_empty(), "triangle motif must contract");
}
