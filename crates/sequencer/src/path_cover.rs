//! Length-constrained path cover.
//!
//! For each node `u`, a BFS tree of depth ≤ ℓ is grown and every root-to-leaf
//! tree path is emitted. The union of these paths covers every node within
//! ℓ hops of `u` (each tree node lies on the path to some leaf below/at it),
//! which is exactly the covering property the paper imports from its prior
//! privacy-preserving pattern-query work \[11\], \[12\].
//!
//! The number of paths from one root equals the number of leaves of the BFS
//! tree, so the total is at most `O(|G|·2^ℓ)` on bounded-degree graphs — the
//! bound stated in §II-B and measured by experiment E5.

use chatgraph_graph::{Graph, NodeId};

/// Parameters for [`path_cover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverParams {
    /// Maximum path length ℓ in edges. 0 yields one singleton path per node.
    pub max_length: usize,
    /// Drop single-node paths whose node already appears on a longer path.
    /// Keeps the token stream free of redundant singletons while preserving
    /// the covering property.
    pub dedup_singletons: bool,
}

impl Default for CoverParams {
    fn default() -> Self {
        CoverParams {
            max_length: 3,
            dedup_singletons: true,
        }
    }
}

/// A set of covering paths over a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathCover {
    /// Paths as node-id sequences (each of length ≥ 1 node, ≤ ℓ+1 nodes).
    pub paths: Vec<Vec<NodeId>>,
    /// ℓ used.
    pub max_length: usize,
}

impl PathCover {
    /// Total number of paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when no paths were produced (empty graph).
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The paper's stated bound `|G| · 2^ℓ` on the number of paths. It holds
    /// for the degree-bounded graphs of the paper's setting; see
    /// [`PathCover::degree_bound`] for the bound that holds unconditionally.
    pub fn paper_bound(node_count: usize, max_length: usize) -> usize {
        node_count.saturating_mul(1usize << max_length.min(60))
    }

    /// Unconditional bound: a depth-ℓ BFS tree with maximum degree Δ has at
    /// most `Δ·(Δ−1)^(ℓ−1)` leaves, so the cover emits at most
    /// `n · Δ·(Δ−1)^(ℓ−1)` paths (and `n` for ℓ = 0).
    pub fn degree_bound(node_count: usize, max_degree: usize, max_length: usize) -> usize {
        if max_length == 0 || max_degree == 0 {
            return node_count;
        }
        let mut leaves = max_degree as u128;
        for _ in 1..max_length {
            leaves = leaves.saturating_mul(max_degree.saturating_sub(1).max(1) as u128);
        }
        (node_count as u128)
            .saturating_mul(leaves)
            .min(usize::MAX as u128) as usize
    }

    /// Checks the covering property: every node within `ℓ` hops of `root`
    /// appears on some path starting at `root`.
    pub fn covers_ball(&self, g: &Graph, root: NodeId) -> bool {
        use chatgraph_graph::algo::traversal::bfs_distances;
        let reachable: Vec<NodeId> = bfs_distances(g, root, self.max_length)
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_some())
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        let mut on_paths: std::collections::HashSet<NodeId> = Default::default();
        for p in self.paths.iter().filter(|p| p.first() == Some(&root)) {
            on_paths.extend(p.iter().copied());
        }
        reachable.iter().all(|v| on_paths.contains(v))
    }
}

/// Computes the length-constrained path cover of `g`.
pub fn path_cover(g: &Graph, params: &CoverParams) -> PathCover {
    let mut paths = Vec::new();
    for root in g.node_ids() {
        root_paths(g, root, params.max_length, &mut paths);
    }
    if params.dedup_singletons {
        // A singleton path [v] is redundant when v already appears on some
        // longer path.
        let mut covered: std::collections::HashSet<NodeId> = Default::default();
        for p in paths.iter().filter(|p| p.len() > 1) {
            covered.extend(p.iter().copied());
        }
        paths.retain(|p| p.len() > 1 || !covered.contains(&p[0]));
    }
    PathCover {
        paths,
        max_length: params.max_length,
    }
}

/// Emits the root-to-leaf paths of the depth-≤ℓ BFS tree rooted at `root`.
fn root_paths(g: &Graph, root: NodeId, max_len: usize, out: &mut Vec<Vec<NodeId>>) {
    // BFS tree: parent pointers + depth.
    let bound = g.node_bound();
    let mut parent: Vec<Option<NodeId>> = vec![None; bound];
    let mut depth: Vec<Option<usize>> = vec![None; bound];
    let mut has_child = vec![false; bound];
    let mut order = Vec::new();
    depth[root.index()] = Some(0);
    order.push(root);
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        // Every queued node was assigned a depth first; skip defensively.
        let Some(d) = depth[v.index()] else { continue };
        if d == max_len {
            continue;
        }
        for (w, _) in g.undirected_neighbors(v) {
            if depth[w.index()].is_none() {
                depth[w.index()] = Some(d + 1);
                parent[w.index()] = Some(v);
                has_child[v.index()] = true;
                order.push(w);
                queue.push_back(w);
            }
        }
    }
    // Leaves of the BFS tree (including the root when it is isolated).
    for &v in &order {
        if !has_child[v.index()] {
            let mut path = vec![v];
            let mut cur = v;
            while let Some(p) = parent[cur.index()] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatgraph_graph::generators::{erdos_renyi, ErParams};
    use chatgraph_graph::GraphBuilder;

    fn line4() -> Graph {
        GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("c", "d", "-")
            .build()
    }

    #[test]
    fn paths_respect_length_bound() {
        let g = line4();
        let cover = path_cover(&g, &CoverParams { max_length: 2, dedup_singletons: true });
        for p in &cover.paths {
            assert!(p.len() <= 3, "path too long: {p:?}");
            assert!(!p.is_empty());
            // consecutive nodes are adjacent
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]) || g.has_edge(w[1], w[0]));
            }
        }
    }

    #[test]
    fn every_root_ball_is_covered() {
        let g = erdos_renyi(&ErParams { nodes: 40, edge_prob: 0.1 }, 3);
        let params = CoverParams { max_length: 2, dedup_singletons: false };
        let cover = path_cover(&g, &params);
        for root in g.node_ids() {
            assert!(cover.covers_ball(&g, root), "ball of {root} uncovered");
        }
    }

    #[test]
    fn count_within_degree_bound() {
        for l in 0..=4 {
            let g = erdos_renyi(&ErParams { nodes: 30, edge_prob: 0.08 }, 11);
            let max_deg = g.node_ids().map(|v| g.total_degree(v)).max().unwrap_or(0);
            let cover = path_cover(&g, &CoverParams { max_length: l, dedup_singletons: false });
            let bound = PathCover::degree_bound(g.node_count(), max_deg, l);
            assert!(
                cover.len() <= bound,
                "l={l}: {} paths exceed bound {bound}",
                cover.len()
            );
        }
    }

    #[test]
    fn paper_bound_holds_on_degree_two_graphs() {
        // A cycle has max degree 2, the regime where the paper's |G|·2^ℓ
        // bound applies directly.
        let mut b = GraphBuilder::undirected();
        for i in 0..12 {
            b = b.edge(format!("n{i}"), format!("n{}", (i + 1) % 12), "-");
        }
        let g = b.build();
        for l in 0..=4 {
            let cover = path_cover(&g, &CoverParams { max_length: l, dedup_singletons: false });
            assert!(cover.len() <= PathCover::paper_bound(g.node_count(), l));
        }
    }

    #[test]
    fn zero_length_gives_singletons() {
        let g = line4();
        let cover = path_cover(&g, &CoverParams { max_length: 0, dedup_singletons: false });
        assert_eq!(cover.len(), 4);
        assert!(cover.paths.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn dedup_singletons_drops_covered_nodes() {
        let g = line4();
        let with = path_cover(&g, &CoverParams { max_length: 2, dedup_singletons: true });
        assert!(with.paths.iter().all(|p| p.len() > 1));
    }

    #[test]
    fn isolated_node_keeps_its_singleton() {
        let mut g = line4();
        let iso = g.add_node("Z");
        let cover = path_cover(&g, &CoverParams::default());
        assert!(cover.paths.iter().any(|p| p == &vec![iso]));
    }

    #[test]
    fn empty_graph_yields_no_paths() {
        let g = Graph::undirected();
        assert!(path_cover(&g, &CoverParams::default()).is_empty());
    }

    #[test]
    fn line_end_to_end_path_present() {
        let g = line4();
        let cover = path_cover(&g, &CoverParams { max_length: 3, dedup_singletons: true });
        assert!(cover
            .paths
            .iter()
            .any(|p| p.len() == 4), "expected the full line as one path");
    }
}
