//! # chatgraph-sequencer
//!
//! The **graph sequentializer** (paper §II-B): LLMs consume token sequences,
//! so an input graph must be decomposed into sequences first.
//!
//! * [`mod@path_cover`] — the length-constrained path cover: for every node `u`,
//!   paths starting at `u` of length at most `ℓ` that cover the subgraph
//!   within `ℓ` hops of `u` (following the paper's prior works \[11\], \[12\]).
//!   The number of paths is bounded by `O(|G|·2^ℓ)` for bounded-degree graphs.
//! * [`supergraph`] — the multi-level structure: motifs of `G` are contracted
//!   into super-nodes (following RUM \[13\]) and the super-graph is
//!   sequentialised too, so the LLM sees both the atom-level and the
//!   community/motif-level structure.
//! * [`serialize`] — turns paths into token sequences and a whole graph into
//!   the token stream fed to the (simulated) LLM.

pub mod path_cover;
pub mod serialize;
pub mod supergraph;

pub use path_cover::{path_cover, CoverParams, PathCover};
pub use serialize::{sequentialize, tokens_for_path, GraphSequences};
pub use supergraph::{build_supergraph, SuperGraph};
