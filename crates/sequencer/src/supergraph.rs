//! Multi-level structure: motif-contracted super-graphs.
//!
//! Graphs often carry multi-level structure (the paper cites protein tertiary
//! structure and social communities). Following RUM \[13\], motif instances —
//! here, cliques found by a greedy cover — are contracted into super-nodes;
//! remaining nodes become singleton super-nodes. The super-graph is then
//! sequentialised alongside the base graph so the LLM sees both levels.

use chatgraph_graph::algo::motifs::greedy_clique_cover;
use chatgraph_graph::{Graph, NodeId};

/// A motif-contracted view of a graph.
#[derive(Debug, Clone)]
pub struct SuperGraph {
    /// The contracted graph. Super-node labels are motif signatures such as
    /// `clique3[C|C|O]` or the original label for singletons.
    pub graph: Graph,
    /// For each original node slot, the super-node that absorbed it.
    pub membership: Vec<Option<NodeId>>,
    /// Number of non-trivial motifs contracted.
    pub motif_count: usize,
}

/// Builds the super-graph of `g` by contracting greedy clique motifs of size
/// ≥ `min_motif` (use 3 for triangles and up).
pub fn build_supergraph(g: &Graph, min_motif: usize) -> SuperGraph {
    let cliques = greedy_clique_cover(g, min_motif.max(2));
    let mut sg = Graph::new(g.direction());
    sg.set_name(format!("{}-super", g.name()));
    let mut membership: Vec<Option<NodeId>> = vec![None; g.node_bound()];

    for clique in &cliques {
        let mut labels: Vec<String> = clique
            .iter()
            .map(|&v| g.node_label(v).expect("live").to_owned())
            .collect();
        labels.sort();
        let label = format!("clique{}[{}]", clique.len(), labels.join("|"));
        let sid = sg.add_node(label);
        for &v in clique {
            membership[v.index()] = Some(sid);
        }
    }
    // Singletons for uncovered nodes.
    for v in g.node_ids() {
        if membership[v.index()].is_none() {
            let sid = sg.add_node(g.node_label(v).expect("live"));
            membership[v.index()] = Some(sid);
        }
    }
    // Super-edges: one edge between distinct super-nodes with any cross edge.
    for e in g.edge_ids() {
        let (a, b) = g.edge_endpoints(e).expect("live");
        let (sa, sb) = (
            membership[a.index()].expect("assigned"),
            membership[b.index()].expect("assigned"),
        );
        if sa != sb && !sg.has_edge(sa, sb) && !sg.has_edge(sb, sa) {
            sg.add_edge(sa, sb, "super").expect("checked for duplicates");
        }
    }
    SuperGraph {
        graph: sg,
        membership,
        motif_count: cliques.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatgraph_graph::GraphBuilder;

    fn two_triangles_with_bridge() -> Graph {
        GraphBuilder::undirected()
            .node("a", "C").node("b", "C").node("c", "O")
            .node("x", "N").node("y", "N").node("z", "N")
            .edge("a", "b", "-").edge("b", "c", "-").edge("c", "a", "-")
            .edge("x", "y", "-").edge("y", "z", "-").edge("z", "x", "-")
            .edge("c", "x", "-")
            .build()
    }

    #[test]
    fn contracts_triangles_into_two_supernodes() {
        let g = two_triangles_with_bridge();
        let sg = build_supergraph(&g, 3);
        assert_eq!(sg.motif_count, 2);
        assert_eq!(sg.graph.node_count(), 2);
        assert_eq!(sg.graph.edge_count(), 1, "one bridge super-edge");
    }

    #[test]
    fn supernode_labels_are_sorted_signatures() {
        let g = two_triangles_with_bridge();
        let sg = build_supergraph(&g, 3);
        let labels: Vec<String> = sg
            .graph
            .node_ids()
            .map(|v| sg.graph.node_label(v).unwrap().to_owned())
            .collect();
        assert!(labels.contains(&"clique3[C|C|O]".to_owned()), "{labels:?}");
        assert!(labels.contains(&"clique3[N|N|N]".to_owned()), "{labels:?}");
    }

    #[test]
    fn uncovered_nodes_become_singletons() {
        let g = GraphBuilder::undirected()
            .node("a", "C").node("b", "C").node("c", "C")
            .edge("a", "b", "-").edge("b", "c", "-").edge("c", "a", "-")
            .edge("c", "tail", "-")
            .build();
        let sg = build_supergraph(&g, 3);
        assert_eq!(sg.graph.node_count(), 2); // clique + tail singleton
        let every_node_assigned = g
            .node_ids()
            .all(|v| sg.membership[v.index()].is_some());
        assert!(every_node_assigned);
    }

    #[test]
    fn motif_free_graph_contracts_to_itself() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .build();
        let sg = build_supergraph(&g, 3);
        assert_eq!(sg.motif_count, 0);
        assert_eq!(sg.graph.node_count(), g.node_count());
        assert_eq!(sg.graph.edge_count(), g.edge_count());
    }

    #[test]
    fn empty_graph() {
        let sg = build_supergraph(&Graph::undirected(), 3);
        assert_eq!(sg.graph.node_count(), 0);
        assert_eq!(sg.motif_count, 0);
    }
}
