//! Path → token serialisation.
//!
//! The LLM substrate consumes token sequences. A path `v0 —e0— v1 —e1— v2`
//! becomes the alternating label sequence `[l(v0), l(e0), l(v1), l(e1), l(v2)]`,
//! with each path introduced by a level marker (`[PATH]` for base-level paths,
//! `[SUPER]` for super-graph paths). Output is deterministic: paths are sorted.

use crate::path_cover::{path_cover, CoverParams};
use crate::supergraph::build_supergraph;
use chatgraph_graph::{Graph, NodeId};

/// Marker token opening a base-level path.
pub const PATH_MARKER: &str = "[PATH]";
/// Marker token opening a super-graph path.
pub const SUPER_MARKER: &str = "[SUPER]";

/// The sequentialised form of one graph: what the graph-aware LLM module
/// actually reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSequences {
    /// Token sequences for the base-level path cover (marker included).
    pub base: Vec<Vec<String>>,
    /// Token sequences for the super-graph path cover (marker included).
    pub multi_level: Vec<Vec<String>>,
}

impl GraphSequences {
    /// All sequences flattened into one token stream.
    pub fn flat_tokens(&self) -> Vec<String> {
        self.base
            .iter()
            .chain(self.multi_level.iter())
            .flatten()
            .cloned()
            .collect()
    }

    /// Total token count across all sequences.
    pub fn token_count(&self) -> usize {
        self.base.iter().chain(self.multi_level.iter()).map(|s| s.len()).sum()
    }
}

/// Serialises one path into its alternating label token sequence (without a
/// marker). Returns `None` when the path is not walkable in `g` — consecutive
/// nodes without a connecting edge, or dead node/edge ids.
pub fn tokens_for_path(g: &Graph, path: &[NodeId]) -> Option<Vec<String>> {
    let mut out = Vec::with_capacity(path.len() * 2);
    for (i, &v) in path.iter().enumerate() {
        if i > 0 {
            let u = path[i - 1];
            let e = g.find_edge(u, v).or_else(|| g.find_edge(v, u))?;
            out.push(g.edge_label(e).ok()?.to_owned());
        }
        out.push(g.node_label(v).ok()?.to_owned());
    }
    Some(out)
}

/// Sequentialises a graph: base-level path cover plus (optionally) the
/// super-graph's own cover, following §II-B's multi-level design.
pub fn sequentialize(g: &Graph, params: &CoverParams, multi_level: bool) -> GraphSequences {
    // A cover path is walkable by construction, so `tokens_for_path` cannot
    // fail here; filtering keeps the function total anyway.
    let mut base: Vec<Vec<String>> = path_cover(g, params)
        .paths
        .iter()
        .filter_map(|p| {
            let mut t = vec![PATH_MARKER.to_owned()];
            t.extend(tokens_for_path(g, p)?);
            Some(t)
        })
        .collect();
    base.sort();
    let mut multi = Vec::new();
    if multi_level {
        let sg = build_supergraph(g, 3);
        multi = path_cover(&sg.graph, params)
            .paths
            .iter()
            .filter_map(|p| {
                let mut t = vec![SUPER_MARKER.to_owned()];
                t.extend(tokens_for_path(&sg.graph, p)?);
                Some(t)
            })
            .collect();
        multi.sort();
    }
    GraphSequences {
        base,
        multi_level: multi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatgraph_graph::GraphBuilder;

    fn labeled_line() -> Graph {
        GraphBuilder::undirected()
            .node("a", "C")
            .node("b", "O")
            .node("c", "N")
            .edge("a", "b", "single")
            .edge("b", "c", "double")
            .build()
    }

    #[test]
    fn path_tokens_alternate_labels() {
        let g = labeled_line();
        let ids: Vec<NodeId> = g.node_ids().collect();
        let t = tokens_for_path(&g, &ids).expect("line is walkable");
        assert_eq!(t, vec!["C", "single", "O", "double", "N"]);
    }

    #[test]
    fn single_node_path_is_one_token() {
        let g = labeled_line();
        assert_eq!(tokens_for_path(&g, &[NodeId(1)]), Some(vec!["O".to_owned()]));
    }

    #[test]
    fn unwalkable_path_is_rejected() {
        let g = GraphBuilder::undirected()
            .node("a", "C")
            .node("b", "O")
            .build();
        // No edge between the two nodes: the path is not walkable.
        assert_eq!(tokens_for_path(&g, &[NodeId(0), NodeId(1)]), None);
    }

    #[test]
    fn sequences_start_with_markers() {
        let g = labeled_line();
        let seqs = sequentialize(&g, &CoverParams::default(), true);
        assert!(!seqs.base.is_empty());
        assert!(seqs.base.iter().all(|s| s[0] == PATH_MARKER));
        assert!(seqs.multi_level.iter().all(|s| s[0] == SUPER_MARKER));
    }

    #[test]
    fn multi_level_flag_controls_super_sequences() {
        let g = GraphBuilder::undirected()
            .node("a", "C").node("b", "C").node("c", "C")
            .edge("a", "b", "-").edge("b", "c", "-").edge("c", "a", "-")
            .build();
        let without = sequentialize(&g, &CoverParams::default(), false);
        assert!(without.multi_level.is_empty());
        let with = sequentialize(&g, &CoverParams::default(), true);
        assert!(!with.multi_level.is_empty());
        // The triangle contracts to one super-node: a singleton path.
        assert_eq!(with.multi_level[0][1], "clique3[C|C|C]");
    }

    #[test]
    fn output_is_sorted_and_deterministic() {
        let g = labeled_line();
        let a = sequentialize(&g, &CoverParams::default(), true);
        let b = sequentialize(&g, &CoverParams::default(), true);
        assert_eq!(a, b);
        let mut sorted = a.base.clone();
        sorted.sort();
        assert_eq!(a.base, sorted);
    }

    #[test]
    fn token_count_and_flat_tokens_agree() {
        let g = labeled_line();
        let seqs = sequentialize(&g, &CoverParams::default(), true);
        assert_eq!(seqs.flat_tokens().len(), seqs.token_count());
    }

    #[test]
    fn empty_graph_serialises_to_nothing() {
        let seqs = sequentialize(&Graph::undirected(), &CoverParams::default(), true);
        assert_eq!(seqs.token_count(), 0);
    }
}
