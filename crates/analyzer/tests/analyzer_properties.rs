//! Property-based tests for the chain analyzer, exercised through the real
//! registry and executor (`chatgraph-apis` / `chatgraph-graph` are
//! dev-dependencies — the analyzer itself stays support-only).

use chatgraph_analyzer::diag::Severity;
use chatgraph_apis::{analyze, execute_chain, registry, ApiCall, ApiChain, ChainError, ExecContext, SilentMonitor};
use chatgraph_graph::generators::{knowledge_graph, KgParams};
use chatgraph_support::prop::{check, Config};
use chatgraph_support::prop_assert;
use chatgraph_support::rng::{RngExt, SliceRandom, StdRng};

/// Generator: a chain of random API names — registered, near-miss typos and
/// garbage — with random (often nonsensical) parameters.
fn arbitrary_chain(rng: &mut StdRng, max_len: usize) -> ApiChain {
    let reg = registry::standard();
    let mut names: Vec<String> = reg.names().iter().map(|s| s.to_string()).collect();
    names.extend(
        ["node_cout", "frobnicate", "", "GENERATE_REPORT", "top pagerank"]
            .map(str::to_owned),
    );
    let keys = ["k", "target", "budget", "pattern", "kk", "Λ", ""];
    let values = ["5", "0", "-3", "1e9", "lots", "", "NaN", "0.5"];
    let len = rng.random_range(0..=max_len);
    let mut chain = ApiChain::new();
    for _ in 0..len {
        let mut call = ApiCall::new(names.choose(rng).expect("non-empty pool").clone());
        for _ in 0..rng.random_range(0usize..3) {
            call = call.with_param(
                *keys.choose(rng).expect("keys"),
                *values.choose(rng).expect("values"),
            );
        }
        chain.push(call);
    }
    chain
}

/// The analyzer is total: any chain, any parameters, with or without a
/// session graph — it returns findings, it never panics.
#[test]
fn analyzer_never_panics_on_arbitrary_chains() {
    check(
        "analyzer_never_panics_on_arbitrary_chains",
        Config::default(),
        |rng, _size| arbitrary_chain(rng, 6),
        |chain| {
            let reg = registry::standard();
            for has_graph in [false, true] {
                let d = analyze(chain, &reg, has_graph);
                // Every finding carries a registered code and renders.
                for item in &d.items {
                    prop_assert!(
                        chatgraph_analyzer::diag::code_info(&item.code).is_some(),
                        "unregistered code {}",
                        item.code
                    );
                    prop_assert!(!item.render().is_empty());
                }
                let _ = d.render_json();
            }
            Ok(())
        },
    );
}

/// Soundness of the Error level: a chain the analyzer passes (no Error
/// findings) executes without type errors — anything that still fails does
/// so for runtime data reasons, never typing.
#[test]
fn error_free_chains_execute_without_type_errors() {
    check(
        "error_free_chains_execute_without_type_errors",
        Config::default(),
        |rng, _size| arbitrary_chain(rng, 4),
        |chain| {
            let reg = registry::standard();
            let d = analyze(chain, &reg, true);
            if d.count(Severity::Error) > 0 {
                return Ok(()); // analyzer refused; nothing to execute
            }
            prop_assert!(
                chain.validate(&reg, true).is_ok(),
                "validate() rejected what the analyzer passed: {chain}"
            );
            let g = knowledge_graph(
                &KgParams {
                    persons: 10,
                    cities: 4,
                    countries: 2,
                    companies: 3,
                    employment_rate: 0.5,
                    knows_per_person: 1.0,
                },
                1,
            );
            let mut ctx = ExecContext::new(g);
            match execute_chain(&reg, chain, &mut ctx, &mut SilentMonitor) {
                Ok(_) | Err(ChainError::ExecutionFailed(..)) => {}
                Err(other) => {
                    prop_assert!(false, "unexpected error class for {chain}: {other}");
                }
            }
            Ok(())
        },
    );
}

/// Error-level agreement with the legacy validator, across the graph /
/// no-graph axis: the analyzer reports an Error iff `validate()` rejects.
#[test]
fn analyzer_errors_agree_with_validate() {
    check(
        "analyzer_errors_agree_with_validate",
        Config::default(),
        |rng, _size| arbitrary_chain(rng, 5),
        |chain| {
            let reg = registry::standard();
            for has_graph in [false, true] {
                let d = analyze(chain, &reg, has_graph);
                prop_assert!(
                    chain.validate(&reg, has_graph).is_ok() == !d.has_errors(),
                    "disagreement on {chain} (has_graph={has_graph}): {}",
                    d.render_text()
                );
            }
            Ok(())
        },
    );
}
