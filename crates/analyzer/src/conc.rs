//! Concurrency lints (CG201–CG205): a lightweight item/block parser on top
//! of [`crate::lexer`] that tracks lock acquisitions per function and checks
//! them against declared lock orders.
//!
//! The workspace's locking discipline — three serving lock classes
//! (`tenants` < `queue` < `session`), the shared `StepMemo`/`CsrCache`
//! internals, scoped worker pools — used to live only in comments. This
//! pass makes it checked:
//!
//! - **CG201** — the combined declared+observed acquisition graph has a
//!   cycle (potential deadlock), including re-acquiring a held class.
//! - **CG202** — a guard is still held at a dispatch point: a `spawn(`/
//!   `scope(` call or a channel `send` (receiver named `tx`/`sender`/
//!   `*_tx`/`*_sender`); blocking the pool while holding a lock serializes
//!   every tenant behind it and can deadlock a bounded pool.
//! - **CG203** — a nested acquisition contradicts a declared order: class
//!   `B` acquired while `A` is held although an `order(… B … < … A …)`
//!   chain declares `B` before `A`.
//! - **CG204** — poisoned-lock recovery (`unwrap_or_else(…into_inner…)`)
//!   in a function without a `lockdoc: recover` sanction.
//! - **CG205** — `Ordering::Relaxed` sites, counted per file for the
//!   shrink-only `[allow-relaxed]` ratchet in `lint-allow.toml` (the
//!   ratchet itself is enforced by [`crate::repolint::run`]).
//!
//! # lockdoc annotations
//!
//! Directives are standalone comment lines whose trimmed text starts with
//! the exact marker `// lockdoc:` (doc comments and inline trailers are
//! ignored, and test-gated lines never declare directives):
//!
//! - `lockdoc: order(a < b < c)` — workspace-global declared order: `a`
//!   must be acquired before `b`, `b` before `c`.
//! - `lockdoc: acquires(class)` — the next `fn` below the directive is an
//!   acquisition helper: calling it acquires `class` (e.g. `queue_guard`).
//! - `lockdoc: recover(reason)` — sanctions poisoned-lock recovery inside
//!   the enclosing (or immediately following) `fn`, with a human-readable
//!   justification.
//!
//! # Model and limits
//!
//! Lock classes are discovered syntactically — `name: Mutex<…>` /
//! `name: RwLock<…>` fields, bindings, and parameters, plus
//! `let name = Mutex::new(…)` — and are global by name across the
//! workspace. Guard lifetimes follow Rust's drop rules approximately:
//! a binding (`let g = x.lock()…;`, possibly through `unwrap`-family
//! combinators and `?`) lives to the end of its block; a temporary
//! (`x.lock().unwrap().len()`) dies at its statement's `;`. `drop(g)`
//! ends a named guard early. The analysis is per-function (no
//! inter-procedural propagation beyond `acquires` helpers) and
//! intentionally over-approximates `match`/`if let` guards to the
//! enclosing block.

use crate::diag::{Diagnostic, Diagnostics, Span};
use crate::lexer::{self, Token, TokenKind};
use crate::repolint::{is_punct, test_gated_ranges};
use std::collections::{BTreeMap, BTreeSet};

/// Which lock type a class was declared with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex` — acquired via `.lock()`.
    Mutex,
    /// `RwLock` — acquired via `.read()` / `.write()`.
    RwLock,
}

/// One parsed `// lockdoc:` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `order(a < b < c)`: consecutive pairs are declared edges.
    Order(Vec<String>),
    /// `acquires(class)`: the next `fn` acquires `class` when called.
    Acquires(String),
    /// `recover(reason)`: sanctions poisoned-lock recovery in the
    /// enclosing `fn`.
    Recover(String),
}

/// A directive with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectiveAt {
    /// 1-based line of the directive comment.
    pub line: usize,
    /// The parsed directive.
    pub directive: Directive,
}

/// Extracts lockdoc directives from raw source (the lexer drops comments).
/// Returns the directives plus parse errors as `(line, message)` pairs.
pub fn parse_lockdoc(source: &str) -> (Vec<DirectiveAt>, Vec<(usize, String)>) {
    let mut out = Vec::new();
    let mut errors = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let trimmed = raw.trim_start();
        let Some(rest) = trimmed.strip_prefix("// lockdoc:") else {
            continue;
        };
        let line = idx + 1;
        match parse_directive(rest.trim()) {
            Ok(d) => out.push(DirectiveAt { line, directive: d }),
            Err(why) => errors.push((line, why)),
        }
    }
    (out, errors)
}

fn parse_directive(text: &str) -> Result<Directive, String> {
    let Some((name, rest)) = text.split_once('(') else {
        return Err("expected `name(args)`".to_owned());
    };
    let Some(args) = rest.strip_suffix(')') else {
        return Err("missing closing `)`".to_owned());
    };
    match name.trim() {
        "order" => {
            let classes: Vec<String> = args.split('<').map(|c| c.trim().to_owned()).collect();
            if classes.len() < 2 || classes.iter().any(|c| !is_ident(c)) {
                return Err("order() needs two or more `<`-separated class names".to_owned());
            }
            Ok(Directive::Order(classes))
        }
        "acquires" => {
            let class = args.trim();
            if !is_ident(class) {
                return Err("acquires() needs one class name".to_owned());
            }
            Ok(Directive::Acquires(class.to_owned()))
        }
        "recover" => {
            if args.trim().is_empty() {
                return Err("recover() needs a justification".to_owned());
            }
            Ok(Directive::Recover(args.trim().to_owned()))
        }
        other => Err(format!("unknown lockdoc directive `{other}`")),
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().map(|c| c == '_' || c.is_alphabetic()).unwrap_or(false)
        && s.chars().all(|c| c == '_' || c.is_alphanumeric())
}

/// A function item: name, the `fn` keyword token, its body's brace tokens,
/// and its line extent.
#[derive(Debug, Clone)]
struct FnSpan {
    name: String,
    fn_tok: usize,
    body_open: usize,
    body_close: usize,
    start_line: usize,
    end_line: usize,
}

/// Finds every `fn` item (including nested ones) by brace matching.
fn fn_spans(toks: &[Token]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].ident() == Some("fn") {
            if let Some(name) = toks[i + 1].ident() {
                // Find the body `{` (or `;` for a body-less trait method).
                let mut j = i + 2;
                while j < toks.len() && !is_punct(toks, j, '{') && !is_punct(toks, j, ';') {
                    j += 1;
                }
                if is_punct(toks, j, '{') {
                    let close = matching_close(toks, j, '{', '}');
                    out.push(FnSpan {
                        name: name.to_owned(),
                        fn_tok: i,
                        body_open: j,
                        body_close: close,
                        start_line: toks[i].line,
                        end_line: toks[close.min(toks.len() - 1)].line,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

/// Index of the close matching the open bracket at `open` (or `toks.len()-1`
/// when unbalanced).
fn matching_close(toks: &[Token], open: usize, oc: char, cc: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct(oc) {
            depth += 1;
        } else if toks[i].is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Index of the open matching the close bracket at `close` (scanning back).
fn matching_open(toks: &[Token], close: usize, oc: char, cc: char) -> usize {
    let mut depth = 0usize;
    let mut i = close;
    loop {
        if toks[i].is_punct(cc) {
            depth += 1;
        } else if toks[i].is_punct(oc) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        if i == 0 {
            return 0;
        }
        i -= 1;
    }
}

/// Discovers lock classes: `name : … Mutex/RwLock …` (struct fields, typed
/// bindings, parameters) and `let [mut] name = Mutex::new(…)` initializers.
fn lock_classes(toks: &[Token], skip: &[(usize, usize)]) -> BTreeMap<String, LockKind> {
    let mut out = BTreeMap::new();
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(end) = range_containing(skip, i) {
            i = end;
            continue;
        }
        // `name : <lookahead containing Mutex/RwLock>` — exclude `::` paths.
        if let Some(name) = toks[i].ident() {
            let double_colon =
                is_punct(toks, i + 2, ':') || (i > 0 && toks[i - 1].is_punct(':'));
            if is_punct(toks, i + 1, ':') && !double_colon {
                let mut j = i + 2;
                while j < toks.len() && j < i + 18 {
                    match &toks[j].kind {
                        TokenKind::Punct(';' | ',' | ')' | '{' | '}' | '=') => break,
                        TokenKind::Ident(t) if t == "Mutex" || t == "RwLock" => {
                            let kind =
                                if t == "Mutex" { LockKind::Mutex } else { LockKind::RwLock };
                            out.entry(name.to_owned()).or_insert(kind);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        // `let [mut] name = Mutex::new(` / `RwLock::new(`.
        if toks[i].ident() == Some("let") {
            let mut j = i + 1;
            if toks.get(j).and_then(Token::ident) == Some("mut") {
                j += 1;
            }
            if let Some(name) = toks.get(j).and_then(Token::ident) {
                if is_punct(toks, j + 1, '=') {
                    if let Some(t) = toks.get(j + 2).and_then(Token::ident) {
                        if t == "Mutex" || t == "RwLock" {
                            let kind =
                                if t == "Mutex" { LockKind::Mutex } else { LockKind::RwLock };
                            out.entry(name.to_owned()).or_insert(kind);
                        }
                    }
                }
            }
        }
        i += 1;
    }
    out
}

fn range_containing(ranges: &[(usize, usize)], i: usize) -> Option<usize> {
    ranges.iter().find(|&&(s, e)| i >= s && i < e).map(|&(_, e)| e)
}

/// `Ordering::Relaxed` site lines in non-test code (CG205 raw material).
fn relaxed_sites(toks: &[Token], skip: &[(usize, usize)]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut i = 3usize;
    while i < toks.len() {
        if let Some(end) = range_containing(skip, i) {
            i = end.max(i + 1);
            continue;
        }
        if toks[i].ident() == Some("Relaxed")
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].ident() == Some("Ordering")
        {
            out.push(toks[i].line);
        }
        i += 1;
    }
    out
}

/// One held guard during the per-function walk.
#[derive(Debug, Clone)]
struct Guard {
    class: String,
    /// Brace depth it was acquired at (block-scoped bindings die when this
    /// depth closes; temporaries also die at a `;` at this depth).
    depth: usize,
    temp: bool,
    name: Option<String>,
}

/// Result of the workspace concurrency pass.
#[derive(Debug, Clone, Default)]
pub struct ConcReport {
    /// CG201–CG204 findings (plus CG105 for malformed lockdoc).
    pub diagnostics: Diagnostics,
    /// Per-file `Ordering::Relaxed` tally: label → (count, first line).
    pub relaxed: BTreeMap<String, (usize, usize)>,
    /// Distinct lock classes discovered or declared.
    pub classes: usize,
    /// Declared order edges.
    pub declared_edges: usize,
    /// Distinct observed nesting edges.
    pub observed_edges: usize,
    /// Poisoned-lock recovery sites seen (sanctioned or not).
    pub recovery_sites: usize,
}

/// Combinators a guard-producing call may be piped through without the
/// binding ceasing to be the guard itself.
const GUARD_COMBINATORS: &[&str] =
    &["unwrap", "unwrap_or_else", "expect", "map_err", "ok", "unwrap_or", "unwrap_or_default"];

/// Runs the concurrency pass over `(label, source)` files as one workspace.
pub fn analyze_files(files: &[(String, String)]) -> ConcReport {
    let mut report = ConcReport::default();

    struct FileCtx {
        label: String,
        toks: Vec<Token>,
        test_ranges: Vec<(usize, usize)>,
        fns: Vec<FnSpan>,
    }

    // Pass 1: lex, find items/directives, merge workspace-global facts.
    let mut ctxs = Vec::with_capacity(files.len());
    let mut classes: BTreeMap<String, LockKind> = BTreeMap::new();
    let mut declared: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut declared_pairs: BTreeSet<(String, String)> = BTreeSet::new();
    // helper fn name -> class it acquires
    let mut helpers: BTreeMap<String, String> = BTreeMap::new();
    // (file index, fn_tok) of recover-sanctioned fns
    let mut sanctioned: BTreeSet<(usize, usize)> = BTreeSet::new();

    for (fi, (label, source)) in files.iter().enumerate() {
        let toks = lexer::scan(source);
        let test_ranges = test_gated_ranges(&toks);
        let test_lines: Vec<(usize, usize)> = test_ranges
            .iter()
            .filter(|&&(s, e)| e > s)
            .map(|&(s, e)| (toks[s].line, toks[e - 1].line))
            .collect();
        let fns: Vec<FnSpan> = fn_spans(&toks)
            .into_iter()
            .filter(|f| range_containing(&test_ranges, f.fn_tok).is_none())
            .collect();
        let (directives, errors) = parse_lockdoc(source);
        let in_test = |line: usize| test_lines.iter().any(|&(s, e)| line >= s && line <= e);
        let directives: Vec<DirectiveAt> =
            directives.into_iter().filter(|d| !in_test(d.line)).collect();
        let errors: Vec<(usize, String)> =
            errors.into_iter().filter(|&(line, _)| !in_test(line)).collect();
        for (line, why) in errors {
            report.diagnostics.push(Diagnostic::new(
                "CG105",
                Span::File { path: label.clone(), line },
                format!("malformed lockdoc directive: {why}"),
            ));
        }

        for (name, kind) in lock_classes(&toks, &test_ranges) {
            classes.entry(name).or_insert(kind);
        }
        for d in &directives {
            match &d.directive {
                Directive::Order(chain) => {
                    for c in chain {
                        classes.entry(c.clone()).or_insert(LockKind::Mutex);
                    }
                    for pair in chain.windows(2) {
                        declared
                            .entry(pair[0].clone())
                            .or_default()
                            .insert(pair[1].clone());
                        declared_pairs.insert((pair[0].clone(), pair[1].clone()));
                    }
                }
                Directive::Acquires(class) => {
                    classes.entry(class.clone()).or_insert(LockKind::Mutex);
                    match fns.iter().filter(|f| f.start_line >= d.line).min_by_key(|f| f.start_line)
                    {
                        Some(f) => {
                            helpers.insert(f.name.clone(), class.clone());
                        }
                        None => report.diagnostics.push(Diagnostic::new(
                            "CG105",
                            Span::File { path: label.clone(), line: d.line },
                            "lockdoc acquires() has no following fn to attach to",
                        )),
                    }
                }
                Directive::Recover(_) => {
                    // Enclosing fn first (innermost), else the fn directly below.
                    let enclosing = fns
                        .iter()
                        .filter(|f| f.start_line <= d.line && d.line <= f.end_line)
                        .max_by_key(|f| f.start_line);
                    let below = fns
                        .iter()
                        .filter(|f| f.start_line >= d.line && f.start_line <= d.line + 3)
                        .min_by_key(|f| f.start_line);
                    match enclosing.or(below) {
                        Some(f) => {
                            sanctioned.insert((fi, f.fn_tok));
                        }
                        None => report.diagnostics.push(Diagnostic::new(
                            "CG105",
                            Span::File { path: label.clone(), line: d.line },
                            "lockdoc recover() has no enclosing fn to sanction",
                        )),
                    }
                }
            }
        }
        ctxs.push(FileCtx { label: label.clone(), toks, test_ranges, fns });
    }
    report.classes = classes.len();
    report.declared_edges = declared_pairs.len();

    // Pass 2: per-function guard tracking.
    let mut observed: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    for (fi, ctx) in ctxs.iter().enumerate() {
        if let Some((line, count)) = count_relaxed(&ctx.toks, &ctx.test_ranges) {
            report.relaxed.insert(ctx.label.clone(), (count, line));
        }
        for f in &ctx.fns {
            let fn_sanctioned = sanctioned.contains(&(fi, f.fn_tok));
            walk_fn(
                &ctx.toks,
                &ctx.label,
                &ctx.fns,
                &ctx.test_ranges,
                f,
                &classes,
                &helpers,
                fn_sanctioned,
                &mut observed,
                &mut report,
            );
        }
    }
    report.observed_edges = observed.len();

    // CG203: observed edges that contradict a declared order. Contradicting
    // edges are excluded from the cycle graph so each bad nesting is
    // reported once, as the more specific code.
    let mut order_violations: BTreeSet<(String, String)> = BTreeSet::new();
    for ((held, acquired), (file, line)) in &observed {
        if held != acquired && reachable(&declared, acquired, held) {
            order_violations.insert((held.clone(), acquired.clone()));
            report.diagnostics.push(
                Diagnostic::new(
                    "CG203",
                    Span::File { path: file.clone(), line: *line },
                    format!(
                        "`{acquired}` acquired while `{held}` is held, but the declared \
                         lock order puts `{acquired}` before `{held}`"
                    ),
                )
                .with_suggestion(format!(
                    "acquire `{acquired}` first, or update the lockdoc order() declaration"
                )),
            );
        }
    }

    // CG201: cycles in declared + (non-violating) observed edges.
    let mut graph: BTreeMap<String, BTreeSet<String>> = declared.clone();
    for (held, acquired) in observed.keys() {
        if !order_violations.contains(&(held.clone(), acquired.clone())) {
            graph.entry(held.clone()).or_default().insert(acquired.clone());
        }
    }
    for cycle in find_cycles(&graph) {
        let site = cycle
            .iter()
            .zip(cycle.iter().cycle().skip(1))
            .find_map(|(a, b)| observed.get(&(a.clone(), b.clone())));
        let span = match site {
            Some((file, line)) => Span::File { path: file.clone(), line: *line },
            None => Span::None,
        };
        let mut path = cycle.clone();
        path.push(cycle[0].clone());
        report.diagnostics.push(
            Diagnostic::new(
                "CG201",
                span,
                format!("lock acquisition cycle: {}", path.join(" -> ")),
            )
            .with_suggestion("break the cycle by acquiring these locks in one declared order"),
        );
    }

    report
}

/// Per-file `Ordering::Relaxed` counting, collapsed to `(first line, count)`.
fn count_relaxed(toks: &[Token], skip: &[(usize, usize)]) -> Option<(usize, usize)> {
    let sites = relaxed_sites(toks, skip);
    sites.first().map(|&first| (first, sites.len()))
}

/// Walks one function body tracking held guards; records observed nesting
/// edges and emits CG202/CG204.
#[allow(clippy::too_many_arguments)]
fn walk_fn(
    toks: &[Token],
    label: &str,
    fns: &[FnSpan],
    file_test_ranges: &[(usize, usize)],
    f: &FnSpan,
    classes: &BTreeMap<String, LockKind>,
    helpers: &BTreeMap<String, String>,
    fn_sanctioned: bool,
    observed: &mut BTreeMap<(String, String), (String, usize)>,
    report: &mut ConcReport,
) {
    // Nested fns are analyzed on their own; skip their tokens here.
    let nested: Vec<(usize, usize)> = fns
        .iter()
        .filter(|g| g.fn_tok > f.body_open && g.body_close < f.body_close)
        .map(|g| (g.fn_tok, g.body_close + 1))
        .collect();

    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 1usize;
    let mut stmt_has_let = false;
    let mut pending_let_name: Option<String> = None;
    let mut i = f.body_open + 1;
    while i < f.body_close {
        if let Some(end) = range_containing(&nested, i) {
            i = end;
            continue;
        }
        if let Some(end) = range_containing(file_test_ranges, i) {
            i = end;
            continue;
        }
        let tok = &toks[i];
        match &tok.kind {
            TokenKind::Punct('{') => {
                depth += 1;
                stmt_has_let = false;
                pending_let_name = None;
            }
            TokenKind::Punct('}') => {
                held.retain(|g| g.depth < depth);
                depth = depth.saturating_sub(1);
                stmt_has_let = false;
                pending_let_name = None;
            }
            TokenKind::Punct(';') => {
                held.retain(|g| !(g.temp && g.depth == depth));
                stmt_has_let = false;
                pending_let_name = None;
            }
            TokenKind::Ident(id) => {
                match id.as_str() {
                    "let" => {
                        stmt_has_let = true;
                        let mut j = i + 1;
                        if toks.get(j).and_then(Token::ident) == Some("mut") {
                            j += 1;
                        }
                        pending_let_name =
                            toks.get(j).and_then(Token::ident).map(str::to_owned);
                    }
                    "drop"
                        if is_punct(toks, i + 1, '(')
                            && is_punct(toks, i + 3, ')') =>
                    {
                        if let Some(name) = toks.get(i + 2).and_then(Token::ident) {
                            held.retain(|g| g.name.as_deref() != Some(name));
                        }
                    }
                    "into_inner" => {
                        let lookback = i.saturating_sub(10)..i;
                        let recovery = lookback
                            .rev()
                            .any(|k| toks[k].ident() == Some("unwrap_or_else"));
                        if recovery {
                            report.recovery_sites += 1;
                            if !fn_sanctioned {
                                report.diagnostics.push(
                                    Diagnostic::new(
                                        "CG204",
                                        Span::File { path: label.to_owned(), line: tok.line },
                                        format!(
                                            "poisoned-lock recovery in `{}` without a \
                                             `lockdoc: recover(...)` sanction",
                                            f.name
                                        ),
                                    )
                                    .with_suggestion(
                                        "justify the recovery with a lockdoc recover() \
                                         directive, or quarantine the poisoned state instead",
                                    ),
                                );
                            }
                        }
                    }
                    "spawn" | "scope"
                        if is_punct(toks, i + 1, '(')
                            && i > 0
                            && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':')) =>
                    {
                        dispatch_check(id, &held, label, tok.line, report);
                    }
                    "send"
                        if is_punct(toks, i + 1, '(')
                            && i > 0
                            && toks[i - 1].is_punct('.')
                            && receiver_ident(toks, i.saturating_sub(2))
                                .map(|r| is_channel_name(&r))
                                .unwrap_or(false) =>
                    {
                        dispatch_check("send", &held, label, tok.line, report);
                    }
                    m @ ("lock" | "read" | "write")
                        if i > 0
                            && toks[i - 1].is_punct('.')
                            && is_punct(toks, i + 1, '(')
                            && is_punct(toks, i + 2, ')') =>
                    {
                        let recv = receiver_ident(toks, i.saturating_sub(2));
                        let want =
                            if m == "lock" { LockKind::Mutex } else { LockKind::RwLock };
                        let class = match recv.as_deref() {
                            Some(r) if classes.get(r) == Some(&want) => Some(r.to_owned()),
                            Some("self") | None => helpers.get(m).cloned(),
                            _ => None,
                        };
                        if let Some(class) = class {
                            acquire(
                                toks, i + 2, &class, tok.line, depth, stmt_has_let,
                                &pending_let_name, &mut held, label, observed,
                            );
                        }
                    }
                    m if helpers.contains_key(m)
                        && is_punct(toks, i + 1, '(')
                        && !(i > 0 && toks[i - 1].ident() == Some("fn")) =>
                    {
                        let close = matching_close(toks, i + 1, '(', ')');
                        let class = helpers[m].clone();
                        acquire(
                            toks, close, &class, tok.line, depth, stmt_has_let,
                            &pending_let_name, &mut held, label, observed,
                        );
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Records an acquisition: nesting edges against every held class, then the
/// new guard with its lifetime classification.
#[allow(clippy::too_many_arguments)]
fn acquire(
    toks: &[Token],
    call_close: usize,
    class: &str,
    line: usize,
    depth: usize,
    stmt_has_let: bool,
    pending_let_name: &Option<String>,
    held: &mut Vec<Guard>,
    label: &str,
    observed: &mut BTreeMap<(String, String), (String, usize)>,
) {
    let mut seen = BTreeSet::new();
    for g in held.iter() {
        if seen.insert(g.class.clone()) {
            observed
                .entry((g.class.clone(), class.to_owned()))
                .or_insert((label.to_owned(), line));
        }
    }
    let after = after_guard_combinators(toks, call_close);
    let (temp, name) = match toks.get(after).map(|t| &t.kind) {
        Some(TokenKind::Punct(';')) if stmt_has_let => (false, pending_let_name.clone()),
        Some(TokenKind::Punct('{')) => (false, None),
        _ => (true, None),
    };
    held.push(Guard { class: class.to_owned(), depth, temp, name });
}

/// Steps past `?` and `unwrap`-family combinators after a guard-producing
/// call's closing `)`; returns the index of the first token after the chain.
fn after_guard_combinators(toks: &[Token], mut close: usize) -> usize {
    loop {
        if is_punct(toks, close + 1, '?') {
            close += 1;
            continue;
        }
        if is_punct(toks, close + 1, '.')
            && toks
                .get(close + 2)
                .and_then(Token::ident)
                .map(|m| GUARD_COMBINATORS.contains(&m))
                .unwrap_or(false)
            && is_punct(toks, close + 3, '(')
        {
            close = matching_close(toks, close + 3, '(', ')');
            continue;
        }
        return close + 1;
    }
}

/// The receiver identifier of a method call: `j` points at the token before
/// the `.`; steps back over one `[...]` index expression.
fn receiver_ident(toks: &[Token], j: usize) -> Option<String> {
    if toks.get(j)?.is_punct(']') {
        let open = matching_open(toks, j, '[', ']');
        if open == 0 {
            return None;
        }
        return toks.get(open - 1)?.ident().map(str::to_owned);
    }
    toks.get(j)?.ident().map(str::to_owned)
}

fn is_channel_name(name: &str) -> bool {
    name == "tx" || name == "sender" || name.ends_with("_tx") || name.ends_with("_sender")
}

fn dispatch_check(what: &str, held: &[Guard], label: &str, line: usize, report: &mut ConcReport) {
    if held.is_empty() {
        return;
    }
    let mut classes: Vec<&str> = held.iter().map(|g| g.class.as_str()).collect();
    classes.sort_unstable();
    classes.dedup();
    report.diagnostics.push(
        Diagnostic::new(
            "CG202",
            Span::File { path: label.to_owned(), line },
            format!("`{what}(` reached while holding lock(s): {}", classes.join(", ")),
        )
        .with_suggestion("drop the guard before dispatching to the pool or channel"),
    );
}

/// BFS reachability `from ⇒* to` in a declared-order adjacency map.
fn reachable(graph: &BTreeMap<String, BTreeSet<String>>, from: &str, to: &str) -> bool {
    let mut queue = vec![from.to_owned()];
    let mut seen = BTreeSet::new();
    while let Some(n) = queue.pop() {
        if n == to {
            return true;
        }
        if let Some(next) = graph.get(&n) {
            for m in next {
                if seen.insert(m.clone()) {
                    queue.push(m.clone());
                }
            }
        }
    }
    false
}

/// Finds elementary cycles via DFS back-edges, deduplicated by node set.
/// Exhaustiveness isn't needed: one representative per cyclic knot is
/// enough to fail the lint.
fn find_cycles(graph: &BTreeMap<String, BTreeSet<String>>) -> Vec<Vec<String>> {
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut seen_sets: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut done: BTreeSet<String> = BTreeSet::new();
    for start in graph.keys() {
        if done.contains(start) {
            continue;
        }
        let mut stack: Vec<(String, Vec<String>)> = vec![(start.clone(), vec![start.clone()])];
        while let Some((node, path)) = stack.pop() {
            for next in graph.get(&node).into_iter().flatten() {
                if let Some(pos) = path.iter().position(|p| p == next) {
                    let cycle: Vec<String> = path[pos..].to_vec();
                    let mut key = cycle.clone();
                    key.sort();
                    if seen_sets.insert(key) {
                        cycles.push(cycle);
                    }
                } else if path.len() <= graph.len() {
                    let mut p = path.clone();
                    p.push(next.clone());
                    stack.push((next.clone(), p));
                }
            }
            done.insert(node);
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> ConcReport {
        let owned: Vec<(String, String)> =
            files.iter().map(|(l, s)| (l.to_string(), s.to_string())).collect();
        analyze_files(&owned)
    }

    fn codes(report: &ConcReport) -> Vec<&str> {
        report.diagnostics.items.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn lockdoc_grammar_parses_and_rejects() {
        let src = "
// lockdoc: order(a < b < c)
// lockdoc: acquires(queue)
// lockdoc: recover(poison tolerated: state is re-validated)
// lockdoc: order(a)
// lockdoc: frobnicate(x)
";
        let (dirs, errs) = parse_lockdoc(src);
        assert_eq!(dirs.len(), 3);
        assert_eq!(
            dirs[0].directive,
            Directive::Order(vec!["a".into(), "b".into(), "c".into()])
        );
        assert_eq!(dirs[1].directive, Directive::Acquires("queue".into()));
        assert_eq!(errs.len(), 2, "{errs:?}");
    }

    #[test]
    fn doc_comments_and_inline_trailers_are_not_directives() {
        let src = "
//! Explains the grammar: `lockdoc: order(a < b)` etc.
/// Also fine in a doc comment: lockdoc: order(b < a)
fn f() {} // trailing code comment, lockdoc: acquires(x)
";
        let (dirs, errs) = parse_lockdoc(src);
        assert!(dirs.is_empty(), "{dirs:?}");
        assert!(errs.is_empty(), "{errs:?}");
    }

    /// Golden fixture: two functions acquiring two mutexes in opposite
    /// orders — the classic deadlock — is a CG201 cycle.
    #[test]
    fn cg201_fires_on_acquisition_cycle() {
        let src = "
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn ab(&self) { let ga = self.a.lock().unwrap(); let gb = self.b.lock().unwrap(); }
    fn ba(&self) { let gb = self.b.lock().unwrap(); let ga = self.a.lock().unwrap(); }
}
";
        let report = run(&[("x.rs", src)]);
        assert!(codes(&report).contains(&"CG201"), "{:?}", report.diagnostics.render_text());
        assert_eq!(report.observed_edges, 2);
    }

    /// Golden fixture: re-acquiring a held (non-reentrant) mutex is a
    /// self-cycle.
    #[test]
    fn cg201_fires_on_reacquiring_held_lock() {
        let src = "
pub struct S { a: Mutex<u32> }
impl S {
    fn f(&self) { let g1 = self.a.lock().unwrap(); let g2 = self.a.lock().unwrap(); }
}
";
        let report = run(&[("x.rs", src)]);
        assert_eq!(codes(&report), vec!["CG201"], "{}", report.diagnostics.render_text());
    }

    /// Golden fixture: a guard held across a scoped spawn (CG202).
    #[test]
    fn cg202_fires_on_guard_held_across_spawn() {
        let src = "
pub struct S { a: Mutex<u32> }
impl S {
    fn f(&self) {
        let g = self.a.lock().unwrap();
        std::thread::scope(|s| { s.spawn(|| ()); });
    }
}
";
        let report = run(&[("x.rs", src)]);
        let cs = codes(&report);
        assert!(cs.contains(&"CG202"), "{}", report.diagnostics.render_text());
    }

    /// Golden fixture: a guard held across a channel send (CG202) — but
    /// only for channel-shaped receivers, so `session.send(prompt)` on an
    /// ordinary object is not flagged.
    #[test]
    fn cg202_send_is_restricted_to_channel_receivers() {
        let bad = "
pub struct S { a: Mutex<u32> }
fn f(s: &S, tx: Sender<u32>) { let g = s.a.lock().unwrap(); tx.send(1).unwrap(); }
";
        let ok = "
pub struct S { a: Mutex<u32> }
fn f(s: &S, session: &Session) { let g = s.a.lock().unwrap(); session.send(1); }
";
        assert!(codes(&run(&[("bad.rs", bad)])).contains(&"CG202"));
        assert!(!codes(&run(&[("ok.rs", ok)])).contains(&"CG202"));
    }

    /// Statement-scoped temporaries die at their `;`, so the serve-loop
    /// shape — collect under a guard, then spawn — stays clean.
    #[test]
    fn cg202_does_not_fire_on_statement_scoped_temporary() {
        let src = "
pub struct S { a: Mutex<Vec<u32>> }
impl S {
    fn f(&self) {
        let snapshot: Vec<u32> = self.a.lock().unwrap().clone();
        std::thread::scope(|s| { s.spawn(|| snapshot.len()); });
    }
}
";
        let report = run(&[("x.rs", src)]);
        assert!(report.diagnostics.is_empty(), "{}", report.diagnostics.render_text());
    }

    /// An explicit `drop(guard)` releases a block-scoped guard early.
    #[test]
    fn explicit_drop_releases_guard() {
        let src = "
pub struct S { a: Mutex<u32> }
impl S {
    fn f(&self) {
        let g = self.a.lock().unwrap();
        drop(g);
        std::thread::scope(|s| { s.spawn(|| ()); });
    }
}
";
        let report = run(&[("x.rs", src)]);
        assert!(report.diagnostics.is_empty(), "{}", report.diagnostics.render_text());
    }

    /// Golden fixture: nesting against a declared order is CG203 (and the
    /// contradicting edge is not double-reported as a CG201 cycle).
    #[test]
    fn cg203_fires_on_declared_order_violation() {
        let src = "
// lockdoc: order(a < b)
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn f(&self) { let gb = self.b.lock().unwrap(); let ga = self.a.lock().unwrap(); }
}
";
        let report = run(&[("x.rs", src)]);
        assert_eq!(codes(&report), vec!["CG203"], "{}", report.diagnostics.render_text());
    }

    /// Nesting along the declared order is clean, including through a
    /// transitive declared chain.
    #[test]
    fn declared_order_respected_is_clean() {
        let src = "
// lockdoc: order(a < b < c)
pub struct S { a: Mutex<u32>, b: Mutex<u32>, c: Mutex<u32> }
impl S {
    fn f(&self) {
        let ga = self.a.lock().unwrap();
        let gc = self.c.lock().unwrap();
    }
}
";
        let report = run(&[("x.rs", src)]);
        assert!(report.diagnostics.is_empty(), "{}", report.diagnostics.render_text());
        assert_eq!(report.declared_edges, 2);
        assert_eq!(report.observed_edges, 1);
    }

    /// Golden fixture: `unwrap_or_else(|e| e.into_inner())` without a
    /// recover sanction is CG204; with one, it is clean — and consuming
    /// `Mutex::into_inner` (no unwrap_or_else) is never flagged.
    #[test]
    fn cg204_requires_recover_sanction() {
        let bad = "
pub struct S { a: Mutex<u32> }
impl S {
    fn f(&self) -> u32 { *self.a.lock().unwrap_or_else(|e| e.into_inner()) }
}
";
        let good = "
pub struct S { a: Mutex<u32> }
impl S {
    fn f(&self) -> u32 {
        // lockdoc: recover(counter is monotonic; a poisoned write cannot corrupt it)
        *self.a.lock().unwrap_or_else(|e| e.into_inner())
    }
    fn consume(self) -> u32 { self.a.into_inner().unwrap_or(0) }
}
";
        let report = run(&[("bad.rs", bad)]);
        assert_eq!(codes(&report), vec!["CG204"], "{}", report.diagnostics.render_text());
        assert_eq!(report.recovery_sites, 1);
        let report = run(&[("good.rs", good)]);
        assert!(report.diagnostics.is_empty(), "{}", report.diagnostics.render_text());
        assert_eq!(report.recovery_sites, 1);
    }

    /// `lockdoc: acquires(...)` helpers count as acquisitions at call sites,
    /// giving cross-function edges the per-fn walk cannot see natively.
    #[test]
    fn acquires_helper_records_edges_at_call_sites() {
        let src = "
// lockdoc: order(a < b)
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    // lockdoc: acquires(b)
    fn b_guard(&self) -> MutexGuard<u32> {
        // lockdoc: recover(guard helpers tolerate poison by design)
        self.b.lock().unwrap_or_else(|e| e.into_inner())
    }
    fn ok(&self) { let ga = self.a.lock().unwrap(); let gb = self.b_guard(); }
    fn bad(&self) { let gb = self.b_guard(); let ga = self.a.lock().unwrap(); }
}
";
        let report = run(&[("x.rs", src)]);
        assert_eq!(codes(&report), vec!["CG203"], "{}", report.diagnostics.render_text());
    }

    /// CG205 raw material: `Ordering::Relaxed` sites are counted per file,
    /// outside test code only.
    #[test]
    fn relaxed_sites_are_counted_per_file() {
        let src = "
use std::sync::atomic::{AtomicU32, Ordering};
fn f(a: &AtomicU32) -> u32 {
    a.fetch_add(1, Ordering::Relaxed);
    a.load(Ordering::Relaxed) + a.load(Ordering::Acquire)
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { AtomicU32::new(0).load(std::sync::atomic::Ordering::Relaxed); }
}
";
        let report = run(&[("x.rs", src)]);
        let (count, first) = report.relaxed["x.rs"];
        assert_eq!(count, 2);
        assert_eq!(first, 4);
    }

    /// Test-gated code neither declares directives nor contributes
    /// acquisitions — fixture strings in unit tests cannot poison the
    /// workspace lock-order graph.
    #[test]
    fn test_gated_code_is_exempt() {
        let src = "
pub fn lib() {}
#[cfg(test)]
mod tests {
    // lockdoc: order(zz_a < zz_b)
    struct T { zz_a: Mutex<u32>, zz_b: Mutex<u32> }
    fn f(t: &T) { let g = t.zz_b.lock().unwrap(); let h = t.zz_a.lock().unwrap(); }
}
";
        let report = run(&[("x.rs", src)]);
        assert!(report.diagnostics.is_empty(), "{}", report.diagnostics.render_text());
        assert_eq!(report.declared_edges, 0);
        assert_eq!(report.observed_edges, 0);
    }

    #[test]
    fn malformed_lockdoc_is_cg105() {
        let report = run(&[("x.rs", "// lockdoc: order(one)\nfn f() {}\n")]);
        assert_eq!(codes(&report), vec!["CG105"]);
    }

    /// Locals bound with `let jobs = Mutex::new(..)` and indexed slot
    /// vectors (`slots[i].lock()`) both resolve to classes.
    #[test]
    fn local_mutexes_and_indexed_receivers_resolve() {
        let src = "
fn f() {
    let jobs = Mutex::new(1u32);
    let slots: Vec<Mutex<u32>> = Vec::new();
    let g = jobs.lock().unwrap();
    let h = slots[0].lock().unwrap();
}
";
        let report = run(&[("x.rs", src)]);
        assert_eq!(report.observed_edges, 1, "{}", report.diagnostics.render_text());
        assert!(report.classes >= 2);
    }
}
