//! ChatGraph reproduction — static analysis.
//!
//! One diagnostics vocabulary ([`diag`]) with two analysis targets:
//!
//! - [`chain`]: multi-pass static analysis over the lowered API-chain IR —
//!   the artifact the paper's LLM actually emits — collecting *every*
//!   type-flow, parameter, and hygiene finding instead of stopping at the
//!   first. `chatgraph-apis` lowers its `ApiChain`/`ApiRegistry` into this
//!   IR (the dependency points that way round so the executor, the
//!   search-based decoder, and the confirm-and-edit flow can all consume
//!   diagnostics without a crate cycle).
//! - [`repolint`]: workspace invariants (panic-site ratchet, no `unsafe`,
//!   manifest hermeticity) on top of a hand-rolled Rust [`lexer`], exposed
//!   as the `repolint` binary run by `scripts/verify.sh`.

pub mod chain;
pub mod diag;
pub mod lexer;
pub mod repolint;

pub use chain::{analyze_chain, step_accepts, ApiSig, Catalog, ChainIr, ChainStep, ParamKind, ParamSpec, SigType, TypeClass};
pub use diag::{code_info, CodeInfo, Diagnostic, Diagnostics, Severity, Span, CODES};
