//! ChatGraph reproduction — static analysis.
//!
//! One diagnostics vocabulary ([`diag`]) with two analysis targets:
//!
//! - [`chain`]: multi-pass static analysis over the lowered API-chain IR —
//!   the artifact the paper's LLM actually emits — collecting *every*
//!   type-flow, parameter, and hygiene finding instead of stopping at the
//!   first. `chatgraph-apis` lowers its `ApiChain`/`ApiRegistry` into this
//!   IR (the dependency points that way round so the executor, the
//!   search-based decoder, and the confirm-and-edit flow can all consume
//!   diagnostics without a crate cycle).
//! - [`plan`]: the parallel-segment interference audit (CG016/CG017) over
//!   the lowered plan IR — re-proves the scheduler's barrier classification
//!   before a plan executes, same lowering direction as [`chain`].
//! - [`repolint`]: workspace invariants (panic-site ratchet, no `unsafe`,
//!   manifest hermeticity) on top of a hand-rolled Rust [`lexer`], exposed
//!   as the `repolint` binary run by `scripts/verify.sh`.
//! - [`conc`]: the concurrency lints (CG201–CG205) — lock-order analysis
//!   against `// lockdoc:` declarations, guard-across-dispatch detection,
//!   sanctioned poisoned-lock recovery, and the `Ordering::Relaxed`
//!   ratchet — run by repolint across the workspace.

pub mod chain;
pub mod conc;
pub mod diag;
pub mod lexer;
pub mod plan;
pub mod repolint;

pub use chain::{analyze_chain, step_accepts, ApiSig, Catalog, ChainIr, ChainStep, ParamKind, ParamSpec, SigType, TypeClass};
pub use diag::{code_info, CodeInfo, Diagnostic, Diagnostics, Severity, Span, CODES};
pub use plan::{audit_plan, PlanIr, PlanStepIr, SegmentIr};
