//! Repository lint: in-tree enforcement of workspace invariants.
//!
//! The zero-external-dependency policy rules out clippy plugins and
//! cargo-deny, so the invariants live here, on top of the hand-rolled
//! [`crate::lexer`]:
//!
//! - **CG101** — `unwrap`/`expect`/`panic!` in non-test library code, as a
//!   ratchet against the checked-in `lint-allow.toml`: each file's actual
//!   panic-site count must not exceed its allowed count.
//! - **CG102** — a stale allowlist entry (allowed > actual): the ratchet
//!   only shrinks, so converted panic sites must be removed from the list
//!   (run `--update-allowlist`).
//! - **CG103** — any `unsafe` in the workspace.
//! - **CG104** — a non-hermetic dependency in any manifest (registry
//!   version, `git`, `registry`, `branch`, `tag`, `rev`); every dependency
//!   must be an in-workspace `path`/`workspace = true` reference.
//! - **CG105** — I/O failures while linting (missing allowlist, unreadable
//!   files, suspicious workspace layout).
//! - **CG106** — `catch_unwind` outside the chain supervisor
//!   (`crates/apis/src/supervisor.rs`): panic isolation has exactly one
//!   boundary, so payloads are always classified and attributed there.
//! - **CG201–CG204** — the concurrency lints from [`crate::conc`]: lock
//!   acquisition cycles, guards held across dispatch points, declared-order
//!   violations, and unsanctioned poisoned-lock recovery.
//! - **CG205** — `Ordering::Relaxed` sites, ratcheted per file against the
//!   `[allow-relaxed]` section of `lint-allow.toml` (shrink-only, like the
//!   panic-site ratchet).
//!
//! Test code is exempt from CG101: items annotated with an attribute that
//! mentions `test` (and not `not`, so `#[cfg(not(test))]` still counts) are
//! skipped, as are `tests/`, `benches/`, and `examples/` trees, which are
//! never walked.

use crate::diag::{Diagnostic, Diagnostics, Span};
use crate::lexer::{self, Token};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// One offending site in a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// 1-based line.
    pub line: usize,
    /// What was found (`unwrap`, `expect`, `panic!`, `unsafe`).
    pub what: String,
}

/// Everything repolint extracts from one source file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceScan {
    /// `unwrap()`/`expect()`/`panic!` sites in non-test code.
    pub panic_sites: Vec<Site>,
    /// `unsafe` keywords in non-test code.
    pub unsafe_sites: Vec<Site>,
    /// `catch_unwind` mentions in non-test code (CG106).
    pub catch_unwind_sites: Vec<Site>,
}

/// Scans one file's source for panic and unsafe sites, skipping test-only
/// items.
pub fn scan_source(source: &str) -> SourceScan {
    let toks = lexer::scan(source);
    let mut out = SourceScan::default();
    let mut i = 0usize;
    while i < toks.len() {
        // Inner attribute `#![...]`: applies to the enclosing scope; just
        // step over it (the workspace has no file-level test gating).
        if is_punct(&toks, i, '#') && is_punct(&toks, i + 1, '!') && is_punct(&toks, i + 2, '[') {
            i = attribute_end(&toks, i + 2).0;
            continue;
        }
        // Outer attribute `#[...]`: if it gates the next item to tests,
        // skip that item (and any stacked attributes) entirely.
        if is_punct(&toks, i, '#') && is_punct(&toks, i + 1, '[') {
            let (mut end, mut is_test) = attribute_end(&toks, i + 1);
            while is_punct(&toks, end, '#') && is_punct(&toks, end + 1, '[') {
                let (e, t) = attribute_end(&toks, end + 1);
                end = e;
                is_test = is_test || t;
            }
            i = if is_test { item_end(&toks, end) } else { end };
            continue;
        }
        match toks[i].ident() {
            Some("unsafe") => out.unsafe_sites.push(Site { line: toks[i].line, what: "unsafe".into() }),
            Some("catch_unwind") => {
                out.catch_unwind_sites.push(Site { line: toks[i].line, what: "catch_unwind".into() });
            }
            Some("panic") if is_punct(&toks, i + 1, '!') => {
                out.panic_sites.push(Site { line: toks[i].line, what: "panic!".into() });
            }
            Some(m @ ("unwrap" | "expect"))
                if i > 0 && toks[i - 1].is_punct('.') && is_punct(&toks, i + 1, '(') =>
            {
                out.panic_sites.push(Site { line: toks[i].line, what: m.into() });
            }
            _ => {}
        }
        i += 1;
    }
    out
}

pub(crate) fn is_punct(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i).map(|t| t.is_punct(c)).unwrap_or(false)
}

/// Token-index ranges of test-gated items (`#[test]` fns, `#[cfg(test)]`
/// mods, …), each starting at the gating attribute's `#` and ending just
/// past the item. Shared by [`scan_source`] and the concurrency pass so
/// both exempt exactly the same regions.
pub(crate) fn test_gated_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is_punct(toks, i, '#') && is_punct(toks, i + 1, '!') && is_punct(toks, i + 2, '[') {
            i = attribute_end(toks, i + 2).0;
            continue;
        }
        if is_punct(toks, i, '#') && is_punct(toks, i + 1, '[') {
            let start = i;
            let (mut end, mut is_test) = attribute_end(toks, i + 1);
            while is_punct(toks, end, '#') && is_punct(toks, end + 1, '[') {
                let (e, t) = attribute_end(toks, end + 1);
                end = e;
                is_test = is_test || t;
            }
            if is_test {
                let item = item_end(toks, end);
                out.push((start, item));
                i = item;
            } else {
                i = end;
            }
            continue;
        }
        i += 1;
    }
    out
}

/// Given the index of an attribute's opening `[`, returns the index just
/// past its matching `]` and whether the attribute gates the item to tests
/// (mentions `test` without `not`).
pub(crate) fn attribute_end(toks: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut i = open;
    while i < toks.len() {
        if is_punct(toks, i, '[') {
            depth += 1;
        } else if is_punct(toks, i, ']') {
            depth -= 1;
            if depth == 0 {
                return (i + 1, saw_test && !saw_not);
            }
        } else if let Some(id) = toks[i].ident() {
            saw_test |= id == "test";
            saw_not |= id == "not";
        }
        i += 1;
    }
    (toks.len(), false)
}

/// Given the index of the first token of an item, returns the index just
/// past it: either the matching close of its `{...}` body, or the `;` that
/// ends a body-less item.
pub(crate) fn item_end(toks: &[Token], start: usize) -> usize {
    let mut i = start;
    while i < toks.len() {
        if is_punct(toks, i, ';') {
            return i + 1;
        }
        if is_punct(toks, i, '{') {
            let mut depth = 0usize;
            while i < toks.len() {
                if is_punct(toks, i, '{') {
                    depth += 1;
                } else if is_punct(toks, i, '}') {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                i += 1;
            }
            return i;
        }
        i += 1;
    }
    i
}

/// True for section headers that declare dependencies, e.g.
/// `[dependencies]`, `[dev-dependencies]`, `[workspace.dependencies]`.
fn is_dependency_section(header: &str) -> bool {
    header.trim_matches(['[', ']']).ends_with("dependencies")
}

/// Lints one manifest for hermeticity: every dependency entry must resolve
/// inside the workspace (a `path` or `workspace = true` reference), never a
/// registry version, `git`, `registry`, `branch`, `tag`, or `rev` spec.
/// When `require_internal_names` is set (the root manifest), dependency
/// names must also all be in-workspace `chatgraph*` crates. Returns the
/// findings plus the number of dependency entries inspected.
pub fn lint_manifest(path_label: &str, text: &str, require_internal_names: bool) -> (Vec<Diagnostic>, usize) {
    let mut out = Vec::new();
    let mut entries = 0usize;
    let mut in_dep_section = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            in_dep_section = is_dependency_section(line);
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((name, spec)) = line.split_once('=') else {
            continue;
        };
        entries += 1;
        let name = name.trim();
        let spec = spec.trim();
        let span = Span::File { path: path_label.to_owned(), line: idx + 1 };
        let mut fail = |why: String| {
            out.push(
                Diagnostic::new("CG104", span.clone(), format!("dependency `{name}` {why}"))
                    .with_suggestion("use a `path` or `workspace = true` dependency"),
            );
        };
        for banned in ["version", "git", "registry", "branch", "tag", "rev"] {
            if spec.contains(&format!("{banned} =")) || spec.contains(&format!("{banned}=")) {
                fail(format!("declares `{banned}` — not a path dependency"));
            }
        }
        if spec.starts_with('"') {
            fail("uses a bare version string (registry dependency)".to_owned());
        }
        // `name.workspace = true` puts the marker in the key; inline tables
        // (`name = { workspace = true }` / `{ path = "..." }`) in the value.
        let workspace_ref = name.ends_with(".workspace") && spec == "true";
        if !workspace_ref && !spec.contains("path") && !spec.contains("workspace") {
            fail("is neither a `path` nor a `workspace = true` dependency".to_owned());
        }
        if require_internal_names {
            let base = name.trim_end_matches(".workspace");
            if !base.starts_with("chatgraph") {
                fail("is not an in-workspace `chatgraph*` crate".to_owned());
            }
        }
    }
    (out, entries)
}

/// Both shrink-only ratchets stored in `lint-allow.toml`: `[allow]` caps
/// panic sites per file, `[allow-relaxed]` caps `Ordering::Relaxed` sites.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlists {
    /// `[allow]`: permitted panic sites (unwrap/expect/panic!) per file.
    pub panic: BTreeMap<String, usize>,
    /// `[allow-relaxed]`: permitted `Ordering::Relaxed` sites per file.
    pub relaxed: BTreeMap<String, usize>,
}

/// Parses a `lint-allow.toml` ratchet file: an `[allow]` section and an
/// optional `[allow-relaxed]` section of `"path" = count` entries.
pub fn parse_allowlists(text: &str) -> Result<Allowlists, String> {
    let mut lists = Allowlists::default();
    let mut section: Option<&str> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = match line {
                "[allow]" => Some("allow"),
                "[allow-relaxed]" => Some("allow-relaxed"),
                other => return Err(format!("line {}: unknown section {other}", idx + 1)),
            };
            continue;
        }
        let map = match section {
            Some("allow") => &mut lists.panic,
            Some("allow-relaxed") => &mut lists.relaxed,
            _ => return Err(format!("line {}: entry outside the [allow] section", idx + 1)),
        };
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `\"path\" = count`", idx + 1));
        };
        let key = key.trim().trim_matches('"').to_owned();
        let count: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("line {}: count is not an integer", idx + 1))?;
        map.insert(key, count);
    }
    Ok(lists)
}

/// Renders both ratchets back to `lint-allow.toml` text.
pub fn render_allowlists(lists: &Allowlists) -> String {
    let mut out = String::from(
        "# repolint ratchets (shrink-only). Regenerate with:\n\
         #   cargo run -p chatgraph-analyzer --bin repolint -- --update-allowlist\n\
         #\n\
         # [allow]: permitted panic sites (unwrap/expect/panic!) per file of\n\
         # non-test library code.\n\
         \n[allow]\n",
    );
    for (path, count) in &lists.panic {
        out.push_str(&format!("\"{path}\" = {count}\n"));
    }
    out.push_str(
        "\n# [allow-relaxed]: permitted `Ordering::Relaxed` atomic sites per file\n\
         # (CG205); new code must justify Relaxed or use Acquire/Release.\n\
         \n[allow-relaxed]\n",
    );
    for (path, count) in &lists.relaxed {
        out.push_str(&format!("\"{path}\" = {count}\n"));
    }
    out
}

/// Parses just the `[allow]` panic-site ratchet (compat wrapper).
pub fn parse_allowlist(text: &str) -> Result<BTreeMap<String, usize>, String> {
    parse_allowlists(text).map(|l| l.panic)
}

/// Renders a panic-site-only allowlist (compat wrapper).
pub fn render_allowlist(map: &BTreeMap<String, usize>) -> String {
    render_allowlists(&Allowlists { panic: map.clone(), relaxed: BTreeMap::new() })
}

/// The one file allowed to `catch_unwind` (CG106): the chain supervisor's
/// panic-isolation boundary.
pub const SUPERVISOR_PATH: &str = "crates/apis/src/supervisor.rs";

/// Outcome of a repolint run.
#[derive(Debug, Clone, Default)]
pub struct RepolintReport {
    /// All findings.
    pub diagnostics: Diagnostics,
    /// Files scanned for panic/unsafe sites.
    pub files_scanned: usize,
    /// Total panic sites found in non-test library code.
    pub total_panic_sites: usize,
    /// Total `Ordering::Relaxed` sites found in non-test library code.
    pub total_relaxed_sites: usize,
    /// New allowlist text, when `--update-allowlist` was requested.
    pub updated_allowlist: Option<String>,
}

/// The workspace's member manifests: the root `Cargo.toml` plus every
/// `crates/*/Cargo.toml`, sorted.
pub fn workspace_manifests(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries = fs::read_dir(&crates).map_err(|e| format!("read {}: {e}", crates.display()))?;
    let mut members: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path().join("Cargo.toml"))
        .filter(|p| p.is_file())
        .collect();
    members.sort();
    if members.len() < 9 {
        return Err(format!(
            "expected at least 9 member manifests under {}, found {}",
            crates.display(),
            members.len()
        ));
    }
    out.extend(members);
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`, sorted.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
}

fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs every repolint pass over the workspace at `root`.
///
/// With `update_allowlist`, the ratchet comparison is replaced by a freshly
/// rendered allowlist in [`RepolintReport::updated_allowlist`] (the caller
/// writes it); unsafe and manifest findings are still reported.
pub fn run(root: &Path, update_allowlist: bool) -> RepolintReport {
    let mut report = RepolintReport::default();
    let sink = &mut report.diagnostics;

    // Manifest hermeticity (CG104), absorbing tests/hermetic.rs.
    let manifests = match workspace_manifests(root) {
        Ok(m) => m,
        Err(why) => {
            sink.push(Diagnostic::new("CG105", Span::None, why));
            return report;
        }
    };
    let mut entries_seen = 0usize;
    for manifest in &manifests {
        let label = rel_label(root, manifest);
        match fs::read_to_string(manifest) {
            Ok(text) => {
                let is_root = label == "Cargo.toml";
                let (diags, entries) = lint_manifest(&label, &text, is_root);
                entries_seen += entries;
                for d in diags {
                    sink.push(d);
                }
            }
            Err(e) => sink.push(Diagnostic::new(
                "CG105",
                Span::File { path: label, line: 0 },
                format!("unreadable manifest: {e}"),
            )),
        }
    }
    if entries_seen < 9 {
        sink.push(Diagnostic::new(
            "CG105",
            Span::None,
            format!("suspiciously few dependency entries parsed ({entries_seen}); did the manifest layout change?"),
        ));
    }

    // Source lints (CG101/CG103) over every member's src/ tree. tests/,
    // benches/, and examples/ are test-or-harness code and never walked.
    let mut files = Vec::new();
    for manifest in &manifests {
        if let Some(dir) = manifest.parent() {
            rust_files(&dir.join("src"), &mut files);
        }
    }
    let mut actual: BTreeMap<String, (usize, usize)> = BTreeMap::new(); // path -> (count, first line)
    let mut texts: Vec<(String, String)> = Vec::with_capacity(files.len());
    for file in &files {
        let label = rel_label(root, file);
        let text = match fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                sink.push(Diagnostic::new(
                    "CG105",
                    Span::File { path: label, line: 0 },
                    format!("unreadable source file: {e}"),
                ));
                continue;
            }
        };
        report.files_scanned += 1;
        let scan = scan_source(&text);
        for site in &scan.unsafe_sites {
            sink.push(Diagnostic::new(
                "CG103",
                Span::File { path: label.clone(), line: site.line },
                "`unsafe` is banned in this workspace",
            ));
        }
        if label != SUPERVISOR_PATH {
            for site in &scan.catch_unwind_sites {
                sink.push(
                    Diagnostic::new(
                        "CG106",
                        Span::File { path: label.clone(), line: site.line },
                        format!("`catch_unwind` outside the supervisor ({SUPERVISOR_PATH})"),
                    )
                    .with_suggestion("let panics propagate to the supervisor's single isolation boundary"),
                );
            }
        }
        if let Some(first) = scan.panic_sites.first() {
            actual.insert(label.clone(), (scan.panic_sites.len(), first.line));
        }
        report.total_panic_sites += scan.panic_sites.len();
        texts.push((label, text));
    }

    // Concurrency pass (CG201–CG204 + lockdoc hygiene) over the same
    // non-test library sources, as one workspace-wide lock-order graph.
    let conc = crate::conc::analyze_files(&texts);
    report.total_relaxed_sites = conc.relaxed.values().map(|&(n, _)| n).sum();
    sink.extend(conc.diagnostics);

    // Ratchets (CG101/CG102 panic sites, CG205 Relaxed sites) against
    // lint-allow.toml.
    if update_allowlist {
        let lists = Allowlists {
            panic: actual.iter().map(|(k, &(n, _))| (k.clone(), n)).collect(),
            relaxed: conc.relaxed.iter().map(|(k, &(n, _))| (k.clone(), n)).collect(),
        };
        report.updated_allowlist = Some(render_allowlists(&lists));
        return report;
    }
    let allow_path = root.join("lint-allow.toml");
    let allowed = match fs::read_to_string(&allow_path) {
        Ok(text) => match parse_allowlists(&text) {
            Ok(map) => map,
            Err(why) => {
                sink.push(Diagnostic::new(
                    "CG105",
                    Span::File { path: "lint-allow.toml".into(), line: 0 },
                    format!("malformed allowlist: {why}"),
                ));
                return report;
            }
        },
        Err(e) => {
            sink.push(
                Diagnostic::new(
                    "CG105",
                    Span::File { path: "lint-allow.toml".into(), line: 0 },
                    format!("missing allowlist: {e}"),
                )
                .with_suggestion("run with --update-allowlist to generate it"),
            );
            return report;
        }
    };
    for (path, &(count, first_line)) in &actual {
        let cap = allowed.panic.get(path).copied().unwrap_or(0);
        if count > cap {
            sink.push(
                Diagnostic::new(
                    "CG101",
                    Span::File { path: path.clone(), line: first_line },
                    format!(
                        "{count} panic site(s) (unwrap/expect/panic!) in non-test library code, allowlist permits {cap}"
                    ),
                )
                .with_suggestion("return a Result instead, or (for pre-existing code) regenerate the allowlist"),
            );
        }
    }
    for (path, &cap) in &allowed.panic {
        let count = actual.get(path).map(|&(n, _)| n).unwrap_or(0);
        if cap > count {
            sink.push(
                Diagnostic::new(
                    "CG102",
                    Span::File { path: path.clone(), line: 0 },
                    format!("stale allowlist entry: permits {cap} panic site(s) but the file has {count}"),
                )
                .with_suggestion("the ratchet only shrinks — run --update-allowlist to tighten it"),
            );
        }
    }
    for (path, &(count, first_line)) in &conc.relaxed {
        let cap = allowed.relaxed.get(path).copied().unwrap_or(0);
        if count > cap {
            sink.push(
                Diagnostic::new(
                    "CG205",
                    Span::File { path: path.clone(), line: first_line },
                    format!(
                        "{count} `Ordering::Relaxed` site(s), [allow-relaxed] permits {cap}"
                    ),
                )
                .with_suggestion(
                    "use Acquire/Release (or justify and regenerate the allowlist): Relaxed \
                     loads on another thread's decision path reorder freely",
                ),
            );
        }
    }
    for (path, &cap) in &allowed.relaxed {
        let count = conc.relaxed.get(path).map(|&(n, _)| n).unwrap_or(0);
        if cap > count {
            sink.push(
                Diagnostic::new(
                    "CG102",
                    Span::File { path: path.clone(), line: 0 },
                    format!(
                        "stale [allow-relaxed] entry: permits {cap} Relaxed site(s) but the file has {count}"
                    ),
                )
                .with_suggestion("the ratchet only shrinks — run --update-allowlist to tighten it"),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_panic_sites_outside_tests() {
        let src = r#"
            pub fn f(x: Option<u32>) -> u32 {
                x.unwrap()
            }
            pub fn g() {
                panic!("boom");
            }
            pub fn h(x: Option<u32>) -> u32 {
                x.expect("present")
            }
        "#;
        let scan = scan_source(src);
        let whats: Vec<&str> = scan.panic_sites.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(whats, vec!["unwrap", "panic!", "expect"]);
        assert!(scan.unsafe_sites.is_empty());
    }

    #[test]
    fn test_gated_items_are_exempt() {
        let src = r#"
            pub fn lib_code(x: Option<u32>) -> Option<u32> { x }

            #[test]
            fn a_test() { lib_code(None).unwrap(); }

            #[cfg(test)]
            mod tests {
                #[test]
                fn b() { super::lib_code(Some(1)).unwrap(); panic!("fine in tests"); }
            }

            pub fn more_lib(x: Option<u32>) -> u32 { x.expect("counted") }
        "#;
        let scan = scan_source(src);
        let whats: Vec<&str> = scan.panic_sites.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(whats, vec!["expect"]);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = r#"
            #[cfg(not(test))]
            pub fn gated(x: Option<u32>) -> u32 { x.unwrap() }
        "#;
        assert_eq!(scan_source(src).panic_sites.len(), 1);
    }

    #[test]
    fn stacked_attributes_skip_the_whole_item() {
        let src = r#"
            #[test]
            #[ignore]
            fn t() { None::<u32>.unwrap(); }
            pub fn f() { real_panic(); }
        "#;
        assert!(scan_source(src).panic_sites.is_empty());
    }

    #[test]
    fn unsafe_is_flagged() {
        let src = "pub fn f(p: *const u32) -> u32 { unsafe { *p } }";
        let scan = scan_source(src);
        assert_eq!(scan.unsafe_sites.len(), 1);
    }

    #[test]
    fn catch_unwind_is_scanned_outside_tests_only() {
        let src = r#"
            use std::panic::catch_unwind;
            pub fn f() { let _ = catch_unwind(|| 1); }

            #[cfg(test)]
            mod tests {
                fn quiet() { let _ = std::panic::catch_unwind(|| 2); }
            }
        "#;
        let scan = scan_source(src);
        assert_eq!(scan.catch_unwind_sites.len(), 2, "import + call, tests exempt");
        assert!(scan.panic_sites.is_empty());
    }

    #[test]
    fn workspace_has_exactly_one_catch_unwind_boundary() {
        // End-to-end over the real workspace: CG106 never fires, and the
        // supervisor (the one allowed file) really does use catch_unwind —
        // so the check cannot be trivially green.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = run(&root, false);
        let cg106: Vec<_> = report
            .diagnostics
            .items
            .iter()
            .filter(|d| d.code == "CG106")
            .collect();
        assert!(cg106.is_empty(), "stray catch_unwind: {cg106:?}");
        let sup = fs::read_to_string(root.join(SUPERVISOR_PATH)).unwrap();
        assert!(
            !scan_source(&sup).catch_unwind_sites.is_empty(),
            "the supervisor must own the isolation boundary"
        );
    }

    #[test]
    fn unwrap_or_variants_are_not_panic_sites() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).min(x.unwrap_or_else(|| 1)) }";
        assert!(scan_source(src).panic_sites.is_empty());
    }

    #[test]
    fn strings_and_comments_never_count() {
        let src = r#"
            // x.unwrap() here is a comment
            pub fn f() -> &'static str { "panic!(no) .unwrap()" }
        "#;
        assert!(scan_source(src).panic_sites.is_empty());
    }

    #[test]
    fn manifest_lint_accepts_workspace_paths_and_rejects_registry() {
        let good = "[dependencies]\nchatgraph-support.workspace = true\nchatgraph-graph = { path = \"../graph\" }\n";
        let (diags, entries) = lint_manifest("crates/x/Cargo.toml", good, false);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(entries, 2);

        let bad = "[dependencies]\nserde = \"1.0\"\nlibc = { git = \"https://example.com/libc\" }\n";
        let (diags, _) = lint_manifest("crates/x/Cargo.toml", bad, false);
        assert!(diags.iter().all(|d| d.code == "CG104"));
        assert!(diags.len() >= 2, "{diags:?}");
    }

    #[test]
    fn root_manifest_requires_internal_names() {
        let text = "[dependencies]\nleftpad = { path = \"../leftpad\" }\n";
        let (diags, _) = lint_manifest("Cargo.toml", text, true);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("chatgraph"));
    }

    #[test]
    fn workspace_is_concurrency_clean_with_declared_orders() {
        // End-to-end over the real workspace: zero CG201–CG204 — and not
        // trivially: serve.rs must really declare a lock order, sched.rs
        // must really sanction its poisoned-lock recoveries.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = run(&root, false);
        let conc: Vec<_> = report
            .diagnostics
            .items
            .iter()
            .filter(|d| matches!(d.code.as_str(), "CG201" | "CG202" | "CG203" | "CG204"))
            .collect();
        assert!(conc.is_empty(), "concurrency findings: {conc:#?}");
        let serve = fs::read_to_string(root.join("crates/core/src/serve.rs")).unwrap();
        let (dirs, errs) = crate::conc::parse_lockdoc(&serve);
        assert!(errs.is_empty(), "{errs:?}");
        assert!(
            dirs.iter()
                .any(|d| matches!(&d.directive, crate::conc::Directive::Order(_))),
            "serve.rs must declare its lock order via lockdoc"
        );
        let sched = fs::read_to_string(root.join("crates/apis/src/sched.rs")).unwrap();
        let (dirs, _) = crate::conc::parse_lockdoc(&sched);
        assert!(
            dirs.iter()
                .any(|d| matches!(&d.directive, crate::conc::Directive::Recover(_))),
            "sched.rs must sanction its poisoned-lock recoveries via lockdoc"
        );
        assert!(report.total_relaxed_sites > 0, "the Relaxed ratchet must have teeth");
    }

    #[test]
    fn two_section_allowlists_roundtrip() {
        let mut lists = Allowlists::default();
        lists.panic.insert("crates/a/src/lib.rs".to_owned(), 3);
        lists.relaxed.insert("crates/b/src/atomics.rs".to_owned(), 2);
        let text = render_allowlists(&lists);
        assert_eq!(parse_allowlists(&text), Ok(lists));
        assert!(parse_allowlists("[allow-typo]\n\"x\" = 1\n").is_err());
    }

    #[test]
    fn allowlist_roundtrip_and_parse_errors() {
        let mut map = BTreeMap::new();
        map.insert("crates/a/src/lib.rs".to_owned(), 3usize);
        map.insert("crates/b/src/io.rs".to_owned(), 1usize);
        let text = render_allowlist(&map);
        assert_eq!(parse_allowlist(&text), Ok(map));
        assert!(parse_allowlist("\"x\" = 1\n").is_err()); // outside [allow]
        assert!(parse_allowlist("[allow]\n\"x\" = lots\n").is_err());
    }
}
