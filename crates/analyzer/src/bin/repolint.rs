//! Workspace lint driver, wired into `scripts/verify.sh`.
//!
//! Usage: `cargo run -p chatgraph-analyzer --bin repolint -- [flags]`
//!
//! - `--json`              render findings as JSON instead of text
//! - `--update-allowlist`  regenerate `lint-allow.toml` from the current
//!                         panic-site counts instead of enforcing it
//! - `--root <dir>`        workspace root (default: auto-detected from the
//!                         current directory)
//!
//! Exits non-zero when any Error-level diagnostic is found.

use chatgraph_analyzer::repolint;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Walks up from `start` to the first directory that looks like the
/// workspace root (has both `Cargo.toml` and `crates/`).
fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

fn main() -> ExitCode {
    let mut json = false;
    let mut update = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--update-allowlist" => update = true,
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("repolint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("repolint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root_arg.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| find_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("repolint: could not locate the workspace root (try --root)");
            return ExitCode::from(2);
        }
    };

    let report = repolint::run(&root, update);

    if let Some(text) = &report.updated_allowlist {
        let path = root.join("lint-allow.toml");
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("repolint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        let entries = text.lines().filter(|l| l.contains('=')).count();
        eprintln!(
            "repolint: wrote {} ({} file(s), {} panic site(s), {} Relaxed site(s))",
            path.display(),
            entries,
            report.total_panic_sites,
            report.total_relaxed_sites
        );
    }

    if json {
        println!("{}", report.diagnostics.render_json());
    } else if !report.diagnostics.is_empty() {
        println!("{}", report.diagnostics.render_text());
    }

    if report.diagnostics.has_errors() {
        eprintln!(
            "repolint: FAILED — {} error(s) across {} file(s) scanned",
            report.diagnostics.count(chatgraph_analyzer::diag::Severity::Error),
            report.files_scanned
        );
        ExitCode::FAILURE
    } else {
        eprintln!(
            "repolint: ok — {} file(s) scanned, {} allowlisted panic site(s), {} Relaxed site(s), no errors",
            report.files_scanned, report.total_panic_sites, report.total_relaxed_sites
        );
        ExitCode::SUCCESS
    }
}
