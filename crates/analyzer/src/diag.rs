//! The shared diagnostics vocabulary: severities, spans, diagnostics, and a
//! multi-diagnostic sink with text and JSON renderers.
//!
//! Every analysis in this crate (the chain analyzer, repolint) reports
//! through [`Diagnostics`], so downstream consumers — the chain executor,
//! the confirm-and-edit flow, `scripts/verify.sh` — handle one shape.
//! Codes are `CG0xx` for chain/plan analysis, `CG1xx` for repolint hygiene,
//! and `CG2xx` for the concurrency lints; the full registry lives in
//! [`code_info`]/[`CODES`].

use chatgraph_support::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// How bad a diagnostic is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Purely informational.
    Info,
    /// Suspicious but executable; surfaced to the user, never blocking.
    Warning,
    /// The artifact is invalid; execution must refuse it.
    Error,
}

chatgraph_support::impl_json_enum_unit!(Severity { Info, Warning, Error });

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Where a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Span {
    /// No useful location (whole-artifact diagnostics).
    None,
    /// A chain step, optionally narrowed to one parameter.
    Step {
        /// 0-based step index.
        step: usize,
        /// Parameter name, when the diagnostic is about one parameter.
        param: Option<String>,
    },
    /// A file location (repolint).
    File {
        /// Workspace-relative path.
        path: String,
        /// 1-based line, 0 when unknown.
        line: usize,
    },
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::None => Ok(()),
            Span::Step { step, param: None } => write!(f, "step {step}"),
            Span::Step { step, param: Some(p) } => write!(f, "step {step}, param `{p}`"),
            Span::File { path, line: 0 } => write!(f, "{path}"),
            Span::File { path, line } => write!(f, "{path}:{line}"),
        }
    }
}

impl ToJson for Span {
    fn to_json(&self) -> Json {
        // Externally tagged, like the workspace's other payload enums.
        match self {
            Span::None => Json::Str("None".to_owned()),
            Span::Step { step, param } => Json::Object(vec![(
                "Step".to_owned(),
                Json::Object(vec![
                    ("step".to_owned(), step.to_json()),
                    ("param".to_owned(), param.to_json()),
                ]),
            )]),
            Span::File { path, line } => Json::Object(vec![(
                "File".to_owned(),
                Json::Object(vec![
                    ("path".to_owned(), path.to_json()),
                    ("line".to_owned(), line.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for Span {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some("None") = v.as_str() {
            return Ok(Span::None);
        }
        let fields = v.as_object().ok_or_else(|| JsonError::expected("Span", v))?;
        let (tag, payload) = match fields {
            [(tag, payload)] => (tag.as_str(), payload),
            _ => return Err(JsonError::msg("Span must be a single-key tagged object")),
        };
        let get = |name: &str| {
            payload
                .get(name)
                .ok_or_else(|| JsonError::missing_field("Span", name))
        };
        match tag {
            "Step" => Ok(Span::Step {
                step: FromJson::from_json(get("step")?)?,
                param: FromJson::from_json(get("param")?)?,
            }),
            "File" => Ok(Span::File {
                path: FromJson::from_json(get("path")?)?,
                line: FromJson::from_json(get("line")?)?,
            }),
            other => Err(JsonError::msg(format!("unknown Span variant `{other}`"))),
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`CG0xx` chain analysis, `CG1xx` repolint).
    pub code: String,
    /// Severity.
    pub severity: Severity,
    /// Location.
    pub span: Span,
    /// Human-readable description of the problem.
    pub message: String,
    /// A concrete fix, when the analysis can propose one.
    pub suggestion: Option<String>,
}

chatgraph_support::impl_json_struct!(Diagnostic {
    code,
    severity,
    span,
    message,
    suggestion,
});

impl Diagnostic {
    /// Builds a diagnostic with the code's registered default severity.
    pub fn new(code: &str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code: code.to_owned(),
            severity: code_info(code).map(|c| c.severity).unwrap_or(Severity::Warning),
            span,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a suggestion.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// One-line text rendering: `error[CG003] step 1: …`.
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]", self.severity, self.code);
        let span = self.span.to_string();
        if !span.is_empty() {
            out.push_str(&format!(" {span}"));
        }
        out.push_str(&format!(": {}", self.message));
        if let Some(s) = &self.suggestion {
            out.push_str(&format!(" (help: {s})"));
        }
        out
    }
}

/// A multi-diagnostic sink: analyses push every finding instead of stopping
/// at the first, and consumers query by severity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    /// The findings, in discovery order.
    pub items: Vec<Diagnostic>,
}

chatgraph_support::impl_json_struct!(Diagnostics { items });

impl Diagnostics {
    /// An empty sink.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Records a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing was found.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when any finding is `Error`-level.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// The findings at exactly `severity`.
    pub fn at(&self, severity: Severity) -> Vec<&Diagnostic> {
        self.items.iter().filter(|d| d.severity == severity).collect()
    }

    /// Count of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.items.iter().filter(|d| d.severity == severity).count()
    }

    /// The first `Error`-level finding, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.items.iter().find(|d| d.severity == Severity::Error)
    }

    /// Multi-line text report (one rendered diagnostic per line).
    pub fn render_text(&self) -> String {
        self.items
            .iter()
            .map(Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Compact JSON report.
    pub fn render_json(&self) -> String {
        chatgraph_support::json::to_string(self)
    }

    /// Merges another sink's findings into this one.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }
}

/// Registry entry of one diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeInfo {
    /// The stable code.
    pub code: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// Short title.
    pub title: &'static str,
}

/// Every diagnostic code this crate can emit, in code order. DESIGN.md §8
/// documents the policy; golden tests pin the table.
pub const CODES: &[CodeInfo] = &[
    CodeInfo { code: "CG001", severity: Severity::Error, title: "empty chain" },
    CodeInfo { code: "CG002", severity: Severity::Error, title: "unknown API" },
    CodeInfo { code: "CG003", severity: Severity::Error, title: "type mismatch between steps" },
    CodeInfo { code: "CG004", severity: Severity::Error, title: "graph input without session graph" },
    CodeInfo { code: "CG005", severity: Severity::Warning, title: "unknown parameter" },
    CodeInfo { code: "CG006", severity: Severity::Warning, title: "unparseable parameter value" },
    CodeInfo { code: "CG007", severity: Severity::Warning, title: "parameter value out of range" },
    CodeInfo { code: "CG008", severity: Severity::Warning, title: "discarded step output" },
    CodeInfo { code: "CG009", severity: Severity::Warning, title: "redundant repeated step" },
    CodeInfo { code: "CG010", severity: Severity::Warning, title: "step requires user confirmation" },
    CodeInfo { code: "CG011", severity: Severity::Info, title: "dead step (removable without changing the result)" },
    CodeInfo { code: "CG012", severity: Severity::Warning, title: "edit/read ordering hazard" },
    CodeInfo { code: "CG013", severity: Severity::Info, title: "needless mid-chain barrier" },
    CodeInfo { code: "CG014", severity: Severity::Warning, title: "required parameter missing" },
    CodeInfo { code: "CG015", severity: Severity::Info, title: "interleaved edits thrash the CSR snapshot cache" },
    CodeInfo { code: "CG016", severity: Severity::Error, title: "conflicting effects inside a parallel plan segment" },
    CodeInfo { code: "CG017", severity: Severity::Warning, title: "memoizable step reads findings (memo pollution hazard)" },
    CodeInfo { code: "CG101", severity: Severity::Error, title: "panic site in library code over allowlist" },
    CodeInfo { code: "CG102", severity: Severity::Error, title: "stale allowlist entry (ratchet must shrink)" },
    CodeInfo { code: "CG103", severity: Severity::Error, title: "unsafe code in workspace" },
    CodeInfo { code: "CG104", severity: Severity::Error, title: "non-hermetic dependency in manifest" },
    CodeInfo { code: "CG105", severity: Severity::Error, title: "workspace I/O failure during lint" },
    CodeInfo { code: "CG106", severity: Severity::Error, title: "catch_unwind outside the supervisor isolation boundary" },
    CodeInfo { code: "CG201", severity: Severity::Error, title: "lock acquisition cycle (potential deadlock)" },
    CodeInfo { code: "CG202", severity: Severity::Error, title: "guard held across a dispatch point (spawn/scope/send)" },
    CodeInfo { code: "CG203", severity: Severity::Error, title: "nested lock acquisition violates the declared order" },
    CodeInfo { code: "CG204", severity: Severity::Error, title: "unsanctioned poisoned-lock recovery" },
    CodeInfo { code: "CG205", severity: Severity::Error, title: "Relaxed atomic ordering over allowlist" },
];

/// Looks up a code's registry entry.
pub fn code_info(code: &str) -> Option<&'static CodeInfo> {
    CODES.iter().find(|c| c.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn codes_are_unique_and_sorted() {
        let codes: Vec<&str> = CODES.iter().map(|c| c.code).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(codes, sorted);
        assert!(codes.len() >= 15);
    }

    #[test]
    fn diagnostic_uses_registered_default_severity() {
        assert_eq!(
            Diagnostic::new("CG001", Span::None, "x").severity,
            Severity::Error
        );
        assert_eq!(
            Diagnostic::new("CG005", Span::Step { step: 0, param: None }, "x").severity,
            Severity::Warning
        );
    }

    #[test]
    fn render_text_is_one_line_per_diag() {
        let mut sink = Diagnostics::new();
        sink.push(Diagnostic::new("CG002", Span::Step { step: 1, param: None }, "unknown API `frob`")
            .with_suggestion("did you mean `graph_stats`?"));
        sink.push(Diagnostic::new("CG103", Span::File { path: "crates/x/src/lib.rs".into(), line: 9 }, "unsafe block"));
        let text = sink.render_text();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("error[CG002] step 1: unknown API `frob` (help: did you mean `graph_stats`?)"));
        assert!(text.contains("error[CG103] crates/x/src/lib.rs:9: unsafe block"));
    }

    #[test]
    fn sink_queries_by_severity() {
        let mut sink = Diagnostics::new();
        assert!(!sink.has_errors());
        sink.push(Diagnostic::new("CG010", Span::None, "confirm"));
        assert!(!sink.has_errors());
        sink.push(Diagnostic::new("CG003", Span::None, "mismatch"));
        assert!(sink.has_errors());
        assert_eq!(sink.count(Severity::Warning), 1);
        assert_eq!(sink.count(Severity::Error), 1);
        assert_eq!(sink.first_error().unwrap().code, "CG003");
    }

    #[test]
    fn diagnostics_json_roundtrip() {
        let mut sink = Diagnostics::new();
        sink.push(
            Diagnostic::new("CG006", Span::Step { step: 2, param: Some("k".into()) }, "bad value")
                .with_suggestion("use an integer"),
        );
        sink.push(Diagnostic::new("CG104", Span::File { path: "Cargo.toml".into(), line: 3 }, "git dep"));
        let s = sink.render_json();
        let back: Diagnostics = chatgraph_support::json::from_str(&s).unwrap();
        assert_eq!(back, sink);
    }

    #[test]
    fn json_format_is_stable() {
        let d = Diagnostic::new("CG001", Span::None, "chain is empty");
        assert_eq!(
            chatgraph_support::json::to_string(&d),
            r#"{"code":"CG001","severity":"Error","span":"None","message":"chain is empty","suggestion":null}"#
        );
    }
}
