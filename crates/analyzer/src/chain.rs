//! Multi-pass static analysis over the API-chain IR.
//!
//! The analyzer is deliberately decoupled from `chatgraph-apis` (which
//! depends on this crate): callers lower their chain and registry into the
//! small IR here — [`ChainIr`] steps against a [`Catalog`] of [`ApiSig`]s —
//! and get back a [`Diagnostics`] sink with *every* finding, not just the
//! first. `chatgraph_apis::analysis` is the canonical lowering.
//!
//! Passes, in order (codes in `diag::CODES`):
//!
//! 1. **Shape** — CG001 empty chain.
//! 2. **Resolution + type flow** — CG002 unknown API (with a nearest-name
//!    suggestion by edit distance), CG003 inter-step type mismatch, CG004
//!    graph-typed input with no session graph to fall back to.
//! 3. **Parameters** — against each API's declared [`ParamSpec`]s: CG005
//!    unknown parameter, CG006 unparseable value (the executor would
//!    silently fall back to the default), CG007 out-of-range value, CG014
//!    required parameter missing (the step fails at execution time).
//! 4. **Chain hygiene** — CG008 discarded output (no consumer and no later
//!    report sink), CG009 redundant repeated step, CG010 step requires
//!    user confirmation (surfaced by the confirm-and-edit flow).
//! 5. **Plan dataflow** — lints over the same dependency structure the plan
//!    lowering derives from [`ApiSig::mutates_graph`]: CG011 dead step
//!    (removable without changing the result), CG012 edit/read ordering
//!    hazard (a pre-edit graph read reported post-edit), CG013 needless
//!    mid-chain barrier (a report sink before the end of the chain), CG015
//!    interleaved edits thrashing the epoch-cached CSR snapshot.

use crate::diag::{Diagnostic, Diagnostics, Span};
use std::collections::BTreeMap;

/// What the type-flow rules need to know about a value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeClass {
    /// A property graph: inputs of this class fall back to the session graph.
    Graph,
    /// No value: inputs of this class are always satisfiable.
    Unit,
    /// Accepts anything (report/summary sinks).
    Any,
    /// Every other concrete type; flows by display-name equality.
    Other,
}

/// A lowered value type: a display name plus its flow class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigType {
    /// Human-readable name (e.g. `"number"`, `"edge-list"`).
    pub display: String,
    /// Flow class.
    pub class: TypeClass,
}

impl SigType {
    /// Builds a lowered type.
    pub fn new(display: impl Into<String>, class: TypeClass) -> Self {
        SigType { display: display.into(), class }
    }

    /// Whether an input slot of this type accepts a produced value of `v`.
    pub fn accepts(&self, v: &SigType) -> bool {
        self.class == TypeClass::Any || self.display == v.display
    }
}

/// Declared kind of one API parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// Parsed with `str::parse::<usize>`.
    Int,
    /// Parsed with `str::parse::<f64>`.
    Float,
    /// Any string.
    Text,
}

chatgraph_support::impl_json_enum_unit!(ParamKind { Int, Float, Text });

/// Declared schema of one API parameter (name, kind, range, default).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter name as it appears in [`ChainStep::params`].
    pub name: String,
    /// Value kind.
    pub kind: ParamKind,
    /// Inclusive lower bound (numeric kinds).
    pub min: Option<f64>,
    /// Inclusive upper bound (numeric kinds).
    pub max: Option<f64>,
    /// Default used when the parameter is absent or unparseable.
    pub default: Option<String>,
}

chatgraph_support::impl_json_struct!(ParamSpec { name, kind, min, max, default });

impl ParamSpec {
    /// An integer parameter with a range and default.
    pub fn int(name: &str, min: usize, max: usize, default: usize) -> Self {
        ParamSpec {
            name: name.to_owned(),
            kind: ParamKind::Int,
            min: Some(min as f64),
            max: Some(max as f64),
            default: Some(default.to_string()),
        }
    }

    /// A free-text parameter (no range, no default — i.e. required).
    pub fn text(name: &str) -> Self {
        ParamSpec { name: name.to_owned(), kind: ParamKind::Text, min: None, max: None, default: None }
    }

    /// A float parameter with a range and default.
    pub fn float(name: &str, min: f64, max: f64, default: f64) -> Self {
        ParamSpec {
            name: name.to_owned(),
            kind: ParamKind::Float,
            min: Some(min),
            max: Some(max),
            default: Some(default.to_string()),
        }
    }
}

/// Lowered signature of one API.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiSig {
    /// API name.
    pub name: String,
    /// Input type.
    pub input: SigType,
    /// Output type.
    pub output: SigType,
    /// Declared parameters.
    pub params: Vec<ParamSpec>,
    /// Whether execution asks the user to confirm first.
    pub requires_confirmation: bool,
    /// Whether execution mutates the session graph. Mutating steps are
    /// scheduling barriers in the execution plan and are never "dead".
    pub mutates_graph: bool,
}

/// One lowered chain step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainStep {
    /// API name.
    pub api: String,
    /// Free-form string parameters.
    pub params: BTreeMap<String, String>,
}

/// The lowered chain IR.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChainIr {
    /// Steps in execution order.
    pub steps: Vec<ChainStep>,
}

/// The lowered API catalogue the chain is checked against.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    sigs: BTreeMap<String, ApiSig>,
}

impl Catalog {
    /// Builds a catalogue from signatures.
    pub fn new<I: IntoIterator<Item = ApiSig>>(sigs: I) -> Self {
        Catalog {
            sigs: sigs.into_iter().map(|s| (s.name.clone(), s)).collect(),
        }
    }

    /// Looks up one signature.
    pub fn get(&self, name: &str) -> Option<&ApiSig> {
        self.sigs.get(name)
    }

    /// All names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.sigs.keys().map(String::as_str)
    }
}

/// Levenshtein edit distance (iterative two-row DP).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest name to `target` among `names`, when it is close enough to
/// be a plausible typo (distance ≤ max(2, |target|/3)).
pub fn nearest_name<'a, I: IntoIterator<Item = &'a str>>(target: &str, names: I) -> Option<&'a str> {
    let mut best: Option<(&'a str, usize)> = None;
    for name in names {
        let d = edit_distance(target, name);
        if best.map(|(_, bd)| d < bd).unwrap_or(true) {
            best = Some((name, d));
        }
    }
    let threshold = (target.chars().count() / 3).max(2);
    best.filter(|&(_, d)| d <= threshold).map(|(n, _)| n)
}

/// Whether appending an API with signature `sig` after a step producing
/// `prev` (None = chain start, i.e. unit) type-checks. The decoder uses
/// this to prune candidate extensions during search.
pub fn step_accepts(prev: Option<&SigType>, sig: &ApiSig, has_session_graph: bool) -> bool {
    let produced_display = prev.map(|t| t.display.as_str()).unwrap_or("unit");
    sig.input.class == TypeClass::Any
        || sig.input.display == produced_display
        || (sig.input.class == TypeClass::Graph && has_session_graph)
        || sig.input.class == TypeClass::Unit
}

/// Runs every pass over `chain` and returns all findings.
pub fn analyze_chain(chain: &ChainIr, catalog: &Catalog, has_session_graph: bool) -> Diagnostics {
    let mut sink = Diagnostics::new();
    if chain.steps.is_empty() {
        sink.push(Diagnostic::new("CG001", Span::None, "the chain has no steps"));
        return sink;
    }

    // Pass 2+3: resolution, type flow, and parameters, walking the steps in
    // order. `prev` is the produced type; None after an unknown API, so one
    // typo does not cascade into spurious mismatches downstream.
    let mut prev: Option<SigType> = Some(SigType::new("unit", TypeClass::Unit));
    for (i, step) in chain.steps.iter().enumerate() {
        let span = |param: Option<&str>| Span::Step { step: i, param: param.map(str::to_owned) };
        let Some(sig) = catalog.get(&step.api) else {
            let mut d = Diagnostic::new("CG002", span(None), format!("unknown API `{}`", step.api));
            if let Some(near) = nearest_name(&step.api, catalog.names()) {
                d = d.with_suggestion(format!("did you mean `{near}`?"));
            }
            sink.push(d);
            prev = None;
            continue;
        };
        if let Some(produced) = &prev {
            if !step_accepts(Some(produced), sig, has_session_graph) {
                if sig.input.class == TypeClass::Graph {
                    sink.push(Diagnostic::new(
                        "CG004",
                        span(None),
                        format!(
                            "API `{}` needs a graph input, but the previous step produced {} and no session graph was uploaded",
                            sig.name, produced.display
                        ),
                    ).with_suggestion("upload a graph with the prompt, or start the chain from a graph-producing API"));
                } else {
                    sink.push(Diagnostic::new(
                        "CG003",
                        span(None),
                        format!(
                            "API `{}` expects {} but the previous step produced {}",
                            sig.name, sig.input.display, produced.display
                        ),
                    ));
                }
            }
        }
        check_params(step, sig, i, &mut sink);
        prev = Some(sig.output.clone());
    }

    hygiene_pass(chain, catalog, &mut sink);
    plan_pass(chain, catalog, &mut sink);
    sink
}

/// Pass 3: parameters against the declared schema.
fn check_params(step: &ChainStep, sig: &ApiSig, i: usize, sink: &mut Diagnostics) {
    for (key, value) in &step.params {
        let span = Span::Step { step: i, param: Some(key.clone()) };
        let Some(spec) = sig.params.iter().find(|p| &p.name == key) else {
            let mut d = Diagnostic::new(
                "CG005",
                span,
                if sig.params.is_empty() {
                    format!("API `{}` takes no parameters, `{key}` is ignored", sig.name)
                } else {
                    format!("API `{}` has no parameter `{key}`", sig.name)
                },
            );
            if let Some(near) = nearest_name(key, sig.params.iter().map(|p| p.name.as_str())) {
                d = d.with_suggestion(format!("did you mean `{near}`?"));
            }
            sink.push(d);
            continue;
        };
        let parsed: Option<f64> = match spec.kind {
            ParamKind::Int => value.parse::<usize>().ok().map(|v| v as f64),
            ParamKind::Float => value.parse::<f64>().ok().filter(|v| v.is_finite()),
            ParamKind::Text => continue,
        };
        let Some(parsed) = parsed else {
            let kind = if spec.kind == ParamKind::Int { "an integer" } else { "a number" };
            let mut d = Diagnostic::new(
                "CG006",
                span,
                format!("parameter `{key}` of `{}` is not {kind}: `{value}`", sig.name),
            );
            if let Some(default) = &spec.default {
                d = d.with_suggestion(format!("execution falls back to the default `{default}`"));
            }
            sink.push(d);
            continue;
        };
        let below = spec.min.map(|m| parsed < m).unwrap_or(false);
        let above = spec.max.map(|m| parsed > m).unwrap_or(false);
        if below || above {
            let lo = spec.min.map(|m| m.to_string()).unwrap_or_else(|| "-inf".into());
            let hi = spec.max.map(|m| m.to_string()).unwrap_or_else(|| "inf".into());
            sink.push(Diagnostic::new(
                "CG007",
                span,
                format!(
                    "parameter `{key}` of `{}` is {parsed}, outside the declared range [{lo}, {hi}]",
                    sig.name
                ),
            ));
        }
    }

    // CG014: a parameter with no default is required — execution fails
    // without it, so surface the omission statically.
    for spec in &sig.params {
        if spec.default.is_none() && !step.params.contains_key(&spec.name) {
            sink.push(
                Diagnostic::new(
                    "CG014",
                    Span::Step { step: i, param: Some(spec.name.clone()) },
                    format!("required parameter `{}` of `{}` is missing", spec.name, sig.name),
                )
                .with_suggestion("the step will fail at execution time without it"),
            );
        }
    }
}

/// Pass 4: discarded outputs, redundant steps, confirmation requirements.
fn hygiene_pass(chain: &ChainIr, catalog: &Catalog, sink: &mut Diagnostics) {
    let sigs: Vec<Option<&ApiSig>> = chain.steps.iter().map(|s| catalog.get(&s.api)).collect();
    for (i, step) in chain.steps.iter().enumerate() {
        let Some(sig) = sigs[i] else { continue };
        let span = Span::Step { step: i, param: None };

        if sig.requires_confirmation {
            sink.push(Diagnostic::new(
                "CG010",
                span.clone(),
                format!("API `{}` requires user confirmation before it runs", sig.name),
            ));
        }

        // Redundant step: identical to its predecessor and side-effect-free
        // (confirmation-gated APIs mutate the graph, so repeating them is
        // meaningful).
        if i > 0 && !sig.requires_confirmation && chain.steps[i - 1] == *step {
            sink.push(
                Diagnostic::new(
                    "CG009",
                    span.clone(),
                    format!("step repeats `{}` with identical parameters", sig.name),
                )
                .with_suggestion("remove the duplicate step"),
            );
        }

        // Discarded output: a non-unit output no later step can see. Any
        // later `Any`-input sink (report/summary APIs) consumes all findings.
        if i + 1 < chain.steps.len() && sig.output.class != TypeClass::Unit {
            let consumed_by_next = sigs[i + 1]
                .map(|next| next.input.accepts(&sig.output))
                .unwrap_or(true); // unknown next: don't pile on
            let later_sink = sigs[i + 1..]
                .iter()
                .any(|s| s.map(|s| s.input.class == TypeClass::Any).unwrap_or(false));
            if !consumed_by_next && !later_sink {
                sink.push(
                    Diagnostic::new(
                        "CG008",
                        span,
                        format!(
                            "the {} produced by `{}` is discarded: the next step does not consume it and no report sink follows",
                            sig.output.display, sig.name
                        ),
                    )
                    .with_suggestion("append a report API or reorder the chain"),
                );
            }
        }
    }
}

/// Pass 5: plan-level dataflow lints. These reason about the same
/// dependency structure the execution-plan lowering derives — prev-output
/// consumption, report sinks as findings barriers, and graph mutation —
/// and therefore need [`ApiSig::mutates_graph`].
fn plan_pass(chain: &ChainIr, catalog: &Catalog, sink: &mut Diagnostics) {
    let sigs: Vec<Option<&ApiSig>> = chain.steps.iter().map(|s| catalog.get(&s.api)).collect();
    let last = chain.steps.len() - 1;
    let later_sink = |from: usize| {
        sigs[from..]
            .iter()
            .any(|s| s.is_some_and(|s| s.input.class == TypeClass::Any))
    };

    for (i, sig) in sigs.iter().enumerate() {
        let Some(sig) = sig else { continue };
        let span = Span::Step { step: i, param: None };

        // CG011 — dead step: pure (no mutation, no confirmation), its output
        // feeds no later step, and no report sink collects its finding.
        // Removing it cannot change the chain's result.
        if i < last && !sig.mutates_graph && !sig.requires_confirmation {
            let consumed = sigs[i + 1]
                .map(|next| next.input.accepts(&sig.output))
                .unwrap_or(true); // unknown next step: don't pile on
            if !consumed && !later_sink(i + 1) {
                sink.push(
                    Diagnostic::new(
                        "CG011",
                        span.clone(),
                        format!(
                            "step is dead: removing `{}` would not change the chain's result",
                            sig.name
                        ),
                    )
                    .with_suggestion("delete the step or append a report API that collects its finding"),
                );
            }
        }

        // CG013 — a report sink anywhere but last is a needless barrier: it
        // must wait for every earlier step and every later step must wait
        // for it, serialising the plan around a partial report.
        if i < last && sig.input.class == TypeClass::Any {
            sink.push(
                Diagnostic::new(
                    "CG013",
                    span,
                    format!(
                        "report sink `{}` in the middle of the chain forces a scheduling barrier",
                        sig.name
                    ),
                )
                .with_suggestion("move the report to the end of the chain"),
            );
        }
    }

    // CG012 — edit/read ordering hazard: a pure graph read scheduled before
    // an edit, whose finding a report collects only after the edit ran. The
    // report then mixes pre- and post-edit views of the graph. A read whose
    // output the next step consumes (detect → edit pipelines) is the
    // intentional pattern and is not flagged.
    let first_mutator = sigs.iter().position(|s| s.is_some_and(|s| s.mutates_graph));
    if let Some(m) = first_mutator {
        let reader = (0..m).find(|&r| {
            let is_pure_read = sigs[r]
                .is_some_and(|s| s.input.class == TypeClass::Graph && !s.mutates_graph);
            let consumed_by_next = match (sigs[r], sigs.get(r + 1).copied().flatten()) {
                (Some(s), Some(next)) => next.input.accepts(&s.output),
                _ => true,
            };
            is_pure_read && !consumed_by_next
        });
        if let (Some(r), true) = (reader, later_sink(m + 1)) {
            let reader_name = sigs[r].map(|s| s.name.as_str()).unwrap_or("?");
            let mutator_name = sigs[m].map(|s| s.name.as_str()).unwrap_or("?");
            sink.push(
                Diagnostic::new(
                    "CG012",
                    Span::Step { step: r, param: None },
                    format!(
                        "`{reader_name}` reads the graph before `{mutator_name}` edits it at step {m}, but its finding is reported after the edit"
                    ),
                )
                .with_suggestion("move the read after the edit, or report before editing"),
            );
        }
    }

    // CG015 — CSR-cache thrash: two graph edits with only pure graph-reading
    // analytics strictly between them. Every edit starts a new mutation
    // epoch, so the interleaved analytics rebuild the compressed (CSR)
    // snapshot that the very next edit immediately invalidates again. When
    // no prev-output consumption links cross the window — none of the
    // in-between outputs feed their successor, and neither edit consumes a
    // value produced inside the window — the plan's own dependency structure
    // proves the reads can be grouped on one side of both edits.
    let mutators: Vec<usize> = sigs
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_some_and(|s| s.mutates_graph))
        .map(|(i, _)| i)
        .collect();
    for w in mutators.windows(2) {
        let (m1, m2) = (w[0], w[1]);
        if m2 <= m1 + 1 {
            continue;
        }
        let pure_reads_between = (m1 + 1..m2).all(|j| {
            sigs[j].is_some_and(|s| {
                s.input.class == TypeClass::Graph && !s.mutates_graph && !s.requires_confirmation
            })
        });
        let no_links = (m1 + 1..=m2).all(|j| match (sigs[j - 1], sigs[j]) {
            (Some(prev), Some(s)) => !s.input.accepts(&prev.output),
            _ => false,
        });
        if pure_reads_between && no_links {
            let m1_name = sigs[m1].map(|s| s.name.as_str()).unwrap_or("?");
            let m2_name = sigs[m2].map(|s| s.name.as_str()).unwrap_or("?");
            sink.push(
                Diagnostic::new(
                    "CG015",
                    Span::Step { step: m2, param: None },
                    format!(
                        "edit `{m2_name}` re-mutates the graph after analytics that follow edit `{m1_name}` at step {m1}: each edit invalidates the cached CSR snapshot the analytics just rebuilt"
                    ),
                )
                .with_suggestion(
                    "group the edits together and run the analytics before or after both, so one CSR snapshot serves every read",
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn t(display: &str, class: TypeClass) -> SigType {
        SigType::new(display, class)
    }

    fn catalog() -> Catalog {
        Catalog::new([
            ApiSig {
                name: "node_count".into(),
                input: t("graph", TypeClass::Graph),
                output: t("number", TypeClass::Other),
                params: vec![],
                requires_confirmation: false,
                mutates_graph: false,
            },
            ApiSig {
                name: "top_pagerank".into(),
                input: t("graph", TypeClass::Graph),
                output: t("table", TypeClass::Other),
                params: vec![ParamSpec::int("k", 1, 100, 5)],
                requires_confirmation: false,
                mutates_graph: false,
            },
            ApiSig {
                name: "remove_edges".into(),
                input: t("edge-list", TypeClass::Other),
                output: t("number", TypeClass::Other),
                params: vec![],
                requires_confirmation: true,
                mutates_graph: true,
            },
            ApiSig {
                name: "relabel_nodes".into(),
                input: t("graph", TypeClass::Graph),
                output: t("number", TypeClass::Other),
                params: vec![ParamSpec::text("from"), ParamSpec::text("to")],
                requires_confirmation: true,
                mutates_graph: true,
            },
            ApiSig {
                name: "generate_report".into(),
                input: t("any", TypeClass::Any),
                output: t("report", TypeClass::Other),
                params: vec![],
                requires_confirmation: false,
                mutates_graph: false,
            },
        ])
    }

    fn chain(names: &[&str]) -> ChainIr {
        ChainIr {
            steps: names
                .iter()
                .map(|n| ChainStep { api: (*n).to_owned(), params: BTreeMap::new() })
                .collect(),
        }
    }

    fn codes(d: &Diagnostics) -> Vec<&str> {
        d.items.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn empty_chain_is_cg001() {
        let d = analyze_chain(&chain(&[]), &catalog(), true);
        assert_eq!(codes(&d), vec!["CG001"]);
        assert!(d.has_errors());
    }

    #[test]
    fn unknown_api_is_cg002_with_suggestion() {
        let d = analyze_chain(&chain(&["node_cuont"]), &catalog(), true);
        assert_eq!(codes(&d), vec!["CG002"]);
        assert_eq!(d.items[0].suggestion.as_deref(), Some("did you mean `node_count`?"));
    }

    #[test]
    fn type_mismatch_is_cg003() {
        let d = analyze_chain(&chain(&["node_count", "remove_edges"]), &catalog(), true);
        assert!(codes(&d).contains(&"CG003"), "{}", d.render_text());
    }

    #[test]
    fn missing_session_graph_is_cg004() {
        let d = analyze_chain(&chain(&["node_count"]), &catalog(), false);
        assert_eq!(codes(&d), vec!["CG004"]);
        let ok = analyze_chain(&chain(&["node_count"]), &catalog(), true);
        assert!(ok.is_empty(), "{}", ok.render_text());
    }

    #[test]
    fn all_type_errors_are_collected_not_just_first() {
        // Two independent mismatches in one chain.
        let d = analyze_chain(
            &chain(&["node_count", "remove_edges", "node_count", "remove_edges"]),
            &catalog(),
            false,
        );
        let errs: Vec<&str> = d
            .items
            .iter()
            .filter(|x| x.severity == Severity::Error)
            .map(|x| x.code.as_str())
            .collect();
        assert!(errs.len() >= 3, "{}", d.render_text());
    }

    #[test]
    fn unknown_param_is_cg005_with_suggestion() {
        let mut c = chain(&["top_pagerank", "generate_report"]);
        c.steps[0].params.insert("kk".into(), "5".into());
        let d = analyze_chain(&c, &catalog(), true);
        assert_eq!(codes(&d), vec!["CG005"]);
        assert_eq!(d.items[0].suggestion.as_deref(), Some("did you mean `k`?"));
        assert!(!d.has_errors());
    }

    #[test]
    fn unparseable_param_is_cg006() {
        let mut c = chain(&["top_pagerank", "generate_report"]);
        c.steps[0].params.insert("k".into(), "lots".into());
        let d = analyze_chain(&c, &catalog(), true);
        assert_eq!(codes(&d), vec!["CG006"]);
        assert!(d.items[0].suggestion.as_deref().unwrap_or("").contains("default `5`"));
    }

    #[test]
    fn out_of_range_param_is_cg007() {
        let mut c = chain(&["top_pagerank", "generate_report"]);
        c.steps[0].params.insert("k".into(), "5000".into());
        let d = analyze_chain(&c, &catalog(), true);
        assert_eq!(codes(&d), vec!["CG007"]);
    }

    #[test]
    fn discarded_output_is_cg008_unless_sink_follows() {
        let d = analyze_chain(&chain(&["node_count", "node_count"]), &catalog(), true);
        assert!(codes(&d).contains(&"CG008"), "{}", d.render_text());
        let with_sink = analyze_chain(
            &chain(&["node_count", "node_count", "generate_report"]),
            &catalog(),
            true,
        );
        assert!(!codes(&with_sink).contains(&"CG008"), "{}", with_sink.render_text());
    }

    #[test]
    fn repeated_step_is_cg009() {
        let d = analyze_chain(
            &chain(&["node_count", "node_count", "generate_report"]),
            &catalog(),
            true,
        );
        assert!(codes(&d).contains(&"CG009"), "{}", d.render_text());
        // Different params are not redundant.
        let mut c = chain(&["top_pagerank", "top_pagerank", "generate_report"]);
        c.steps[1].params.insert("k".into(), "9".into());
        let d2 = analyze_chain(&c, &catalog(), true);
        assert!(!codes(&d2).contains(&"CG009"), "{}", d2.render_text());
    }

    #[test]
    fn confirmation_step_is_cg010() {
        let mut c = chain(&["remove_edges"]);
        c.steps[0].params.clear();
        let d = analyze_chain(&c, &catalog(), true);
        assert!(codes(&d).contains(&"CG010"), "{}", d.render_text());
        // CG010 is a warning: it must not block execution on its own.
        assert!(d.items.iter().filter(|x| x.code == "CG010").all(|x| x.severity == Severity::Warning));
    }

    #[test]
    fn unknown_api_does_not_cascade_type_errors() {
        let d = analyze_chain(&chain(&["frobnicate", "node_count"]), &catalog(), true);
        assert_eq!(codes(&d), vec!["CG002"], "{}", d.render_text());
    }

    #[test]
    fn dead_step_is_cg011_unless_sink_or_effect() {
        let d = analyze_chain(&chain(&["node_count", "node_count"]), &catalog(), true);
        assert!(codes(&d).contains(&"CG011"), "{}", d.render_text());
        assert!(d.items.iter().filter(|x| x.code == "CG011").all(|x| x.severity == Severity::Info));
        // A later report sink collects the finding: not dead.
        let with_sink = analyze_chain(
            &chain(&["node_count", "node_count", "generate_report"]),
            &catalog(),
            true,
        );
        assert!(!codes(&with_sink).contains(&"CG011"), "{}", with_sink.render_text());
        // A mutating step is never dead, even with its output discarded.
        let mut c = chain(&["relabel_nodes", "node_count"]);
        c.steps[0].params.insert("from".into(), "A".into());
        c.steps[0].params.insert("to".into(), "B".into());
        let mutating = analyze_chain(&c, &catalog(), true);
        assert!(!codes(&mutating).contains(&"CG011"), "{}", mutating.render_text());
    }

    #[test]
    fn edit_read_race_is_cg012() {
        // top_pagerank's table is only a finding; it is read pre-edit but
        // reported post-edit.
        let mut c = chain(&["top_pagerank", "relabel_nodes", "generate_report"]);
        c.steps[1].params.insert("from".into(), "A".into());
        c.steps[1].params.insert("to".into(), "B".into());
        let d = analyze_chain(&c, &catalog(), true);
        assert!(codes(&d).contains(&"CG012"), "{}", d.render_text());
        assert!(d.items.iter().filter(|x| x.code == "CG012").all(|x| x.severity == Severity::Warning));
        // Without a report after the edit there is nothing to mix: no CG012.
        let mut c2 = chain(&["top_pagerank", "relabel_nodes"]);
        c2.steps[1].params.insert("from".into(), "A".into());
        c2.steps[1].params.insert("to".into(), "B".into());
        let d2 = analyze_chain(&c2, &catalog(), true);
        assert!(!codes(&d2).contains(&"CG012"), "{}", d2.render_text());
    }

    #[test]
    fn edit_before_any_read_is_not_a_race() {
        // No pure graph read precedes the edit, so there is nothing the
        // report could mix, even with a sink afterwards.
        let mut c = chain(&["relabel_nodes", "generate_report"]);
        c.steps[0].params.insert("from".into(), "A".into());
        c.steps[0].params.insert("to".into(), "B".into());
        let d = analyze_chain(&c, &catalog(), true);
        assert!(!codes(&d).contains(&"CG012"), "{}", d.render_text());
    }

    #[test]
    fn mid_chain_sink_is_cg013() {
        let d = analyze_chain(
            &chain(&["node_count", "generate_report", "node_count"]),
            &catalog(),
            true,
        );
        assert!(codes(&d).contains(&"CG013"), "{}", d.render_text());
        let at_end = analyze_chain(&chain(&["node_count", "generate_report"]), &catalog(), true);
        assert!(!codes(&at_end).contains(&"CG013"), "{}", at_end.render_text());
    }

    #[test]
    fn missing_required_param_is_cg014() {
        let d = analyze_chain(&chain(&["relabel_nodes"]), &catalog(), true);
        let cg014: Vec<_> = d.items.iter().filter(|x| x.code == "CG014").collect();
        assert_eq!(cg014.len(), 2, "{}", d.render_text());
        assert!(cg014.iter().all(|x| x.severity == Severity::Warning));
        // Providing both parameters silences the lint.
        let mut c = chain(&["relabel_nodes"]);
        c.steps[0].params.insert("from".into(), "A".into());
        c.steps[0].params.insert("to".into(), "B".into());
        let d2 = analyze_chain(&c, &catalog(), true);
        assert!(!codes(&d2).contains(&"CG014"), "{}", d2.render_text());
    }

    #[test]
    fn interleaved_edits_are_cg015() {
        // edit → analytics → edit: the middle read rebuilds a CSR snapshot
        // the second edit immediately invalidates.
        let mut c = chain(&["relabel_nodes", "top_pagerank", "relabel_nodes"]);
        for i in [0, 2] {
            c.steps[i].params.insert("from".into(), "A".into());
            c.steps[i].params.insert("to".into(), "B".into());
        }
        let d = analyze_chain(&c, &catalog(), true);
        let cg015: Vec<_> = d.items.iter().filter(|x| x.code == "CG015").collect();
        assert_eq!(cg015.len(), 1, "{}", d.render_text());
        assert!(cg015.iter().all(|x| x.severity == Severity::Info));
        assert!(matches!(cg015[0].span, Span::Step { step: 2, .. }), "{:?}", cg015[0].span);
        assert!(cg015[0].suggestion.as_deref().unwrap_or("").contains("group the edits"));
    }

    #[test]
    fn adjacent_or_linked_edits_are_not_cg015() {
        // Adjacent edits: already batched, nothing to reorder.
        let mut adjacent = chain(&["relabel_nodes", "relabel_nodes", "top_pagerank"]);
        for i in [0, 1] {
            adjacent.steps[i].params.insert("from".into(), "A".into());
            adjacent.steps[i].params.insert("to".into(), "B".into());
        }
        let d = analyze_chain(&adjacent, &catalog(), true);
        assert!(!codes(&d).contains(&"CG015"), "{}", d.render_text());

        // A report sink between the edits is not a pure graph read, so the
        // reorder is not provably safe.
        let mut sunk = chain(&["relabel_nodes", "generate_report", "relabel_nodes"]);
        for i in [0, 2] {
            sunk.steps[i].params.insert("from".into(), "A".into());
            sunk.steps[i].params.insert("to".into(), "B".into());
        }
        let d2 = analyze_chain(&sunk, &catalog(), true);
        assert!(!codes(&d2).contains(&"CG015"), "{}", d2.render_text());
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(nearest_name("graph_stat", ["graph_stats", "node_count"]), Some("graph_stats"));
        assert_eq!(nearest_name("zzzzzz", ["graph_stats", "node_count"]), None);
    }

    #[test]
    fn step_accepts_mirrors_validator_rules() {
        let cat = catalog();
        let number = t("number", TypeClass::Other);
        // Graph input with a session graph: ok from anywhere.
        assert!(step_accepts(Some(&number), cat.get("node_count").unwrap(), true));
        assert!(!step_accepts(Some(&number), cat.get("node_count").unwrap(), false));
        // Any-input sink accepts everything.
        assert!(step_accepts(Some(&number), cat.get("generate_report").unwrap(), false));
        // Chain start counts as unit.
        assert!(!step_accepts(None, cat.get("remove_edges").unwrap(), true));
    }
}
