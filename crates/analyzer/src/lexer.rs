//! A small hand-rolled Rust lexer for repolint.
//!
//! The hermetic policy forbids `syn`, and repolint only needs enough
//! structure to tell *code* apart from comments, strings, and test-only
//! regions: identifiers, punctuation, and literals, each with a 1-based
//! line number. It understands line and (nested) block comments, regular /
//! raw / byte string literals, char literals vs. lifetimes, and numeric
//! literals — everything else is punctuation.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword; the text is stored.
    Ident(String),
    /// A single punctuation character (`#`, `[`, `{`, `.`, `!`, …).
    Punct(char),
    /// A string, char, or numeric literal (contents dropped).
    Literal,
    /// A lifetime (`'a`).
    Lifetime,
}

/// One token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind (and text, for identifiers).
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Lexes `source` into significant tokens, skipping comments and the
/// contents of string literals.
pub fn scan(source: &str) -> Vec<Token> {
    Lexer { chars: source.chars().collect(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.skip_line_comment(),
                '/' if self.peek(1) == Some('*') => self.skip_block_comment(),
                '\'' => self.char_or_lifetime(),
                '"' => self.string_literal(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_literal(),
                c => {
                    self.push(TokenKind::Punct(c));
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind) {
        self.out.push(Token { kind, line: self.line });
    }

    fn bump_tracking_newlines(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    fn skip_line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.pos += 1;
        }
    }

    fn skip_block_comment(&mut self) {
        // Block comments nest in Rust.
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => {
                    self.bump_tracking_newlines();
                }
                (None, _) => break,
            }
        }
    }

    /// `'a'` / `'\n'` are char literals; `'a` (no closing quote after one
    /// character) is a lifetime.
    fn char_or_lifetime(&mut self) {
        if self.peek(1) == Some('\\') {
            // Escaped char literal: skip to the closing quote.
            self.pos += 2;
            while let Some(c) = self.bump_tracking_newlines() {
                if c == '\'' {
                    break;
                }
            }
            self.push(TokenKind::Literal);
        } else if self.peek(2) == Some('\'') && self.peek(1).is_some() {
            self.pos += 3;
            self.push(TokenKind::Literal);
        } else {
            // Lifetime: consume the quote plus identifier characters.
            self.pos += 1;
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime);
        }
    }

    /// A regular `"..."` string with escapes.
    fn string_literal(&mut self) {
        self.pos += 1;
        while let Some(c) = self.bump_tracking_newlines() {
            match c {
                '\\' => {
                    self.bump_tracking_newlines();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal);
    }

    /// A raw string `r"..."` / `r#"..."#` with `hashes` leading `#`s; the
    /// cursor sits on the opening quote.
    fn raw_string_literal(&mut self, hashes: usize) {
        self.pos += 1;
        'outer: while let Some(c) = self.bump_tracking_newlines() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                self.pos += hashes;
                break;
            }
        }
        self.push(TokenKind::Literal);
    }

    /// A numeric literal: digits plus suffix characters and a simple
    /// fractional part (`1_000u64`, `0xfe`, `2.5e-3`).
    fn number(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.pos += 1;
            } else if c == '.' && self.peek(1).map(|d| d.is_ascii_digit()).unwrap_or(false) {
                self.pos += 1;
            } else if (c == '+' || c == '-')
                && matches!(self.chars.get(self.pos.wrapping_sub(1)), Some('e') | Some('E'))
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokenKind::Literal);
    }

    /// An identifier — or, for the raw/byte prefixes (`r`, `b`, `br`, `c`,
    /// `cr`), the string literal they introduce.
    fn ident_or_prefixed_literal(&mut self) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        match (text.as_str(), self.peek(0)) {
            ("r" | "br" | "cr", Some('"')) => self.raw_string_literal(0),
            ("r" | "br" | "cr", Some('#')) => {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                // `r#ident` is a raw identifier, not a raw string.
                if self.peek(hashes) == Some('"') {
                    self.pos += hashes;
                    self.raw_string_literal(hashes);
                } else {
                    self.push(TokenKind::Ident(text));
                }
            }
            ("b" | "c", Some('"')) => self.string_literal(),
            ("b", Some('\'')) => self.char_or_lifetime_as_literal(),
            _ => self.push(TokenKind::Ident(text)),
        }
    }

    /// A byte char literal `b'x'` (always a literal, never a lifetime).
    fn char_or_lifetime_as_literal(&mut self) {
        self.pos += 1; // the quote
        if self.peek(0) == Some('\\') {
            self.pos += 1;
        }
        self.bump_tracking_newlines();
        if self.peek(0) == Some('\'') {
            self.pos += 1;
        }
        self.push(TokenKind::Literal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let src = r##"
            // x.unwrap() in a line comment
            /* panic!("no") /* nested */ still comment */
            let s = "x.unwrap() in a string";
            let r = r#"panic!("raw")"#;
            let b = b"unwrap";
            value.unwrap();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|i| i.as_str() == "unwrap").count(), 1);
        assert!(!ids.contains(&"panic".to_owned()));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x.expect_none(); x }";
        let ids = idents(src);
        assert!(ids.contains(&"expect_none".to_owned()));
        assert!(!ids.contains(&"a".to_owned()));
    }

    #[test]
    fn char_literals_close_properly() {
        let src = "let c = 'x'; let n = '\\n'; y.unwrap();";
        assert_eq!(idents(src), vec!["let", "c", "let", "n", "y", "unwrap"]);
    }

    #[test]
    fn line_numbers_are_tracked_through_multiline_strings() {
        let src = "let a = \"one\ntwo\";\nx.unwrap();";
        let toks = scan(src);
        let unwrap = toks.iter().find(|t| t.ident() == Some("unwrap")).unwrap();
        assert_eq!(unwrap.line, 3);
    }

    #[test]
    fn raw_identifiers_are_identifiers() {
        let ids = idents("let r#type = 1; r#type.unwrap();");
        assert_eq!(ids.iter().filter(|i| i.as_str() == "type").count(), 2);
        assert!(ids.contains(&"unwrap".to_owned()));
    }

    #[test]
    fn exact_identifier_matching_distinguishes_unwrap_or() {
        let ids = idents("x.unwrap_or(0); y.unwrap_or_else(f); z.unwrap();");
        assert_eq!(ids.iter().filter(|i| i.as_str() == "unwrap").count(), 1);
        assert!(ids.contains(&"unwrap_or".to_owned()));
        assert!(ids.contains(&"unwrap_or_else".to_owned()));
    }

    #[test]
    fn numbers_with_suffixes_and_exponents() {
        let ids = idents("let x = 1_000u64 + 2.5e-3 + 0xfe; x.unwrap();");
        assert!(ids.contains(&"unwrap".to_owned()));
        // `u64`, `e`, `fe` must not leak out of the literals.
        assert!(!ids.contains(&"u64".to_owned()));
        assert!(!ids.contains(&"fe".to_owned()));
    }
}
