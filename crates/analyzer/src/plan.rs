//! Parallel-segment interference audit (CG016/CG017): re-proves the plan
//! scheduler's barrier classification on the lowered plan IR.
//!
//! The scheduler (in `chatgraph-apis`) lowers a chain into a [`PlanIr`]-
//! shaped plan — steps with effect flags, dependency edges, and a segment
//! decomposition — and runs every `Parallel` segment's sub-chains on a
//! worker pool with *empty* local findings and a shared cross-tenant memo.
//! That is only sound if the classification is right, so this pass
//! independently verifies it before anything executes:
//!
//! - **CG016** (Error, refuses execution like the chain analyzer's
//!   `AnalysisRejected`): a step inside a `Parallel` segment mutates the
//!   session graph or is barrier-classified, or a dependency edge crosses
//!   sub-chains of the same segment (two co-scheduled steps would race on
//!   ordering).
//! - **CG017** (Warning): a memoizable step reads findings. Memo keys
//!   fingerprint the API, params, seed, graph, input, and database — but
//!   *not* findings — so a findings-reading step served from the shared
//!   memo could leak one tenant's findings-derived result to another.
//!
//! Like [`crate::chain`], this module owns only the IR and the checks;
//! `chatgraph-apis` lowers its `Plan` into [`PlanIr`] (the dependency
//! points that way round to avoid a crate cycle).

use crate::diag::{Diagnostic, Diagnostics, Span};

/// One plan step, reduced to what the interference audit needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStepIr {
    /// 0-based step index (also the chain position).
    pub index: usize,
    /// API name, for messages.
    pub api: String,
    /// The step rewrites the session graph.
    pub mutates_graph: bool,
    /// The step reads the accumulated findings list.
    pub reads_findings: bool,
    /// The step may be served from / stored into the shared memo.
    pub memoizable: bool,
    /// The scheduler classified the step as a barrier (runs alone).
    pub barrier: bool,
    /// Indices of steps this step depends on.
    pub deps: Vec<usize>,
}

/// One scheduling segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentIr {
    /// A single step that runs alone, all earlier work completed.
    Barrier(usize),
    /// Independent sub-chains co-scheduled on the worker pool.
    Parallel(Vec<Vec<usize>>),
}

/// A lowered plan: steps plus its segment decomposition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanIr {
    /// The steps, indexed by `PlanStepIr::index`.
    pub steps: Vec<PlanStepIr>,
    /// The segment decomposition, in execution order.
    pub segments: Vec<SegmentIr>,
}

/// Audits a lowered plan for parallel-segment interference.
pub fn audit_plan(plan: &PlanIr) -> Diagnostics {
    let mut sink = Diagnostics::new();
    for segment in &plan.segments {
        let SegmentIr::Parallel(chains) = segment else {
            continue;
        };
        // Which sub-chain each co-scheduled step belongs to.
        let mut chain_of = std::collections::BTreeMap::new();
        for (ci, chain) in chains.iter().enumerate() {
            for &s in chain {
                chain_of.insert(s, ci);
            }
        }
        for (ci, chain) in chains.iter().enumerate() {
            for (pos, &s) in chain.iter().enumerate() {
                let Some(step) = plan.steps.get(s) else {
                    sink.push(Diagnostic::new(
                        "CG016",
                        Span::None,
                        format!("parallel segment references step {s} outside the plan"),
                    ));
                    continue;
                };
                let span = Span::Step { step: s, param: None };
                if step.mutates_graph {
                    sink.push(Diagnostic::new(
                        "CG016",
                        span.clone(),
                        format!(
                            "`{}` mutates the session graph but is co-scheduled in a \
                             parallel segment",
                            step.api
                        ),
                    ));
                } else if step.barrier {
                    // Covered by the mutation arm when both hold; either way
                    // a barrier-classified step must never be co-scheduled.
                    sink.push(Diagnostic::new(
                        "CG016",
                        span.clone(),
                        format!(
                            "`{}` is barrier-classified but placed inside a parallel segment",
                            step.api
                        ),
                    ));
                }
                for &d in &step.deps {
                    match chain_of.get(&d) {
                        Some(&dc) if dc != ci => sink.push(Diagnostic::new(
                            "CG016",
                            span.clone(),
                            format!(
                                "`{}` (step {s}) depends on co-scheduled step {d} in a \
                                 different sub-chain of the same segment",
                                step.api
                            ),
                        )),
                        Some(_) if chain[..pos].iter().all(|&p| p != d) => {
                            sink.push(Diagnostic::new(
                                "CG016",
                                span.clone(),
                                format!(
                                    "`{}` (step {s}) depends on step {d}, which its \
                                     sub-chain schedules after it",
                                    step.api
                                ),
                            ))
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    // CG017 is positional, not segment-scoped: any memoizable step that
    // reads findings can be served from the shared cross-tenant memo with
    // findings the key never fingerprinted.
    for step in &plan.steps {
        if step.memoizable && step.reads_findings {
            sink.push(
                Diagnostic::new(
                    "CG017",
                    Span::Step { step: step.index, param: None },
                    format!(
                        "`{}` reads findings but is memo-eligible; memo keys do not \
                         fingerprint findings, so a shared-memo hit could cross tenants",
                        step.api
                    ),
                )
                .with_suggestion("classify findings-reading steps as barriers (not memoizable)"),
            );
        }
    }
    sink
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(index: usize, api: &str) -> PlanStepIr {
        PlanStepIr {
            index,
            api: api.to_owned(),
            mutates_graph: false,
            reads_findings: false,
            memoizable: true,
            barrier: false,
            deps: Vec::new(),
        }
    }

    fn codes(d: &Diagnostics) -> Vec<&str> {
        d.items.iter().map(|x| x.code.as_str()).collect()
    }

    #[test]
    fn clean_parallel_plan_passes() {
        let plan = PlanIr {
            steps: vec![step(0, "node_count"), step(1, "edge_count")],
            segments: vec![SegmentIr::Parallel(vec![vec![0], vec![1]])],
        };
        assert!(audit_plan(&plan).is_empty());
    }

    #[test]
    fn mutating_step_in_parallel_segment_is_cg016_error() {
        let mut s = step(0, "remove_edges");
        s.mutates_graph = true;
        let plan = PlanIr {
            steps: vec![s, step(1, "node_count")],
            segments: vec![SegmentIr::Parallel(vec![vec![0], vec![1]])],
        };
        let d = audit_plan(&plan);
        assert_eq!(codes(&d), vec!["CG016"]);
        assert!(d.has_errors());
    }

    #[test]
    fn barrier_step_in_parallel_segment_is_cg016() {
        let mut s = step(1, "generate_report");
        s.barrier = true;
        let plan = PlanIr {
            steps: vec![step(0, "node_count"), s],
            segments: vec![SegmentIr::Parallel(vec![vec![0], vec![1]])],
        };
        assert_eq!(codes(&audit_plan(&plan)), vec!["CG016"]);
    }

    #[test]
    fn cross_chain_dependency_is_cg016() {
        let mut s1 = step(1, "graph_density");
        s1.deps = vec![0];
        let plan = PlanIr {
            steps: vec![step(0, "node_count"), s1],
            segments: vec![SegmentIr::Parallel(vec![vec![0], vec![1]])],
        };
        let d = audit_plan(&plan);
        assert_eq!(codes(&d), vec!["CG016"]);
        assert!(d.items[0].message.contains("different sub-chain"));
    }

    #[test]
    fn in_chain_dependency_order_is_checked() {
        let mut s0 = step(0, "a");
        s0.deps = vec![1]; // depends on a step its own sub-chain runs later
        let plan = PlanIr {
            steps: vec![s0, step(1, "b")],
            segments: vec![SegmentIr::Parallel(vec![vec![0, 1]])],
        };
        assert_eq!(codes(&audit_plan(&plan)), vec!["CG016"]);
    }

    #[test]
    fn dependency_on_earlier_step_of_same_chain_is_fine() {
        let mut s1 = step(1, "b");
        s1.deps = vec![0];
        let plan = PlanIr {
            steps: vec![step(0, "a"), s1],
            segments: vec![SegmentIr::Parallel(vec![vec![0, 1]])],
        };
        assert!(audit_plan(&plan).is_empty());
    }

    #[test]
    fn memoizable_findings_reader_is_cg017_warning() {
        let mut s = step(0, "generate_report");
        s.reads_findings = true;
        let plan = PlanIr {
            steps: vec![s],
            segments: vec![SegmentIr::Barrier(0)],
        };
        let d = audit_plan(&plan);
        assert_eq!(codes(&d), vec!["CG017"]);
        assert!(!d.has_errors());
    }

    #[test]
    fn out_of_range_step_in_segment_is_reported_not_panicking() {
        let plan = PlanIr {
            steps: vec![step(0, "a")],
            segments: vec![SegmentIr::Parallel(vec![vec![0], vec![7]])],
        };
        assert_eq!(codes(&audit_plan(&plan)), vec!["CG016"]);
    }
}
