//! A small bounded LRU map, vendored in place of the `lru` crate.
//!
//! Backing store is a `HashMap` plus a monotonic access tick; eviction
//! scans for the minimum tick. That makes `insert` O(capacity) in the
//! worst case, which is fine for the intended use — a memo cache of at
//! most a few hundred chain-step results — and keeps the implementation
//! dependency-free and obviously correct.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded least-recently-used map. Capacity 0 disables storage entirely
/// (every `insert` is a no-op), so callers can switch caching off without
/// branching.
#[derive(Debug, Clone)]
pub struct Lru<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Lru {
            capacity,
            tick: 0,
            map: HashMap::with_capacity(capacity.min(1024)),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.0 = tick;
            &slot.1
        })
    }

    /// Inserts `key → value`, evicting the least-recently-used entry if the
    /// cache is full. Returns the evicted value, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        if let Some(slot) = self.map.get_mut(&key) {
            slot.0 = self.tick;
            return Some(std::mem::replace(&mut slot.1, value));
        }
        let evicted = if self.map.len() >= self.capacity {
            self.map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
                .and_then(|k| self.map.remove(&k).map(|(_, v)| v))
        } else {
            None
        };
        self.map.insert(key, (self.tick, value));
        evicted
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.get(&"a"), Some(&1)); // refresh a
        lru.insert("c", 3); // evicts b
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.get(&"c"), Some(&3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut lru = Lru::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.insert("a", 10), Some(1));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&"a"), Some(&10));
        assert_eq!(lru.get(&"b"), Some(&2));
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut lru = Lru::new(0);
        assert_eq!(lru.insert("a", 1), None);
        assert!(lru.is_empty());
        assert_eq!(lru.get(&"a"), None);
    }

    #[test]
    fn clear_empties() {
        let mut lru = Lru::new(4);
        lru.insert(1, "x");
        lru.insert(2, "y");
        lru.clear();
        assert!(lru.is_empty());
    }
}
