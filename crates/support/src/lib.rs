//! Vendored, dependency-free support layer for the ChatGraph workspace.
//!
//! The build environment has no crates.io access, so everything the
//! reproduction needs beyond `std` lives here, in-tree:
//!
//! * [`rng`] — a deterministic ChaCha12 stream-cipher RNG with the exact
//!   trait surface the workspace used from `rand`/`rand_chacha`
//!   ([`rng::SeedableRng`], [`rng::RngExt`], [`rng::SliceRandom`]).
//! * [`json`] — a JSON value type, recursive-descent parser and writer, plus
//!   the [`json::ToJson`]/[`json::FromJson`] traits (and impl macros) that
//!   replace serde's `Serialize`/`Deserialize` derives.
//! * [`prop`] — a seeded property-test harness (case-generation loop,
//!   failing-seed reporting, bounded shrinking) replacing `proptest`.
//! * [`bench`] — a minimal timing harness (warmup + N iterations,
//!   median/p95 report) replacing `criterion`.
//! * [`hash`] — FNV-1a 64 fingerprints (one-shot and streaming) for stable
//!   cache keys.
//! * [`lru`] — a bounded least-recently-used map replacing the `lru` crate,
//!   backing the plan scheduler's step-memo cache.
//! * [`cancel`] — a cooperative cancellation token (shared flag + optional
//!   deadline) the chain supervisor threads through workers and kernels.
//!
//! Design rule: **no external crates, ever** — `tests/hermetic.rs` at the
//! workspace root fails the build if any manifest regresses to a registry
//! dependency.

pub mod bench;
pub mod cancel;
pub mod hash;
pub mod json;
pub mod lru;
pub mod prop;
pub mod rng;
