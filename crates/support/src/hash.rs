//! FNV-1a 64-bit hashing — the workspace's stable fingerprint function.
//!
//! Used by the plan scheduler to key its memo cache on
//! `(api, params, graph-fingerprint)`. FNV-1a is tiny, allocation-free and
//! deterministic across runs and platforms, which is exactly what a cache
//! key (and a golden test over one) needs; it is *not* a cryptographic
//! hash and must never be used for anything adversarial.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with FNV-1a 64.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Streaming FNV-1a 64 state, for fingerprints built from several parts.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// Fresh state (the FNV offset basis).
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` (little-endian), e.g. a nested fingerprint.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn length_prefix_separates_strings() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
