//! FNV-1a 64-bit hashing — the workspace's stable fingerprint function —
//! plus CRC-32 (IEEE) for on-disk corruption detection.
//!
//! FNV-1a is used by the plan scheduler to key its memo cache on
//! `(api, params, graph-fingerprint)`. It is tiny, allocation-free and
//! deterministic across runs and platforms, which is exactly what a cache
//! key (and a golden test over one) needs; it is *not* a cryptographic
//! hash and must never be used for anything adversarial. CRC-32 is used by
//! the durable store's WAL records and the binary graph format, where
//! guaranteed detection of small bit-flips (any single-bit error, any
//! burst up to 32 bits) matters more than distribution quality.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with FNV-1a 64.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Streaming FNV-1a 64 state, for fingerprints built from several parts.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// Fresh state (the FNV offset basis).
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` (little-endian), e.g. a nested fingerprint.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes` —
/// the checksum every store WAL record and binary graph payload carries.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// The byte-at-a-time CRC-32 lookup table, built once per process.
fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *slot = crc;
        }
        table
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn crc32_known_vectors() {
        // Published CRC-32 (IEEE) test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"chatgraph wal record payload".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn length_prefix_separates_strings() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
