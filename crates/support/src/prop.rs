//! Seeded property-test harness, vendored in place of `proptest`.
//!
//! A property is a pair of closures: a **generator** `(rng, size) -> T`
//! that builds a random case whose complexity scales with `size`, and a
//! **check** `&T -> Result<(), String>` that returns `Err` with a message
//! when the property is violated (use [`prop_assert!`](crate::prop_assert)
//! and [`prop_assert_eq!`](crate::prop_assert_eq) inside the check).
//!
//! [`check`] runs the configured number of cases with a deterministic
//! per-case seed, ramping `size` from small to large. On failure it
//! **shrinks** by re-generating with the same per-case seed at smaller
//! sizes (bounded attempts, smallest failing size reported), then panics
//! with the seed, case index, size and failure message, plus the exact
//! `CHATGRAPH_PROP_SEED=…` incantation that reproduces the run.
//!
//! Environment overrides:
//! * `CHATGRAPH_PROP_SEED` — replay a failing run's seed.
//! * `CHATGRAPH_PROP_CASES` — raise or lower the case count.

use crate::rng::{SeedableRng, StdRng};

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 96;

/// Default base seed (stable across runs so CI failures reproduce locally).
pub const DEFAULT_SEED: u64 = 0xC4A7_9_A11_D5EED;

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Base seed; each case derives its own seed from this.
    pub seed: u64,
    /// Largest `size` passed to the generator (ramped up linearly).
    pub max_size: usize,
    /// Maximum shrink attempts after a failure.
    pub max_shrink: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: env_u64("CHATGRAPH_PROP_CASES")
                .map(|v| v as u32)
                .unwrap_or(DEFAULT_CASES),
            seed: env_u64("CHATGRAPH_PROP_SEED").unwrap_or(DEFAULT_SEED),
            max_size: 24,
            max_shrink: 64,
        }
    }
}

impl Config {
    /// Overrides the case count.
    pub fn with_cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Overrides the base seed (ignoring the environment).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the maximum generator size.
    pub fn with_max_size(mut self, max_size: usize) -> Self {
        self.max_size = max_size;
        self
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

/// SplitMix64-style mix so per-case seeds are decorrelated.
fn case_seed(base: u64, case: u32) -> u64 {
    let mut z = base ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `check_fn` against `config.cases` generated cases; panics with a
/// reproducible report on the first failure (after shrinking).
pub fn check<T, G, F>(name: &str, config: Config, mut generate: G, mut check_fn: F)
where
    T: std::fmt::Debug,
    G: FnMut(&mut StdRng, usize) -> T,
    F: FnMut(&T) -> Result<(), String>,
{
    let cases = config.cases.max(1);
    for case in 0..cases {
        // Ramp size: early cases are small, later cases hit max_size.
        let size = 1 + (config.max_size.saturating_sub(1)) * case as usize
            / cases.max(2) as usize;
        let seed = case_seed(config.seed, case);
        let input = generate(&mut StdRng::seed_from_u64(seed), size);
        if let Err(message) = check_fn(&input) {
            let shrunk = shrink(&config, seed, size, &mut generate, &mut check_fn);
            let (min_size, min_message, min_input) = match shrunk {
                Some((s, m, d)) => (s, m, d),
                None => (size, message, format!("{input:#?}")),
            };
            panic!(
                "property `{name}` failed\n\
                 \x20 case #{case} (base seed {base:#x}, case seed {seed:#x}, size {size})\n\
                 \x20 minimal failing size after shrinking: {min_size}\n\
                 \x20 error: {min_message}\n\
                 \x20 input: {min_input}\n\
                 \x20 reproduce with: CHATGRAPH_PROP_SEED={base} cargo test {name}",
                base = config.seed,
            );
        }
    }
}

/// Re-generates with the failing case's seed at ascending sizes, returning
/// the smallest size that still fails (with its message and debug dump).
fn shrink<T, G, F>(
    config: &Config,
    seed: u64,
    failing_size: usize,
    generate: &mut G,
    check_fn: &mut F,
) -> Option<(usize, String, String)>
where
    T: std::fmt::Debug,
    G: FnMut(&mut StdRng, usize) -> T,
    F: FnMut(&T) -> Result<(), String>,
{
    let mut attempts = 0;
    for size in 1..failing_size {
        if attempts >= config.max_shrink {
            break;
        }
        attempts += 1;
        let input = generate(&mut StdRng::seed_from_u64(seed), size);
        if let Err(message) = check_fn(&input) {
            return Some((size, message, format!("{input:#?}")));
        }
    }
    None
}

/// `assert!` for property checks: returns `Err(String)` instead of
/// panicking, so the harness can shrink and report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` for property checks: returns `Err(String)` on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}\n    left: {:?}\n   right: {:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngExt;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u32;
        check(
            "vec_len_matches_size",
            Config::default().with_seed(7).with_cases(40),
            |rng, size| (0..size).map(|_| rng.random::<u8>()).collect::<Vec<_>>(),
            |v| {
                seen += 1;
                prop_assert!(v.len() <= 64);
                Ok(())
            },
        );
        assert_eq!(seen, 40);
    }

    #[test]
    fn cases_are_deterministic_for_a_seed() {
        let collect = |seed: u64| {
            let mut inputs = Vec::new();
            check(
                "collect",
                Config::default().with_seed(seed).with_cases(10),
                |rng, size| (0..size).map(|_| rng.random::<u32>()).collect::<Vec<_>>(),
                |v| {
                    inputs.push(v.clone());
                    Ok(())
                },
            );
            inputs
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43));
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let result = std::panic::catch_unwind(|| {
            check(
                "always_fails_when_long",
                Config::default().with_seed(5).with_cases(50).with_max_size(20),
                |rng, size| (0..size).map(|_| rng.random::<u8>()).collect::<Vec<_>>(),
                |v| {
                    prop_assert!(v.len() < 3, "vector of length {} too long", v.len());
                    Ok(())
                },
            );
        });
        let panic_message = match result {
            Ok(()) => panic!("property should have failed"),
            Err(payload) => *payload.downcast::<String>().expect("string panic"),
        };
        assert!(panic_message.contains("always_fails_when_long"));
        assert!(panic_message.contains("CHATGRAPH_PROP_SEED=5"));
        // Shrinking must land on the minimal failing size (length 3).
        assert!(
            panic_message.contains("minimal failing size after shrinking: 3"),
            "unexpected report: {panic_message}"
        );
    }

    #[test]
    fn prop_assert_eq_formats_both_sides() {
        fn violated() -> Result<(), String> {
            prop_assert_eq!(1 + 1, 3);
            Ok(())
        }
        let message = violated().unwrap_err();
        assert!(message.contains("left: 2"));
        assert!(message.contains("right: 3"));
    }
}
