//! JSON serialisation, vendored in place of `serde` + `serde_json`.
//!
//! Three layers:
//!
//! * [`Json`] — a dynamically typed JSON value with a recursive-descent
//!   [`Json::parse`] and a compact writer ([`Json::render`]).
//! * [`ToJson`] / [`FromJson`] — the trait pair that replaces serde's
//!   `Serialize`/`Deserialize` derives, with impls for the std types the
//!   workspace serialises (primitives, strings, options, vectors, tuples,
//!   string-keyed maps).
//! * [`impl_json_struct!`](crate::impl_json_struct),
//!   [`impl_json_newtype!`](crate::impl_json_newtype) and
//!   [`impl_json_enum_unit!`](crate::impl_json_enum_unit) — macros that
//!   generate both impls for the common shapes. Enums with payloads write
//!   the externally tagged form (`{"Variant": …}`) by hand.
//!
//! The wire format matches what serde_json produced before the migration:
//! compact separators, struct fields in declaration order, unit enum
//! variants as bare strings, newtype structs as their inner value, tuples
//! as arrays, non-finite floats as `null`, and unknown object fields
//! ignored on decode — so graphs serialised by older builds still load.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A dynamically typed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer (anything that fits `i64`).
    Int(i64),
    /// An unsigned integer above `i64::MAX`.
    UInt(u64),
    /// A float (or any number with a fraction/exponent).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved (struct declaration order).
    Object(Vec<(String, Json)>),
}

/// A parse or decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    /// Byte offset of a parse error; 0 for decode (shape) errors.
    offset: usize,
}

impl JsonError {
    /// A decode error with a free-form message.
    pub fn msg(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: 0,
        }
    }

    /// A type-mismatch decode error.
    pub fn expected(what: &str, got: &Json) -> Self {
        JsonError::msg(format!("expected {what}, got {}", got.type_name()))
    }

    /// A missing-field decode error.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        JsonError::msg(format!("missing field `{field}` while decoding {ty}"))
    }

    fn at(message: impl Into<String>, offset: usize) -> Self {
        JsonError {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset > 0 {
            write!(f, "{} at byte {}", self.message, self.offset)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Name of the contained type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::UInt(_) => "integer",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Signed integer payload, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Unsigned integer payload, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => u64::try_from(*v).ok(),
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The object payload, if any.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up a field of an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Parses a JSON document (one value plus optional whitespace).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at("trailing characters", p.pos));
        }
        Ok(value)
    }

    /// Renders the value compactly (serde_json-compatible separators).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // `{:?}` keeps float-ness ("1.0", not "1") and prints the
                    // shortest representation that round-trips.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(JsonError::at(format!("expected `{lit}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(JsonError::at("nesting too deep", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError::at(
                format!("unexpected character '{}'", other as char),
                self.pos,
            )),
            None => Err(JsonError::at("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(JsonError::at("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(JsonError::at("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect_byte(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(JsonError::at(
                                            "invalid low surrogate",
                                            self.pos,
                                        ));
                                    }
                                    let code =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code).ok_or_else(|| {
                                        JsonError::at("invalid surrogate pair", self.pos)
                                    })?
                                } else {
                                    return Err(JsonError::at("lone surrogate", self.pos));
                                }
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| JsonError::at("invalid codepoint", self.pos))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(JsonError::at("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::at("control character in string", self.pos));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::at("invalid utf-8", self.pos))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| JsonError::at("unexpected end of input", self.pos))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::at("truncated \\u escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::at("invalid \\u escape", self.pos))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| JsonError::at("invalid \\u escape", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at("invalid number", start))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError::at(format!("invalid number `{text}`"), start))
    }
}

/// Serialisation into a [`Json`] value (the `Serialize` replacement).
pub trait ToJson {
    /// Converts to a JSON value.
    fn to_json(&self) -> Json;
}

/// Deserialisation from a [`Json`] value (the `Deserialize` replacement).
pub trait FromJson: Sized {
    /// Decodes from a JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serialises any [`ToJson`] value to a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render()
}

/// Parses and decodes any [`FromJson`] value from a JSON string.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::expected("bool", v))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::expected("string", v))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

macro_rules! impl_json_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let raw = v.as_i64().ok_or_else(|| JsonError::expected("integer", v))?;
                <$t>::try_from(raw)
                    .map_err(|_| JsonError::msg(format!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_json_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_json_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(v) => Json::Int(v),
                    Err(_) => Json::UInt(wide),
                }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let raw = v.as_u64().ok_or_else(|| JsonError::expected("integer", v))?;
                <$t>::try_from(raw)
                    .map_err(|_| JsonError::msg(format!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_json_unsigned!(u8, u16, u32, u64, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::expected("number", v))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| JsonError::expected("number", v))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: FromJson> FromJson for Box<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        T::from_json(v).map(Box::new)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::expected("array", v))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::expected("2-element array", v)),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?)),
            _ => Err(JsonError::expected("3-element array", v)),
        }
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_object()
            .ok_or_else(|| JsonError::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
            .collect()
    }
}

impl<V: ToJson> ToJson for HashMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for HashMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_object()
            .ok_or_else(|| JsonError::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
            .collect()
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a struct with named fields,
/// serialising every listed field in declaration order (the serde-derive
/// format). Unknown fields are ignored on decode; missing fields error.
///
/// ```
/// # use chatgraph_support::impl_json_struct;
/// struct P { x: i64, y: i64 }
/// impl_json_struct!(P { x, y });
/// assert_eq!(chatgraph_support::json::to_string(&P { x: 1, y: 2 }), r#"{"x":1,"y":2}"#);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Object(vec![
                    $( (stringify!($field).to_owned(),
                        $crate::json::ToJson::to_json(&self.$field)), )+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                if v.as_object().is_none() {
                    return Err($crate::json::JsonError::expected("object", v));
                }
                $( let $field = $crate::json::FromJson::from_json(
                    v.get(stringify!($field)).ok_or_else(|| {
                        $crate::json::JsonError::missing_field(
                            stringify!($ty),
                            stringify!($field),
                        )
                    })?,
                )?; )+
                Ok($ty { $($field),+ })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a single-field tuple struct,
/// serialising it transparently as the inner value (the serde newtype
/// format: `NodeId(3)` is just `3` on the wire).
#[macro_export]
macro_rules! impl_json_newtype {
    ($ty:ident) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::ToJson::to_json(&self.0)
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok($ty($crate::json::FromJson::from_json(v)?))
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for an enum of unit variants,
/// serialising each variant as its bare name string (the serde externally
/// tagged format for unit variants).
#[macro_export]
macro_rules! impl_json_enum_unit {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $( $ty::$variant =>
                        $crate::json::Json::Str(stringify!($variant).to_owned()), )+
                }
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                let name = v
                    .as_str()
                    .ok_or_else(|| $crate::json::JsonError::expected("variant string", v))?;
                $( if name == stringify!($variant) {
                    return Ok($ty::$variant);
                } )+
                Err($crate::json::JsonError::msg(format!(
                    "unknown {} variant `{name}`",
                    stringify!($ty),
                )))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "tru", "\"unterminated", "{\"a\"}", "[1 2]", "01x", "{}{}",
            "\"\\q\"", "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_prevents_stack_overflow() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote\" slash\\ newline\n tab\t bell\u{8} feed\u{c} unicode é 日本 \u{1}";
        let rendered = Json::Str(original.into()).render();
        assert_eq!(Json::parse(&rendered).unwrap(), Json::Str(original.into()));
        // Escapes follow serde_json's choices.
        assert!(rendered.contains("\\\""));
        assert!(rendered.contains("\\n"));
        assert!(rendered.contains("\\u0001"));
        assert!(rendered.contains('é'));
    }

    #[test]
    fn unicode_escape_sequences_decode() {
        assert_eq!(
            Json::parse(r#""\u00e9\ud83d\ude00""#).unwrap(),
            Json::Str("é😀".into())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone surrogate");
    }

    #[test]
    fn render_matches_serde_json_format() {
        let v = Json::Object(vec![
            ("int".into(), Json::Int(3)),
            ("float".into(), Json::Float(1.0)),
            ("neg".into(), Json::Float(-0.25)),
            ("s".into(), Json::Str("x".into())),
            ("list".into(), Json::Array(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"int":3,"float":1.0,"neg":-0.25,"s":"x","list":[true,null]}"#
        );
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn value_roundtrip_through_text() {
        let v = Json::Object(vec![
            ("a".into(), Json::Array(vec![Json::Int(-1), Json::Float(0.5)])),
            ("b".into(), Json::Str("héllo\n".into())),
            ("c".into(), Json::Object(vec![("d".into(), Json::Bool(false))])),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn primitive_codecs_roundtrip() {
        assert_eq!(from_str::<u32>(&to_string(&7u32)).unwrap(), 7);
        assert_eq!(from_str::<i64>(&to_string(&-9i64)).unwrap(), -9);
        assert_eq!(from_str::<f64>(&to_string(&2.5f64)).unwrap(), 2.5);
        assert_eq!(from_str::<bool>(&to_string(&true)).unwrap(), true);
        assert_eq!(from_str::<String>(&to_string("hi")).unwrap(), "hi");
        assert_eq!(
            from_str::<Option<u8>>(&to_string(&None::<u8>)).unwrap(),
            None
        );
        assert_eq!(
            from_str::<Vec<(u32, String)>>(&to_string(&vec![(1u32, "a".to_owned())])).unwrap(),
            vec![(1, "a".to_owned())]
        );
        let mut m = BTreeMap::new();
        m.insert("k".to_owned(), (1usize, 2usize));
        assert_eq!(
            from_str::<BTreeMap<String, (usize, usize)>>(&to_string(&m)).unwrap(),
            m
        );
    }

    #[test]
    fn integers_widen_to_float_on_decode() {
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<f32>("-2").unwrap(), -2.0);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u32>("-1").is_err());
        assert!(from_str::<i8>("200").is_err());
    }

    #[derive(Debug)]
    struct Demo {
        name: String,
        count: usize,
        ratio: f64,
    }
    impl_json_struct!(Demo { name, count, ratio });

    #[test]
    fn struct_macro_matches_serde_derive_format() {
        let d = Demo {
            name: "x".into(),
            count: 2,
            ratio: 0.5,
        };
        let s = to_string(&d);
        assert_eq!(s, r#"{"name":"x","count":2,"ratio":0.5}"#);
        let back: Demo = from_str(&s).unwrap();
        assert_eq!(back.name, "x");
        assert_eq!(back.count, 2);
        assert_eq!(back.ratio, 0.5);
    }

    #[test]
    fn struct_macro_ignores_unknown_and_rejects_missing() {
        let with_extra = r#"{"name":"x","count":2,"ratio":0.5,"extra":[1,2]}"#;
        assert!(from_str::<Demo>(with_extra).is_ok());
        let missing = r#"{"name":"x","count":2}"#;
        let err = from_str::<Demo>(missing).unwrap_err();
        assert!(err.to_string().contains("ratio"));
    }

    #[derive(Debug, PartialEq)]
    struct Wrapper(u32);
    impl_json_newtype!(Wrapper);

    #[test]
    fn newtype_macro_is_transparent() {
        assert_eq!(to_string(&Wrapper(5)), "5");
        assert_eq!(from_str::<Wrapper>("5").unwrap(), Wrapper(5));
    }

    #[derive(Debug, PartialEq)]
    enum Mode {
        Fast,
        Slow,
    }
    impl_json_enum_unit!(Mode { Fast, Slow });

    #[test]
    fn unit_enum_macro_uses_variant_strings() {
        assert_eq!(to_string(&Mode::Fast), r#""Fast""#);
        assert_eq!(from_str::<Mode>(r#""Slow""#).unwrap(), Mode::Slow);
        assert!(from_str::<Mode>(r#""Medium""#).is_err());
    }
}
