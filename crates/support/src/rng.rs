//! Deterministic random numbers, vendored in place of `rand` + `rand_chacha`.
//!
//! The generator is a ChaCha stream cipher with 12 rounds ([`ChaCha12Rng`]),
//! matching the cipher the workspace previously pinned: portable across
//! platforms, cheap to seed, and with a keystream that never changes between
//! builds — seeds recorded in EXPERIMENTS.md keep meaning the same graphs.
//!
//! The trait surface is the exact subset the workspace uses:
//!
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64`
//! * [`Rng`] — the raw `next_u32` / `next_u64` source
//! * [`RngExt`] — `random`, `random_range`, `random_bool`
//! * [`SliceRandom`] — `shuffle`, `choose`
//!
//! `seed_from_u64` expands the 64-bit seed into key material with SplitMix64,
//! so nearby seeds produce unrelated streams. A golden vector in the tests
//! pins the exact keystream.

use std::ops::{Range, RangeInclusive};

/// A source of raw random words.
pub trait Rng {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type (32 bytes for ChaCha).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a generator's raw output.
pub trait Random {
    /// Draws one value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_u32 {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
macro_rules! impl_random_u64 {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_u32!(u8, u16, u32, i8, i16, i32);
impl_random_u64!(u64, i64, usize, isize);

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: Sized {
    /// Draws from `[low, high)`, or `[low, high]` when `inclusive`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let (lo, hi) = (low as i128, high as i128);
                let span = (hi - lo + inclusive as i128) as u128;
                assert!(span > 0, "cannot sample from empty range {low}..{high}");
                if span > u64::MAX as u128 {
                    // Only reachable for the full 64-bit inclusive range.
                    return rng.next_u64() as $t;
                }
                let span = span as u64;
                if span == 1 {
                    return low;
                }
                // Rejection sampling: accept draws in [threshold, 2^64), a
                // region whose length is an exact multiple of `span`.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let v = rng.next_u64();
                    if v >= threshold {
                        return (lo + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, _inclusive: bool) -> Self {
        assert!(low < high, "cannot sample from empty range {low}..{high}");
        let unit: f32 = Random::random(rng);
        (low + (high - low) * unit).min(high)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, _inclusive: bool) -> Self {
        assert!(low < high, "cannot sample from empty range {low}..{high}");
        let unit: f64 = Random::random(rng);
        (low + (high - low) * unit).min(high)
    }
}

/// Range forms accepted by [`RngExt::random_range`].
pub trait IntoUniformRange<T> {
    /// Decomposes into `(low, high, inclusive)`.
    fn bounds(self) -> (T, T, bool);
}

impl<T> IntoUniformRange<T> for Range<T> {
    fn bounds(self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T> IntoUniformRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (T, T, bool) {
        let (s, e) = self.into_inner();
        (s, e, true)
    }
}

/// High-level draws, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value of type `T` (integers: full range; floats: `[0, 1)`).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws uniformly from a half-open or inclusive range.
    fn random_range<T: SampleUniform, B: IntoUniformRange<T>>(&mut self, range: B) -> T {
        let (low, high, inclusive) = range.bounds();
        T::sample_range(self, low, high, inclusive)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.random();
        unit < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Random slice operations.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Picks one element uniformly, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

/// The ChaCha quarter round.
#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` must be even (12 for ChaCha12).
fn chacha_block(input: &[u32; 16], rounds: usize) -> [u32; 16] {
    let mut x = *input;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (word, init) in x.iter_mut().zip(input.iter()) {
        *word = word.wrapping_add(*init);
    }
    x
}

/// ChaCha constants: "expand 32-byte k".
const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A deterministic ChaCha12 stream-cipher RNG (djb variant: 256-bit key,
/// 64-bit block counter, 64-bit stream id fixed at 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha12Rng {
    /// Cipher state: constants | key | counter | stream.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer` (16 = exhausted).
    index: usize,
}

impl ChaCha12Rng {
    const ROUNDS: usize = 12;

    fn refill(&mut self) {
        self.buffer = chacha_block(&self.state, Self::ROUNDS);
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            // chunks_exact(4) yields exactly 4 bytes; index, don't convert.
            state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha12Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl Rng for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

/// The workspace's default generator.
pub type StdRng = ChaCha12Rng;

#[cfg(test)]
mod tests {
    use super::*;

    /// The ChaCha permutation core is validated against the original djb
    /// ChaCha20 test vector (all-zero key and nonce, counter 0); ChaCha12
    /// shares the block function and differs only in the round count.
    #[test]
    fn chacha20_core_matches_reference_vector() {
        let state = {
            let mut s = [0u32; 16];
            s[..4].copy_from_slice(&CHACHA_CONSTANTS);
            s
        };
        let block = chacha_block(&state, 20);
        let mut keystream = Vec::new();
        for w in block {
            keystream.extend_from_slice(&w.to_le_bytes());
        }
        let expected: [u8; 32] = [
            0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
            0xbd, 0x28, 0xbd, 0xd2, 0x19, 0xb8, 0xa0, 0x8d, 0xed, 0x1a, 0xa8, 0x36, 0xef, 0xcc,
            0x8b, 0x77, 0x0d, 0xc7,
        ];
        assert_eq!(&keystream[..32], &expected);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn from_seed_matches_explicit_expansion() {
        // seed_from_u64 must equal from_seed on the SplitMix64 expansion.
        let by_u64 = ChaCha12Rng::seed_from_u64(7);
        let mut state = 7u64;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        let by_seed = ChaCha12Rng::from_seed(seed);
        assert_eq!(by_u64, by_seed);
    }

    /// Golden vector: the first four `next_u64` draws for seed 42 and the
    /// first two for seed 0, frozen so any change to the seed expansion or
    /// stream order is caught (other crates persist artifacts derived from
    /// these streams).
    #[test]
    fn seed_from_u64_golden_vector() {
        let mut r = ChaCha12Rng::seed_from_u64(42);
        let v: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            v,
            [
                0x280b_7b79_f392_fa12,
                0x4dad_ef83_bc93_1d07,
                0xc195_c99b_a537_5e5f,
                0x7e65_7f1b_6bdc_3bfd,
            ]
        );
        let mut r0 = ChaCha12Rng::seed_from_u64(0);
        assert_eq!(r0.next_u64(), 0xd18c_9d7b_82b6_7bca);
        assert_eq!(r0.next_u64(), 0x73f1_688a_dd8c_2eb1);
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        for _ in 0..2000 {
            let a: usize = rng.random_range(0..7);
            assert!(a < 7);
            let b: usize = rng.random_range(2..=5);
            assert!((2..=5).contains(&b));
            let c: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&c));
            let d: u32 = rng.random_range(0..100u32);
            assert!(d < 100);
            let e: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&e));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        for _ in 0..2000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
        // p = 0.5 should produce both outcomes over a reasonable sample.
        let draws: Vec<bool> = (0..100).map(|_| rng.random_bool(0.5)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }

    #[test]
    fn shuffle_is_a_permutation_and_seeded() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        a.shuffle(&mut ChaCha12Rng::seed_from_u64(9));
        b.shuffle(&mut ChaCha12Rng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let mut c: Vec<usize> = (0..50).collect();
        c.shuffle(&mut ChaCha12Rng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let xs = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*xs.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
