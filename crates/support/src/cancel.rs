//! Cooperative cancellation for long-running work.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between a
//! supervisor and the work it supervises. The supervisor arms it with a
//! deadline (or trips it explicitly); the work polls [`CancelToken::is_cancelled`]
//! at natural yield points — chunk boundaries, loop iterations — and bails
//! out early when it fires. Cancellation is **latching**: once observed,
//! every later poll also reports cancelled, even if the clock were to drift.
//!
//! The token never interrupts anything by force. Code that ignores it runs
//! to completion; the supervisor's job is to discard the late result.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    /// Set by [`CancelToken::cancel`] or latched by a deadline poll.
    cancelled: AtomicBool,
    /// Wall-clock instant after which polls latch the token, if armed.
    deadline: Option<Instant>,
    /// Number of `is_cancelled` polls, for tests that assert the work
    /// actually cooperates (e.g. kernels polling at chunk boundaries).
    polls: AtomicU64,
}

/// Shared cancellation flag with an optional deadline. Clones observe the
/// same state; cloning is an `Arc` bump.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that never fires on its own (no deadline); it can still be
    /// tripped explicitly with [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken::build(None)
    }

    /// A token that latches once `timeout` has elapsed from now. A zero
    /// timeout is treated as "no deadline" so configs can use `0 = off`.
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        if timeout.is_zero() {
            CancelToken::new()
        } else {
            CancelToken::build(Instant::now().checked_add(timeout))
        }
    }

    fn build(deadline: Option<Instant>) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline,
                polls: AtomicU64::new(0),
            }),
        }
    }

    /// Trip the token explicitly. All clones observe it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Poll the token: `true` once cancelled or past the deadline.
    /// Latching — a `true` result never reverts to `false`.
    pub fn is_cancelled(&self) -> bool {
        self.inner.polls.fetch_add(1, Ordering::Relaxed);
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.inner.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// Whether a deadline is armed (regardless of whether it has fired).
    pub fn has_deadline(&self) -> bool {
        self.inner.deadline.is_some()
    }

    /// How many times `is_cancelled` has been polled across all clones.
    pub fn polls(&self) -> u64 {
        self.inner.polls.load(Ordering::Relaxed)
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.has_deadline());
    }

    #[test]
    fn cancel_is_visible_to_clones_and_latches() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert!(t.is_cancelled(), "cancellation latches");
    }

    #[test]
    fn zero_deadline_means_no_deadline() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(!t.has_deadline());
        assert!(!t.is_cancelled());
    }

    #[test]
    fn elapsed_deadline_latches() {
        let t = CancelToken::with_deadline(Duration::from_nanos(1));
        std::thread::sleep(Duration::from_millis(2));
        assert!(t.is_cancelled());
        assert!(t.is_cancelled(), "deadline expiry latches");
    }

    #[test]
    fn polls_are_counted_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        let before = t.polls();
        let _ = t.is_cancelled();
        let _ = c.is_cancelled();
        assert_eq!(t.polls(), before + 2);
    }
}
