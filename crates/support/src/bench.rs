//! Minimal timing harness, vendored in place of `criterion`.
//!
//! Each bench binary (`harness = false`) builds a [`Bench`] in `main`,
//! opens named groups, and times closures:
//!
//! ```no_run
//! use chatgraph_support::bench::Bench;
//! let mut bench = Bench::new("graph_algos");
//! let mut group = bench.group("bfs");
//! group.bench("n=1000", || { /* work */ });
//! ```
//!
//! Every measurement runs `warmup` untimed iterations, then `iters` timed
//! iterations, and reports the **median** and **p95** per-iteration wall
//! time. No statistics beyond order statistics — the point is a stable,
//! comparable number that runs offline, not criterion's full analysis.
//!
//! Environment overrides: `CHATGRAPH_BENCH_ITERS`, `CHATGRAPH_BENCH_WARMUP`.

use std::time::{Duration, Instant};

/// Per-measurement order statistics.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Median per-iteration wall time.
    pub median: Duration,
    /// 95th-percentile per-iteration wall time.
    pub p95: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Number of timed iterations.
    pub iters: u32,
}

/// Top-level harness for one bench binary.
pub struct Bench {
    name: String,
    warmup: u32,
    iters: u32,
}

impl Bench {
    /// Creates a harness with defaults (3 warmup, 30 timed iterations),
    /// overridable via `CHATGRAPH_BENCH_WARMUP`/`CHATGRAPH_BENCH_ITERS`.
    pub fn new(name: impl Into<String>) -> Self {
        Bench {
            name: name.into(),
            warmup: env_u32("CHATGRAPH_BENCH_WARMUP").unwrap_or(3),
            iters: env_u32("CHATGRAPH_BENCH_ITERS").unwrap_or(30).max(1),
        }
    }

    /// Overrides the timed iteration count (for cheap vs. expensive benches).
    pub fn with_iters(mut self, iters: u32) -> Self {
        self.iters = iters.max(1);
        self
    }

    /// Opens a named measurement group (mirrors criterion's
    /// `benchmark_group`).
    pub fn group(&mut self, group: impl Into<String>) -> Group<'_> {
        let group = group.into();
        println!("\n## {}/{}", self.name, group);
        Group { bench: self, group }
    }
}

/// A named group of measurements.
pub struct Group<'a> {
    bench: &'a mut Bench,
    group: String,
}

impl Group<'_> {
    /// Times `f` (warmup + timed iterations), prints one report line, and
    /// returns the statistics.
    pub fn bench<F: FnMut()>(&mut self, label: &str, mut f: F) -> Stats {
        for _ in 0..self.bench.warmup {
            f();
        }
        let mut samples: Vec<Duration> = (0..self.bench.iters)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed()
            })
            .collect();
        samples.sort_unstable();
        let stats = Stats {
            median: samples[samples.len() / 2],
            p95: samples[(samples.len() * 95 / 100).min(samples.len() - 1)],
            min: samples[0],
            iters: self.bench.iters,
        };
        println!(
            "{:<40} median {:>10}   p95 {:>10}   ({} iters)",
            format!("{}/{label}", self.group),
            format_duration(stats.median),
            format_duration(stats.p95),
            stats.iters
        );
        stats
    }
}

fn env_u32(name: &str) -> Option<u32> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

/// Renders a duration with an adaptive unit (ns / µs / ms / s).
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_warmup_plus_iters() {
        let mut calls = 0u32;
        let mut bench = Bench::new("test");
        bench.warmup = 2;
        bench.iters = 5;
        let stats = bench.group("g").bench("count", || calls += 1);
        assert_eq!(calls, 7);
        assert_eq!(stats.iters, 5);
        assert!(stats.min <= stats.median && stats.median <= stats.p95);
    }

    #[test]
    fn durations_format_with_adaptive_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(format_duration(Duration::from_millis(250)), "250.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
