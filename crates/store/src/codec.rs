//! Byte-level (de)serialisation for WAL record bodies.
//!
//! Everything on disk is little-endian and length-prefixed; strings are
//! UTF-8 with a `u32` byte length. The reader is bounds-checked end to end:
//! corrupt input yields [`CodecError`], never a panic or an over-allocation
//! (counts are validated against the bytes actually remaining before any
//! `Vec` is sized).

use chatgraph_graph::stats::StatsCatalog;

/// Why a record body failed to decode. The recovery scanner treats any
/// decode failure as the start of the torn/corrupt tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The body ended before a declared field.
    Truncated,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A count field exceeds what the remaining bytes could possibly hold.
    BadCount,
    /// An unknown enum tag.
    BadTag(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "record body is truncated"),
            CodecError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            CodecError::BadCount => write!(f, "count field exceeds remaining bytes"),
            CodecError::BadTag(t) => write!(f, "unknown tag {t}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Bounds-checked cursor over a record body.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `data`, positioned at the start.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether every byte was consumed (trailing garbage is corruption).
    pub fn done(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// A little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// A little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// A length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(CodecError::BadCount);
        }
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// Validates a declared element count against the remaining bytes:
    /// `count` elements of at least `min_bytes` each must fit.
    pub fn check_count(&self, count: u32, min_bytes: usize) -> Result<usize, CodecError> {
        let count = count as usize;
        if count > self.remaining() / min_bytes.max(1) {
            return Err(CodecError::BadCount);
        }
        Ok(count)
    }
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Serialises a statistics catalog (the per-label histograms and degree
/// moments the planner's cost model reads on reopen).
pub fn put_stats(out: &mut Vec<u8>, s: &StatsCatalog) {
    put_u64(out, s.nodes as u64);
    put_u64(out, s.edges as u64);
    out.push(u8::from(s.directed));
    put_u32(out, s.node_labels.len() as u32);
    for (label, count) in &s.node_labels {
        put_string(out, label);
        put_u64(out, *count as u64);
    }
    put_u32(out, s.edge_labels.len() as u32);
    for (label, count) in &s.edge_labels {
        put_string(out, label);
        put_u64(out, *count as u64);
    }
    put_u64(out, s.degree_sum);
    put_u64(out, s.degree_sum_sq);
    put_u64(out, s.max_degree as u64);
}

// A labelled histogram entry is at least a 4-byte string prefix plus an
// 8-byte count.
const MIN_LABEL_ENTRY_BYTES: usize = 12;

/// Decodes a statistics catalog written by [`put_stats`].
pub fn get_stats(r: &mut Reader<'_>) -> Result<StatsCatalog, CodecError> {
    let nodes = r.u64()? as usize;
    let edges = r.u64()? as usize;
    let directed = r.u8()? != 0;
    let declared = r.u32()?;
    let n = r.check_count(declared, MIN_LABEL_ENTRY_BYTES)?;
    let mut node_labels = Vec::with_capacity(n);
    for _ in 0..n {
        let label = r.string()?;
        let count = r.u64()? as usize;
        node_labels.push((label, count));
    }
    let declared = r.u32()?;
    let n = r.check_count(declared, MIN_LABEL_ENTRY_BYTES)?;
    let mut edge_labels = Vec::with_capacity(n);
    for _ in 0..n {
        let label = r.string()?;
        let count = r.u64()? as usize;
        edge_labels.push((label, count));
    }
    Ok(StatsCatalog {
        nodes,
        edges,
        directed,
        node_labels,
        edge_labels,
        degree_sum: r.u64()?,
        degree_sum_sq: r.u64()?,
        max_degree: r.u64()? as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 7);
        put_string(&mut buf, "héllo");
        buf.push(42);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.string().unwrap(), "héllo");
        assert_eq!(r.u8().unwrap(), 42);
        assert!(r.done());
    }

    #[test]
    fn truncated_reads_error_cleanly() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        let mut r = Reader::new(&buf[..2]);
        assert_eq!(r.u32(), Err(CodecError::Truncated));
    }

    #[test]
    fn oversized_string_length_is_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        buf.extend_from_slice(b"hi");
        let mut r = Reader::new(&buf);
        assert_eq!(r.string(), Err(CodecError::BadCount));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.string(), Err(CodecError::BadUtf8));
    }

    #[test]
    fn stats_roundtrip() {
        let stats = StatsCatalog {
            nodes: 10,
            edges: 14,
            directed: true,
            node_labels: vec![("C".into(), 6), ("O".into(), 4)],
            edge_labels: vec![("bond".into(), 14)],
            degree_sum: 28,
            degree_sum_sq: 120,
            max_degree: 4,
        };
        let mut buf = Vec::new();
        put_stats(&mut buf, &stats);
        let mut r = Reader::new(&buf);
        assert_eq!(get_stats(&mut r).unwrap(), stats);
        assert!(r.done());
    }

    #[test]
    fn stats_oversized_count_cannot_over_allocate() {
        let stats = StatsCatalog {
            nodes: 1,
            edges: 0,
            directed: false,
            node_labels: vec![("x".into(), 1)],
            edge_labels: vec![],
            degree_sum: 0,
            degree_sum_sq: 0,
            max_degree: 0,
        };
        let mut buf = Vec::new();
        put_stats(&mut buf, &stats);
        // Stamp an absurd node-label count (offset 17: nodes u64 + edges
        // u64 + directed u8).
        buf[17..21].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = Reader::new(&buf);
        assert_eq!(get_stats(&mut r), Err(CodecError::BadCount));
    }
}
