//! WAL record framing and the record grammar.
//!
//! Every record on disk is `len: u32 | crc: u32 | payload`, where `len` is
//! the payload byte length and `crc` is CRC-32 (IEEE) over the payload.
//! The payload opens with a one-byte tag:
//!
//! | tag | record     | body                                        |
//! |-----|------------|---------------------------------------------|
//! | 1   | `Snapshot` | slot-exact graph image (`graph::delta`)     |
//! | 2   | `Delta`    | slot-level [`GraphDelta`] op list           |
//! | 3   | `Commit`   | `epoch: u64, graph_fp: u64`                 |
//! | 4   | `Catalog`  | newly interned strings ([`CatalogDelta`])   |
//! | 5   | `Stats`    | the epoch's [`StatsCatalog`]                |
//! | 6   | `Model`    | finetuned-model JSON (UTF-8)                |
//! | 7   | `Pad`      | zeros, aligning the append cursor to a page |
//!
//! `Snapshot`/`Delta`/`Catalog`/`Stats` records are *staged*: they take
//! effect only when sealed by the following `Commit`, whose `graph_fp` must
//! match the fingerprint of the staged graph. `Model` and `Pad` are
//! standalone-durable, and only legal at a group boundary — a scanner that
//! sees one while records are staged treats the file as corrupt from there.

use crate::catalog::CatalogDelta;
use crate::codec::{put_u64, CodecError, Reader};
use chatgraph_graph::stats::StatsCatalog;
use chatgraph_support::hash::crc32;

/// Framing overhead per record: the `len` and `crc` words.
pub const FRAME_BYTES: usize = 8;
/// Upper bound on a single payload; anything larger is treated as a corrupt
/// length word, not an allocation request.
pub const MAX_PAYLOAD: u32 = 1 << 30;

const TAG_SNAPSHOT: u8 = 1;
const TAG_DELTA: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_CATALOG: u8 = 4;
const TAG_STATS: u8 = 5;
const TAG_MODEL: u8 = 6;
const TAG_PAD: u8 = 7;

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A full slot-exact graph image (staged).
    Snapshot {
        /// `chatgraph_graph::delta::image_to_bytes` output.
        image: Vec<u8>,
    },
    /// A slot-level delta against the previous committed graph (staged).
    Delta {
        /// `GraphDelta::to_bytes` output.
        ops: Vec<u8>,
    },
    /// Seals the staged records into epoch `epoch`.
    Commit {
        /// The store epoch this commit produces.
        epoch: u64,
        /// FNV-1a 64 fingerprint of the committed graph's image bytes.
        graph_fp: u64,
    },
    /// Newly interned catalog strings (staged).
    Catalog {
        /// The appended entries.
        delta: CatalogDelta,
    },
    /// The committed epoch's statistics (staged).
    Stats {
        /// The statistics catalog.
        stats: StatsCatalog,
    },
    /// The finetuned model (standalone-durable).
    Model {
        /// Model JSON.
        json: String,
    },
    /// Page-alignment filler (standalone-durable, ignored on replay).
    Pad {
        /// Number of zero filler bytes after the tag.
        zeros: usize,
    },
}

impl WalRecord {
    /// Appends the framed record (`len | crc | payload`) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::new();
        match self {
            WalRecord::Snapshot { image } => {
                payload.push(TAG_SNAPSHOT);
                payload.extend_from_slice(image);
            }
            WalRecord::Delta { ops } => {
                payload.push(TAG_DELTA);
                payload.extend_from_slice(ops);
            }
            WalRecord::Commit { epoch, graph_fp } => {
                payload.push(TAG_COMMIT);
                put_u64(&mut payload, *epoch);
                put_u64(&mut payload, *graph_fp);
            }
            WalRecord::Catalog { delta } => {
                payload.push(TAG_CATALOG);
                payload.extend_from_slice(&delta.to_bytes());
            }
            WalRecord::Stats { stats } => {
                payload.push(TAG_STATS);
                crate::codec::put_stats(&mut payload, stats);
            }
            WalRecord::Model { json } => {
                payload.push(TAG_MODEL);
                payload.extend_from_slice(json.as_bytes());
            }
            WalRecord::Pad { zeros } => {
                payload.push(TAG_PAD);
                payload.resize(payload.len() + zeros, 0);
            }
        }
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }

    /// Decodes one payload (tag + body). The framing (`len`, `crc`) must
    /// already have been validated by the caller.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, CodecError> {
        let mut r = Reader::new(payload);
        let tag = r.u8()?;
        let record = match tag {
            TAG_SNAPSHOT => WalRecord::Snapshot { image: r.take(r.remaining())?.to_vec() },
            TAG_DELTA => WalRecord::Delta { ops: r.take(r.remaining())?.to_vec() },
            TAG_COMMIT => WalRecord::Commit { epoch: r.u64()?, graph_fp: r.u64()? },
            TAG_CATALOG => WalRecord::Catalog { delta: CatalogDelta::decode(&mut r)? },
            TAG_STATS => WalRecord::Stats { stats: crate::codec::get_stats(&mut r)? },
            TAG_MODEL => {
                let bytes = r.take(r.remaining())?;
                let json =
                    String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)?;
                WalRecord::Model { json }
            }
            TAG_PAD => {
                let zeros = r.take(r.remaining())?;
                if zeros.iter().any(|&b| b != 0) {
                    return Err(CodecError::BadTag(TAG_PAD));
                }
                WalRecord::Pad { zeros: zeros.len() }
            }
            other => return Err(CodecError::BadTag(other)),
        };
        if !r.done() {
            return Err(CodecError::Truncated);
        }
        Ok(record)
    }
}

/// One framed record scanned out of a byte run.
pub struct Framed {
    /// The decoded record.
    pub record: WalRecord,
    /// Total on-disk bytes (frame + payload).
    pub len: usize,
}

/// Why a scan stopped at some offset. Everything except `End` marks the
/// start of the torn/corrupt tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanStop {
    /// Clean end of the byte run.
    End,
    /// Fewer than [`FRAME_BYTES`] bytes remain — a torn frame header.
    TornFrame,
    /// The length word runs past the end of the run (torn payload) or past
    /// [`MAX_PAYLOAD`] (corrupt length).
    BadLength,
    /// The payload fails its CRC.
    BadChecksum,
    /// The payload decoded to garbage.
    BadPayload(CodecError),
}

/// Reads the next framed record at `data[pos..]`.
pub fn next_record(data: &[u8], pos: usize) -> Result<Framed, ScanStop> {
    let remaining = data.len() - pos;
    if remaining == 0 {
        return Err(ScanStop::End);
    }
    if remaining < FRAME_BYTES {
        return Err(ScanStop::TornFrame);
    }
    let len = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
    if len == 0 || len > MAX_PAYLOAD || (len as usize) > remaining - FRAME_BYTES {
        return Err(ScanStop::BadLength);
    }
    let crc = u32::from_le_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
    let payload = &data[pos + FRAME_BYTES..pos + FRAME_BYTES + len as usize];
    if crc32(payload) != crc {
        return Err(ScanStop::BadChecksum);
    }
    let record = WalRecord::decode(payload).map_err(ScanStop::BadPayload)?;
    Ok(Framed { record, len: FRAME_BYTES + len as usize })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Snapshot { image: vec![1, 2, 3, 4] },
            WalRecord::Delta { ops: vec![9, 9] },
            WalRecord::Commit { epoch: 7, graph_fp: 0xDEAD_BEEF },
            WalRecord::Catalog {
                delta: CatalogDelta {
                    node_labels: vec!["C".into()],
                    edge_labels: vec![],
                    prop_keys: vec!["w".into()],
                },
            },
            WalRecord::Model { json: "{\"weights\":[]}".into() },
            WalRecord::Pad { zeros: 17 },
        ]
    }

    #[test]
    fn records_roundtrip_through_framing() {
        let records = sample_records();
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        let mut pos = 0;
        let mut seen = Vec::new();
        loop {
            match next_record(&buf, pos) {
                Ok(f) => {
                    pos += f.len;
                    seen.push(f.record);
                }
                Err(ScanStop::End) => break,
                Err(stop) => panic!("unexpected stop: {stop:?}"),
            }
        }
        assert_eq!(seen, records);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn every_truncation_point_stops_the_scan_cleanly() {
        let mut buf = Vec::new();
        for r in sample_records() {
            r.encode(&mut buf);
        }
        for cut in 0..buf.len() {
            let data = &buf[..cut];
            let mut pos = 0;
            // Scan to the stop; it must never panic and never read past
            // the cut.
            loop {
                match next_record(data, pos) {
                    Ok(f) => pos = pos + f.len,
                    Err(_) => break,
                }
            }
            assert!(pos <= cut);
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let mut buf = Vec::new();
        WalRecord::Commit { epoch: 3, graph_fp: 42 }.encode(&mut buf);
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut corrupt = buf.clone();
                corrupt[byte] ^= 1 << bit;
                match next_record(&corrupt, 0) {
                    Ok(f) => panic!(
                        "flip at {byte}:{bit} yielded a record: {:?}",
                        f.record
                    ),
                    Err(ScanStop::End) => panic!("flip at {byte}:{bit} ended scan"),
                    Err(_) => {}
                }
            }
        }
    }

    #[test]
    fn zero_and_oversized_lengths_are_bad_frames() {
        let mut buf = vec![0u8; 16];
        assert_eq!(next_record(&buf, 0).err(), Some(ScanStop::BadLength));
        buf[0..4].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(next_record(&buf, 0).err(), Some(ScanStop::BadLength));
    }

    #[test]
    fn nonzero_pad_bytes_are_rejected() {
        let mut buf = Vec::new();
        WalRecord::Pad { zeros: 8 }.encode(&mut buf);
        let payload_at = FRAME_BYTES + 1; // first zero byte
        buf[payload_at + 3] = 0xFF;
        // Re-stamp a valid CRC so only the pad-content check can reject it.
        let payload = buf[FRAME_BYTES..].to_vec();
        let crc = chatgraph_support::hash::crc32(&payload);
        buf[4..8].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            next_record(&buf, 0),
            Err(ScanStop::BadPayload(CodecError::BadTag(_)))
        ));
    }
}
