//! Deterministic crash injection for the durability tests.
//!
//! A [`CrashPoint`] armed on a store fires the first time a file write
//! would reach `at_byte`: the write is cut short (torn write) or has one
//! bit flipped (media corruption) *before* the matching `fsync`, the store
//! marks itself crashed, and every later operation fails with
//! `StoreError::Crashed` — exactly the observable behaviour of a process
//! killed mid-append. Recovery is then exercised by reopening the path.
//!
//! Injection is fully deterministic: the same `(mutation sequence,
//! CrashPoint)` pair always produces the same bytes on disk, so the
//! recovery property suite can sweep *every* byte offset of a WAL —
//! record boundaries and mid-record alike — and assert the recovered
//! epoch exactly.

/// What the injected crash does to the in-flight write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// The write stops at `at_byte`: bytes before it reach the file, the
    /// rest never do (a torn append).
    Truncate,
    /// The full write lands, but with bit `bit & 7` of the byte at
    /// `at_byte` inverted (corruption that only the record CRC can catch).
    FlipBit {
        /// Which bit of the byte to invert (taken mod 8).
        bit: u8,
    },
}

/// A one-shot, deterministically placed crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Absolute file offset the crash fires at. For WAL appends this is an
    /// offset in the store file; for a checkpoint it addresses the
    /// temporary file being built (the rename never happens).
    pub at_byte: u64,
    /// Torn write or bit flip.
    pub mode: CrashMode,
}

impl CrashPoint {
    /// A torn-write crash at `at_byte`.
    pub fn truncate(at_byte: u64) -> CrashPoint {
        CrashPoint { at_byte, mode: CrashMode::Truncate }
    }

    /// A bit-flip crash at `at_byte`, inverting bit `bit & 7`.
    pub fn flip_bit(at_byte: u64, bit: u8) -> CrashPoint {
        CrashPoint { at_byte, mode: CrashMode::FlipBit { bit } }
    }

    /// Whether a write of `len` bytes starting at `start` reaches the
    /// crash offset.
    pub fn fires(&self, start: u64, len: usize) -> bool {
        self.at_byte < start + len as u64
    }

    /// The bytes of `buf` (to be written at `start`) after the crash:
    /// shortened for [`CrashMode::Truncate`], bit-flipped for
    /// [`CrashMode::FlipBit`]. Offsets before `start` write nothing.
    pub fn mangle(&self, start: u64, buf: &[u8]) -> Vec<u8> {
        match self.mode {
            CrashMode::Truncate => {
                let keep = self.at_byte.saturating_sub(start).min(buf.len() as u64);
                buf[..keep as usize].to_vec()
            }
            CrashMode::FlipBit { bit } => {
                let mut out = buf.to_vec();
                if self.at_byte >= start {
                    let i = (self.at_byte - start) as usize;
                    if i < out.len() {
                        out[i] ^= 1 << (bit & 7);
                    }
                } else {
                    out.clear();
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_keeps_the_prefix_before_the_offset() {
        let cp = CrashPoint::truncate(13);
        assert!(!cp.fires(10, 3));
        assert!(cp.fires(10, 4));
        assert_eq!(cp.mangle(10, &[1, 2, 3, 4, 5]), vec![1, 2, 3]);
        assert_eq!(cp.mangle(13, &[1, 2]), Vec::<u8>::new());
        assert_eq!(cp.mangle(20, &[1, 2]), Vec::<u8>::new());
    }

    #[test]
    fn flip_bit_corrupts_exactly_one_bit() {
        let cp = CrashPoint::flip_bit(11, 2);
        let out = cp.mangle(10, &[0, 0, 0]);
        assert_eq!(out, vec![0, 0b100, 0]);
        // An offset before the write start models a crash before any byte
        // of this append landed.
        assert!(cp.mangle(12, &[0xFF; 4]).is_empty());
    }
}
