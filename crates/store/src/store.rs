//! The single-file durable graph store.
//!
//! ## File layout
//!
//! The store is one file of [`PAGE_SIZE`]-byte pages:
//!
//! * **page 0** — the header: magic, format version, page size, WAL offset,
//!   CRC. The header is written once per file generation (create or
//!   checkpoint) and never updated in place.
//! * **pages 1…** — the append-only WAL (see [`crate::record`] for the
//!   record grammar). A fresh file opens with a *base group* — `Snapshot`,
//!   `Catalog`, `Stats`, `Commit`, optionally `Model` — padded to a page
//!   boundary, so live appends always start page-aligned.
//!
//! ## Commit protocol
//!
//! [`GraphStore::commit`] stages the epoch's records (`Delta` against the
//! last committed graph, or a `Snapshot` when the mutation is not
//! delta-expressible, plus any new `Catalog` entries and the epoch's
//! `Stats`) and seals them with a `Commit { epoch, graph_fp }` record, all
//! in **one** buffered write followed by one `fsync`. State in memory is
//! updated only after the fsync returns: a crash at any byte of the append
//! leaves the previous epoch durable and intact.
//!
//! ## Recovery
//!
//! [`GraphStore::open`] scans the WAL from the first page, replaying sealed
//! groups in order. The scan stops at the first torn frame, failed CRC,
//! undecodable payload, fingerprint mismatch or epoch regression; the file
//! is truncated back to the last durable boundary (`tail_dropped` bytes
//! removed). The recovered graph is therefore always *fingerprint-identical
//! to some prefix of committed epochs* — the crash-injection property suite
//! asserts this at every byte offset.
//!
//! ## Checkpoint
//!
//! [`GraphStore::checkpoint`] compacts the WAL: the current committed state
//! is written as a fresh base group to `<path>.tmp`, fsynced, and renamed
//! over the store — the only "header write" in the design, and atomic. A
//! crash during checkpoint abandons the temporary file ([`GraphStore::open`]
//! removes stale ones) and loses nothing.

use crate::catalog::{Catalog, CatalogDelta};
use crate::crash::CrashPoint;
use crate::record::{next_record, WalRecord};
use crate::{graph_fp, StoreError};
use chatgraph_graph::delta::{image_from_bytes, image_to_bytes, GraphDelta};
use chatgraph_graph::stats::StatsCatalog;
use chatgraph_graph::Graph;
use chatgraph_support::hash::crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Pages are 4 KiB: the header fills page 0, the WAL starts at page 1, and
/// create/checkpoint pad the base group so live appends begin page-aligned.
pub const PAGE_SIZE: usize = 4096;

const MAGIC: &[u8; 8] = b"CGSTORE1";
const FORMAT_VERSION: u32 = 1;
// Header: magic[8] | version u32 | page_size u32 | wal_off u64 | crc u32.
const HEADER_BYTES: usize = 28;

/// What [`GraphStore::open`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The recovered (last durable) store epoch.
    pub epoch: u64,
    /// WAL records replayed into the recovered state.
    pub records_replayed: usize,
    /// Commit groups among them.
    pub commits_replayed: usize,
    /// Torn/corrupt tail bytes truncated off the file.
    pub tail_dropped: u64,
}

/// Receipt for one durable commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitReceipt {
    /// The epoch this commit produced.
    pub epoch: u64,
    /// WAL records appended (delta/snapshot + catalog? + stats + commit).
    pub records: usize,
    /// Bytes appended.
    pub bytes: u64,
    /// Absolute file offset after the append — the durable boundary the
    /// crash-injection suite sweeps against.
    pub wal_end: u64,
    /// Whether the graph went to disk as a delta (vs a full snapshot).
    pub delta: bool,
}

/// Receipt for one WAL checkpoint/compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The epoch the checkpoint captured.
    pub epoch: u64,
    /// Size of the compacted file.
    pub file_bytes: u64,
    /// WAL bytes reclaimed by the compaction.
    pub reclaimed: u64,
}

/// How [`GraphStore::open_or_create`] obtained the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOpened {
    /// No file existed; a fresh store was created at epoch 1.
    Created,
    /// An existing file was opened and recovered.
    Recovered(RecoveryReport),
}

// In-memory mirror of the last durable state. Every field is written only
// *after* the corresponding file write and fsync succeed, so the mirror
// never runs ahead of the disk.
struct StoreInner {
    file: File,
    path: PathBuf,
    /// Durable append position (absolute file offset).
    end: u64,
    /// The last committed graph (the delta base for the next commit).
    graph: Graph,
    /// The last committed store epoch.
    epoch: u64,
    catalog: Catalog,
    stats: StatsCatalog,
    model: Option<String>,
    commits_since_checkpoint: u64,
    crash: Option<CrashPoint>,
    crashed: bool,
}

/// The durable graph store. Thread-safe: one mutex serialises appends,
/// which matches the append-only file anyway.
// The session layer calls into the store while holding a tenant session
// lock (the scheduler's commit hook runs inside `run_chain`), so the store
// lock nests strictly inside it.
// lockdoc: order(session < store_inner)
pub struct GraphStore {
    store_inner: Mutex<StoreInner>,
}

impl std::fmt::Debug for GraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.guard();
        f.debug_struct("GraphStore")
            .field("path", &inner.path)
            .field("epoch", &inner.epoch)
            .field("end", &inner.end)
            .field("crashed", &inner.crashed)
            .finish_non_exhaustive()
    }
}

impl GraphStore {
    /// Creates a fresh store at `path` (atomically — via a temporary file
    /// and rename), seeding it with `graph` as epoch 1.
    pub fn create(path: impl AsRef<Path>, graph: &Graph) -> Result<GraphStore, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut catalog = Catalog::new();
        let seed_delta = catalog.delta_for(graph);
        catalog.apply(&seed_delta);
        let stats = StatsCatalog::build(graph);
        let epoch = 1;
        let bytes = base_file_bytes(graph, &catalog, &stats, None, epoch);
        write_atomic(&path, &bytes)?;
        let file = open_rw(&path)?;
        Ok(GraphStore {
            store_inner: Mutex::new(StoreInner {
                file,
                path,
                end: bytes.len() as u64,
                graph: graph.clone(),
                epoch,
                catalog,
                stats,
                model: None,
                commits_since_checkpoint: 0,
                crash: None,
                crashed: false,
            }),
        })
    }

    /// Opens an existing store, recovering to the last durable epoch: the
    /// WAL is scanned, sealed groups are replayed, and the torn/corrupt
    /// tail (if any) is truncated off.
    pub fn open(path: impl AsRef<Path>) -> Result<(GraphStore, RecoveryReport), StoreError> {
        let path = path.as_ref().to_path_buf();
        // A stale temporary file is an abandoned checkpoint attempt.
        let _ = fs::remove_file(tmp_path(&path));
        let data = fs::read(&path).map_err(io_err)?;
        if data.len() < PAGE_SIZE {
            return Err(StoreError::Corrupt("file is shorter than the header page".into()));
        }
        let wal_off = parse_header(&data)?;

        let mut pos = wal_off;
        let mut durable_end = pos;
        let mut committed: Option<Graph> = None;
        let mut epoch = 0u64;
        let mut catalog = Catalog::new();
        let mut stats: Option<StatsCatalog> = None;
        let mut model: Option<String> = None;
        let mut commits_replayed = 0usize;
        let mut records_replayed = 0usize;
        let mut staged_graph: Option<Graph> = None;
        let mut staged_catalog: Vec<CatalogDelta> = Vec::new();
        let mut staged_stats: Option<StatsCatalog> = None;
        let mut staged_records = 0usize;
        loop {
            let framed = match next_record(&data, pos) {
                Ok(f) => f,
                Err(_) => break,
            };
            let next_pos = pos + framed.len;
            match framed.record {
                WalRecord::Snapshot { image } => match image_from_bytes(&image) {
                    Ok(g) => {
                        staged_graph = Some(g);
                        staged_records += 1;
                    }
                    Err(_) => break,
                },
                WalRecord::Delta { ops } => {
                    let Some(base) = staged_graph.as_ref().or(committed.as_ref()) else {
                        break;
                    };
                    let Ok(d) = GraphDelta::from_bytes(&ops) else { break };
                    let Ok(g) = d.apply(base) else { break };
                    staged_graph = Some(g);
                    staged_records += 1;
                }
                WalRecord::Catalog { delta } => {
                    staged_catalog.push(delta);
                    staged_records += 1;
                }
                WalRecord::Stats { stats: s } => {
                    staged_stats = Some(s);
                    staged_records += 1;
                }
                WalRecord::Commit { epoch: e, graph_fp: fp } => {
                    let g = match staged_graph.take() {
                        Some(g) => g,
                        None => match committed.clone() {
                            Some(g) => g,
                            None => break,
                        },
                    };
                    // The fingerprint re-proves the replayed graph matches
                    // what the writer committed; epochs must strictly grow.
                    if fp != graph_fp(&g) || e <= epoch {
                        break;
                    }
                    committed = Some(g);
                    epoch = e;
                    for d in staged_catalog.drain(..) {
                        catalog.apply(&d);
                    }
                    if let Some(s) = staged_stats.take() {
                        stats = Some(s);
                    }
                    commits_replayed += 1;
                    records_replayed += staged_records + 1;
                    staged_records = 0;
                    durable_end = next_pos;
                }
                WalRecord::Model { json } => {
                    // Standalone-durable, but only at a group boundary.
                    if staged_records > 0 {
                        break;
                    }
                    model = Some(json);
                    records_replayed += 1;
                    durable_end = next_pos;
                }
                WalRecord::Pad { .. } => {
                    if staged_records > 0 {
                        break;
                    }
                    records_replayed += 1;
                    durable_end = next_pos;
                }
            }
            pos = next_pos;
        }
        let Some(graph) = committed else {
            return Err(StoreError::Corrupt("log contains no committed state".into()));
        };
        let stats = stats.unwrap_or_else(|| StatsCatalog::build(&graph));
        let tail_dropped = (data.len() - durable_end) as u64;
        let file = open_rw(&path)?;
        if tail_dropped > 0 {
            file.set_len(durable_end as u64).map_err(io_err)?;
            file.sync_all().map_err(io_err)?;
        }
        let report = RecoveryReport {
            epoch,
            records_replayed,
            commits_replayed,
            tail_dropped,
        };
        Ok((
            GraphStore {
                store_inner: Mutex::new(StoreInner {
                    file,
                    path,
                    end: durable_end as u64,
                    graph,
                    epoch,
                    catalog,
                    stats,
                    model,
                    commits_since_checkpoint: 0,
                    crash: None,
                    crashed: false,
                }),
            },
            report,
        ))
    }

    /// Opens `path` if it exists, otherwise creates it seeded with `init`.
    pub fn open_or_create(
        path: impl AsRef<Path>,
        init: &Graph,
    ) -> Result<(GraphStore, StoreOpened), StoreError> {
        let path = path.as_ref();
        if path.exists() {
            let (store, report) = GraphStore::open(path)?;
            Ok((store, StoreOpened::Recovered(report)))
        } else {
            Ok((GraphStore::create(path, init)?, StoreOpened::Created))
        }
    }

    /// Durably commits `graph` as the next epoch: one buffered append of
    /// the group's records (delta or snapshot, new catalog entries, the
    /// epoch's statistics, and the sealing commit), one fsync. Returns only
    /// after the bytes are on disk.
    pub fn commit(&self, graph: &Graph) -> Result<CommitReceipt, StoreError> {
        let mut inner = self.guard();
        inner.ensure_live()?;
        let epoch = inner.epoch + 1;
        let delta = GraphDelta::diff(&inner.graph, graph);
        let used_delta = delta.is_some();
        let cat_delta = inner.catalog.delta_for(graph);
        let stats = StatsCatalog::build(graph);

        let mut buf = Vec::new();
        let mut records = 0usize;
        match &delta {
            Some(d) => WalRecord::Delta { ops: d.to_bytes() }.encode(&mut buf),
            None => WalRecord::Snapshot { image: image_to_bytes(graph) }.encode(&mut buf),
        }
        records += 1;
        if !cat_delta.is_empty() {
            WalRecord::Catalog { delta: cat_delta.clone() }.encode(&mut buf);
            records += 1;
        }
        WalRecord::Stats { stats: stats.clone() }.encode(&mut buf);
        records += 1;
        WalRecord::Commit { epoch, graph_fp: graph_fp(graph) }.encode(&mut buf);
        records += 1;

        inner.append(&buf)?;
        inner.graph = graph.clone();
        inner.epoch = epoch;
        inner.catalog.apply(&cat_delta);
        inner.stats = stats;
        inner.commits_since_checkpoint += 1;
        Ok(CommitReceipt {
            epoch,
            records,
            bytes: buf.len() as u64,
            wal_end: inner.end,
            delta: used_delta,
        })
    }

    /// Durably saves the finetuned model (standalone record — no epoch).
    pub fn put_model(&self, json: &str) -> Result<(), StoreError> {
        let mut inner = self.guard();
        inner.ensure_live()?;
        let mut buf = Vec::new();
        WalRecord::Model { json: json.to_owned() }.encode(&mut buf);
        inner.append(&buf)?;
        inner.model = Some(json.to_owned());
        Ok(())
    }

    /// Compacts the WAL: writes the committed state as a fresh base group
    /// to a temporary file and atomically renames it over the store.
    pub fn checkpoint(&self) -> Result<CheckpointReport, StoreError> {
        let mut inner = self.guard();
        inner.ensure_live()?;
        let bytes = base_file_bytes(
            &inner.graph,
            &inner.catalog,
            &inner.stats,
            inner.model.as_deref(),
            inner.epoch,
        );
        let old_len = inner.end;
        if let Some(cp) = inner.crash {
            if cp.fires(0, bytes.len()) {
                // Crash while building the temporary file: the mangled tmp
                // is abandoned (never renamed), the store file untouched.
                let _ = fs::write(tmp_path(&inner.path), cp.mangle(0, &bytes));
                inner.crashed = true;
                return Err(StoreError::CrashInjected { at_byte: cp.at_byte });
            }
        }
        write_atomic(&inner.path, &bytes)?;
        inner.file = open_rw(&inner.path)?;
        inner.end = bytes.len() as u64;
        inner.commits_since_checkpoint = 0;
        Ok(CheckpointReport {
            epoch: inner.epoch,
            file_bytes: inner.end,
            reclaimed: old_len.saturating_sub(inner.end),
        })
    }

    /// The last committed graph.
    pub fn graph(&self) -> Graph {
        self.guard().graph.clone()
    }

    /// The last committed epoch's statistics catalog (what the planner's
    /// cost model reads on reopen, without an O(n + m) rebuild).
    pub fn stats(&self) -> StatsCatalog {
        self.guard().stats.clone()
    }

    /// The persistent id catalogs.
    pub fn catalog(&self) -> Catalog {
        self.guard().catalog.clone()
    }

    /// The saved model, if one was persisted.
    pub fn model(&self) -> Option<String> {
        self.guard().model.clone()
    }

    /// The last committed store epoch.
    pub fn epoch(&self) -> u64 {
        self.guard().epoch
    }

    /// Bytes of WAL appended since the file's base group (grows with every
    /// commit, reset by checkpoint).
    pub fn wal_bytes(&self) -> u64 {
        let inner = self.guard();
        inner.end.saturating_sub(PAGE_SIZE as u64)
    }

    /// Total durable file size.
    pub fn file_bytes(&self) -> u64 {
        self.guard().end
    }

    /// Commits since the last checkpoint (the session layer's compaction
    /// trigger).
    pub fn commits_since_checkpoint(&self) -> u64 {
        self.guard().commits_since_checkpoint
    }

    /// The store file path.
    pub fn path(&self) -> PathBuf {
        self.guard().path.clone()
    }

    /// Arms deterministic crash injection: the next write reaching the
    /// crash offset is torn or bit-flipped, and the store goes dead until
    /// reopened.
    pub fn arm_crash(&self, crash: CrashPoint) {
        self.guard().crash = Some(crash);
    }

    /// Disarms crash injection (a pending, unfired crash point only — a
    /// fired one has already killed the store).
    pub fn disarm_crash(&self) {
        self.guard().crash = None;
    }

    /// Whether an injected crash has fired (every operation now fails).
    pub fn is_crashed(&self) -> bool {
        self.guard().crashed
    }

    // lockdoc: acquires(store_inner)
    fn guard(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        // In-memory state is updated only after the corresponding file
        // write and fsync succeed, so a panicked writer leaves the mirror
        // on the previous durable state — recovery is safe.
        // lockdoc: recover(fields mirror the last durable state and are written whole after a successful fsync; a panic mid-append cannot tear them)
        self.store_inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl StoreInner {
    fn ensure_live(&self) -> Result<(), StoreError> {
        if self.crashed {
            return Err(StoreError::Crashed);
        }
        Ok(())
    }

    /// Appends `buf` at the durable end and fsyncs, honouring an armed
    /// crash point. The append position only advances on full success, so
    /// a failed (or torn) append is overwritten by the next one.
    fn append(&mut self, buf: &[u8]) -> Result<(), StoreError> {
        let start = self.end;
        if let Some(cp) = self.crash {
            if cp.fires(start, buf.len()) {
                let mangled = cp.mangle(start, buf);
                self.crashed = true;
                let _ = self.write_at(start, &mangled);
                let _ = self.file.sync_data();
                return Err(StoreError::CrashInjected { at_byte: cp.at_byte });
            }
        }
        self.write_at(start, buf)?;
        self.file.sync_data().map_err(io_err)?;
        self.end = start + buf.len() as u64;
        Ok(())
    }

    fn write_at(&mut self, at: u64, buf: &[u8]) -> Result<(), StoreError> {
        self.file.seek(SeekFrom::Start(at)).map_err(io_err)?;
        self.file.write_all(buf).map_err(io_err)
    }
}

/// A complete fresh store file: header page, then the base group
/// (`Snapshot`, `Catalog`, `Stats`, `Commit`, optional `Model`), padded to
/// a page boundary.
fn base_file_bytes(
    graph: &Graph,
    catalog: &Catalog,
    stats: &StatsCatalog,
    model: Option<&str>,
    epoch: u64,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 * PAGE_SIZE);
    out.extend_from_slice(&header_page());
    WalRecord::Snapshot { image: image_to_bytes(graph) }.encode(&mut out);
    let full = CatalogDelta {
        node_labels: catalog.node_labels.clone(),
        edge_labels: catalog.edge_labels.clone(),
        prop_keys: catalog.prop_keys.clone(),
    };
    if !full.is_empty() {
        WalRecord::Catalog { delta: full }.encode(&mut out);
    }
    WalRecord::Stats { stats: stats.clone() }.encode(&mut out);
    WalRecord::Commit { epoch, graph_fp: graph_fp(graph) }.encode(&mut out);
    if let Some(json) = model {
        WalRecord::Model { json: json.to_owned() }.encode(&mut out);
    }
    pad_to_page(&mut out);
    out
}

/// Pads `out` to the next page boundary with a `Pad` record (skipping ahead
/// one page when the gap is too small to hold a record frame).
fn pad_to_page(out: &mut Vec<u8>) {
    let rem = out.len() % PAGE_SIZE;
    if rem == 0 {
        return;
    }
    let mut gap = PAGE_SIZE - rem;
    if gap < crate::record::FRAME_BYTES + 1 {
        gap += PAGE_SIZE;
    }
    WalRecord::Pad { zeros: gap - crate::record::FRAME_BYTES - 1 }.encode(out);
}

fn header_page() -> [u8; PAGE_SIZE] {
    let mut page = [0u8; PAGE_SIZE];
    page[0..8].copy_from_slice(MAGIC);
    page[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    page[12..16].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
    page[16..24].copy_from_slice(&(PAGE_SIZE as u64).to_le_bytes());
    let crc = crc32(&page[0..HEADER_BYTES - 4]);
    page[HEADER_BYTES - 4..HEADER_BYTES].copy_from_slice(&crc.to_le_bytes());
    page
}

/// Validates the header page, returning the WAL offset.
fn parse_header(data: &[u8]) -> Result<usize, StoreError> {
    let h = &data[..HEADER_BYTES];
    let crc = u32::from_le_bytes([h[24], h[25], h[26], h[27]]);
    if crc32(&h[..HEADER_BYTES - 4]) != crc {
        return Err(StoreError::Corrupt("header checksum mismatch".into()));
    }
    if &h[0..8] != MAGIC {
        return Err(StoreError::Corrupt("bad magic".into()));
    }
    let version = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
    if version != FORMAT_VERSION {
        return Err(StoreError::Corrupt(format!("unsupported format version {version}")));
    }
    let page_size = u32::from_le_bytes([h[12], h[13], h[14], h[15]]) as usize;
    if page_size != PAGE_SIZE {
        return Err(StoreError::Corrupt(format!("unsupported page size {page_size}")));
    }
    let wal_off = u64::from_le_bytes([h[16], h[17], h[18], h[19], h[20], h[21], h[22], h[23]]);
    if wal_off as usize > data.len() || wal_off as usize % PAGE_SIZE != 0 || wal_off == 0 {
        return Err(StoreError::Corrupt(format!("bad wal offset {wal_off}")));
    }
    Ok(wal_off as usize)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Writes `bytes` to `path` atomically: temporary sibling, fsync, rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = tmp_path(path);
    let mut f = File::create(&tmp).map_err(io_err)?;
    f.write_all(bytes).map_err(io_err)?;
    f.sync_all().map_err(io_err)?;
    drop(f);
    fs::rename(&tmp, path).map_err(io_err)?;
    // Best-effort directory fsync so the rename itself is durable.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn open_rw(path: &Path) -> Result<File, StoreError> {
    OpenOptions::new().read(true).write(true).open(path).map_err(io_err)
}

fn io_err(e: std::io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::CrashMode;
    use chatgraph_graph::generators::{social_network, SocialParams};
    use chatgraph_graph::GraphBuilder;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_store(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "chatgraph-store-unit-{tag}-{}-{}.cgdb",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ))
    }

    fn sample() -> Graph {
        social_network(&SocialParams::default(), 11)
    }

    fn mutate(g: &mut Graph, round: u32) {
        let v = g.add_node(format!("extra-{round}"));
        let first = g.node_ids().next();
        if let Some(u) = first {
            if u != v {
                let _ = g.add_edge(u, v, "follows");
            }
        }
    }

    #[test]
    fn create_then_open_restores_everything() {
        let path = temp_store("roundtrip");
        let g = sample();
        let store = GraphStore::create(&path, &g).unwrap();
        assert_eq!(store.epoch(), 1);
        assert!(store.catalog().len() > 0);
        drop(store);

        let (store, report) = GraphStore::open(&path).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.commits_replayed, 1);
        assert_eq!(report.tail_dropped, 0);
        assert_eq!(store.graph(), g);
        assert_eq!(store.stats(), StatsCatalog::build(&g));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn commits_replay_on_reopen_with_exact_fingerprints() {
        let path = temp_store("commits");
        let mut g = sample();
        let store = GraphStore::create(&path, &g).unwrap();
        for round in 0..5 {
            mutate(&mut g, round);
            let receipt = store.commit(&g).unwrap();
            assert_eq!(receipt.epoch, (round + 2) as u64);
            assert!(receipt.delta, "small edits should go as deltas");
        }
        assert_eq!(store.wal_bytes() % 1, 0);
        drop(store);

        let (store, report) = GraphStore::open(&path).unwrap();
        assert_eq!(report.epoch, 6);
        assert_eq!(report.commits_replayed, 6);
        assert_eq!(report.tail_dropped, 0);
        assert_eq!(store.graph(), g);
        assert_eq!(graph_fp(&store.graph()), graph_fp(&g));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn model_survives_reopen_and_checkpoint() {
        let path = temp_store("model");
        let g = sample();
        let store = GraphStore::create(&path, &g).unwrap();
        store.put_model("{\"weights\":[1,2,3]}").unwrap();
        drop(store);
        let (store, _) = GraphStore::open(&path).unwrap();
        assert_eq!(store.model().as_deref(), Some("{\"weights\":[1,2,3]}"));
        store.checkpoint().unwrap();
        drop(store);
        let (store, _) = GraphStore::open(&path).unwrap();
        assert_eq!(store.model().as_deref(), Some("{\"weights\":[1,2,3]}"));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_compacts_and_preserves_state() {
        let path = temp_store("checkpoint");
        let mut g = sample();
        let store = GraphStore::create(&path, &g).unwrap();
        for round in 0..20 {
            mutate(&mut g, round);
            store.commit(&g).unwrap();
        }
        let before = store.file_bytes();
        assert_eq!(store.commits_since_checkpoint(), 20);
        let report = store.checkpoint().unwrap();
        assert_eq!(report.epoch, 21);
        assert!(report.file_bytes < before, "{} !< {}", report.file_bytes, before);
        assert_eq!(store.commits_since_checkpoint(), 0);
        assert_eq!(store.file_bytes() % PAGE_SIZE as u64, 0);
        drop(store);
        let (store, report) = GraphStore::open(&path).unwrap();
        assert_eq!(report.epoch, 21);
        assert_eq!(store.graph(), g);
        assert_eq!(store.stats(), StatsCatalog::build(&g));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_append_recovers_to_previous_epoch() {
        let path = temp_store("torn");
        let mut g = sample();
        let store = GraphStore::create(&path, &g).unwrap();
        mutate(&mut g, 0);
        let r1 = store.commit(&g).unwrap();
        let committed = g.clone();
        // Crash 10 bytes into the next append.
        store.arm_crash(CrashPoint::truncate(r1.wal_end + 10));
        mutate(&mut g, 1);
        let err = store.commit(&g).unwrap_err();
        assert!(matches!(err, StoreError::CrashInjected { .. }));
        assert!(store.is_crashed());
        assert_eq!(store.commit(&g).unwrap_err(), StoreError::Crashed);
        drop(store);

        let (store, report) = GraphStore::open(&path).unwrap();
        assert_eq!(report.epoch, r1.epoch);
        assert_eq!(report.tail_dropped, 10);
        assert_eq!(store.graph(), committed);
        // The recovered store accepts new commits cleanly.
        let r2 = store.commit(&g).unwrap();
        assert_eq!(r2.epoch, r1.epoch + 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn flipped_bit_recovers_to_previous_epoch() {
        let path = temp_store("flip");
        let mut g = sample();
        let store = GraphStore::create(&path, &g).unwrap();
        let r1 = store.commit(&g).unwrap();
        let committed = store.graph();
        store.arm_crash(CrashPoint::flip_bit(r1.wal_end + 25, 3));
        mutate(&mut g, 1);
        let err = store.commit(&g).unwrap_err();
        assert!(matches!(err, StoreError::CrashInjected { .. }));
        drop(store);

        let (store, report) = GraphStore::open(&path).unwrap();
        assert_eq!(report.epoch, r1.epoch);
        assert!(report.tail_dropped > 0, "corrupt tail must be truncated");
        assert_eq!(store.graph(), committed);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn crash_during_checkpoint_loses_nothing() {
        let path = temp_store("ckpt-crash");
        let mut g = sample();
        let store = GraphStore::create(&path, &g).unwrap();
        for round in 0..6 {
            mutate(&mut g, round);
            store.commit(&g).unwrap();
        }
        store.arm_crash(CrashPoint { at_byte: PAGE_SIZE as u64 + 3, mode: CrashMode::Truncate });
        assert!(matches!(
            store.checkpoint().unwrap_err(),
            StoreError::CrashInjected { .. }
        ));
        drop(store);
        let (store, report) = GraphStore::open(&path).unwrap();
        assert_eq!(report.epoch, 7);
        assert_eq!(store.graph(), g);
        assert!(!tmp_path(&store.path()).exists(), "stale tmp must be removed");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        let path = temp_store("header");
        let g = GraphBuilder::undirected().node("a", "X").build();
        GraphStore::create(&path, &g).unwrap();
        let mut data = fs::read(&path).unwrap();
        data[3] ^= 0x40;
        fs::write(&path, &data).unwrap();
        assert!(matches!(GraphStore::open(&path), Err(StoreError::Corrupt(_))));
        // Too-short files too.
        fs::write(&path, b"CGSTORE1").unwrap();
        assert!(matches!(GraphStore::open(&path), Err(StoreError::Corrupt(_))));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn open_or_create_distinguishes_the_two_paths() {
        let path = temp_store("ooc");
        let g = sample();
        let (store, opened) = GraphStore::open_or_create(&path, &g).unwrap();
        assert_eq!(opened, StoreOpened::Created);
        drop(store);
        let (store, opened) = GraphStore::open_or_create(&path, &Graph::undirected()).unwrap();
        assert!(matches!(opened, StoreOpened::Recovered(r) if r.epoch == 1));
        assert_eq!(store.graph(), g, "recovered graph wins over init");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn appends_start_page_aligned() {
        let path = temp_store("aligned");
        let g = sample();
        let store = GraphStore::create(&path, &g).unwrap();
        assert_eq!(store.file_bytes() % PAGE_SIZE as u64, 0);
        let _ = fs::remove_file(&path);
    }
}
