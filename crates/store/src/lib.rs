//! # chatgraph-store — the durable graph store
//!
//! A single-file, page-based durable store for ChatGraph sessions: an
//! append-only, checksummed write-ahead log whose commits align one-to-one
//! with the scheduler's mutation barriers. The contract, proved by the
//! crash-injection suite in `tests/recovery_properties.rs`:
//!
//! > After a crash at **any** byte offset — torn write or flipped bit —
//! > reopening the store recovers a graph fingerprint-identical to some
//! > prefix of the committed mutation barriers, and every barrier the
//! > store acknowledged before the crash is in that prefix.
//!
//! Modules, bottom-up:
//!
//! * [`codec`] — bounds-checked little-endian (de)serialisation.
//! * [`catalog`] — persistent label/type/property-key id catalogs.
//! * [`record`] — the WAL record grammar and `len | crc | payload` framing.
//! * [`crash`] — deterministic crash injection ([`crash::CrashPoint`]).
//! * [`store`] — [`GraphStore`]: create/open/commit/checkpoint/recover.
//!
//! The crate depends only on `chatgraph-support` and `chatgraph-graph`;
//! session integration (the scheduler's commit sink, config, serving) lives
//! above it in `chatgraph-core`.

pub mod catalog;
pub mod codec;
pub mod crash;
pub mod record;
pub mod store;

pub use crash::{CrashMode, CrashPoint};
pub use store::{
    CheckpointReport, CommitReceipt, GraphStore, RecoveryReport, StoreOpened, PAGE_SIZE,
};

use chatgraph_graph::delta::image_to_bytes;
use chatgraph_graph::Graph;
use chatgraph_support::hash::fnv1a64;

/// What went wrong in a store operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O error from the filesystem.
    Io(String),
    /// The file failed validation beyond repair (bad header, or no
    /// committed state survived the scan).
    Corrupt(String),
    /// An armed [`CrashPoint`] fired during this operation.
    CrashInjected {
        /// The file offset the crash was placed at.
        at_byte: u64,
    },
    /// A previous injected crash killed this store handle; reopen the path
    /// to recover.
    Crashed,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt(why) => write!(f, "store file is corrupt: {why}"),
            StoreError::CrashInjected { at_byte } => {
                write!(f, "injected crash fired at byte {at_byte}")
            }
            StoreError::Crashed => write!(f, "store is dead after an injected crash"),
        }
    }
}

impl std::error::Error for StoreError {}

/// The store's graph fingerprint: FNV-1a 64 over the slot-exact image
/// bytes. Slot-exact (rather than the densifying `binary::to_bytes`) so
/// that a recovered graph reproduces chain results bit-identically — chain
/// findings hold stable node/edge ids.
pub fn graph_fp(g: &Graph) -> u64 {
    fnv1a64(&image_to_bytes(g))
}
