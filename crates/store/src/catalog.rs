//! Persistent id catalogs for node labels, edge labels (relation types) and
//! property keys.
//!
//! The store interns every label/key string it has ever committed into a
//! stable `u32` id: ids are assigned in first-appearance order and never
//! reused or reordered, so an id recorded in one epoch still names the same
//! string in every later epoch. Catalogs are persisted incrementally — each
//! commit appends only the *new* entries (a [`CatalogDelta`]) to the WAL —
//! and rebuilt on recovery by replaying those appends in order.

use crate::codec::{put_string, put_u32, CodecError, Reader};
use chatgraph_graph::Graph;

/// The interned string tables: index = id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    /// Node labels, in first-appearance order.
    pub node_labels: Vec<String>,
    /// Edge labels (relation types), in first-appearance order.
    pub edge_labels: Vec<String>,
    /// Property keys (node and edge attributes), in first-appearance order.
    pub prop_keys: Vec<String>,
}

/// The entries one commit adds to the catalog (empty for most commits).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CatalogDelta {
    /// New node labels, in first-appearance order.
    pub node_labels: Vec<String>,
    /// New edge labels, in first-appearance order.
    pub edge_labels: Vec<String>,
    /// New property keys, in first-appearance order.
    pub prop_keys: Vec<String>,
}

impl CatalogDelta {
    /// Whether the commit introduced no new strings.
    pub fn is_empty(&self) -> bool {
        self.node_labels.is_empty() && self.edge_labels.is_empty() && self.prop_keys.is_empty()
    }

    /// Serialises the delta (a WAL `Catalog` record body, minus the tag).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for table in [&self.node_labels, &self.edge_labels, &self.prop_keys] {
            put_u32(&mut out, table.len() as u32);
            for s in table {
                put_string(&mut out, s);
            }
        }
        out
    }

    /// Decodes a delta written by [`CatalogDelta::to_bytes`].
    pub fn decode(r: &mut Reader<'_>) -> Result<CatalogDelta, CodecError> {
        let mut tables: [Vec<String>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for table in &mut tables {
            let declared = r.u32()?;
            // Each entry is at least its 4-byte length prefix.
            let n = r.check_count(declared, 4)?;
            table.reserve(n);
            for _ in 0..n {
                table.push(r.string()?);
            }
        }
        let [node_labels, edge_labels, prop_keys] = tables;
        Ok(CatalogDelta { node_labels, edge_labels, prop_keys })
    }
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Total interned strings across the three tables.
    pub fn len(&self) -> usize {
        self.node_labels.len() + self.edge_labels.len() + self.prop_keys.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The id of a node label, if interned.
    pub fn node_label_id(&self, label: &str) -> Option<u32> {
        self.node_labels.iter().position(|l| l == label).map(|i| i as u32)
    }

    /// The id of an edge label, if interned.
    pub fn edge_label_id(&self, label: &str) -> Option<u32> {
        self.edge_labels.iter().position(|l| l == label).map(|i| i as u32)
    }

    /// The id of a property key, if interned.
    pub fn prop_key_id(&self, key: &str) -> Option<u32> {
        self.prop_keys.iter().position(|k| k == key).map(|i| i as u32)
    }

    /// The strings `g` uses that this catalog has not interned yet, in
    /// first-appearance (id-assignment) order.
    pub fn delta_for(&self, g: &Graph) -> CatalogDelta {
        let mut delta = CatalogDelta::default();
        let absorb = |table: &Vec<String>, fresh: &mut Vec<String>, s: &str| {
            if !table.iter().any(|t| t == s) && !fresh.iter().any(|t| t == s) {
                fresh.push(s.to_owned());
            }
        };
        for v in g.node_ids() {
            if let Ok(label) = g.node_label(v) {
                absorb(&self.node_labels, &mut delta.node_labels, label);
            }
            if let Ok(attrs) = g.node_attrs(v) {
                for key in attrs.keys() {
                    absorb(&self.prop_keys, &mut delta.prop_keys, key);
                }
            }
        }
        for e in g.edge_ids() {
            if let Ok(label) = g.edge_label(e) {
                absorb(&self.edge_labels, &mut delta.edge_labels, label);
            }
            if let Ok(attrs) = g.edge_attrs(e) {
                for key in attrs.keys() {
                    absorb(&self.prop_keys, &mut delta.prop_keys, key);
                }
            }
        }
        delta
    }

    /// Appends a delta's entries, assigning the next ids.
    pub fn apply(&mut self, delta: &CatalogDelta) {
        self.node_labels.extend(delta.node_labels.iter().cloned());
        self.edge_labels.extend(delta.edge_labels.iter().cloned());
        self.prop_keys.extend(delta.prop_keys.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatgraph_graph::attr::AttrValue;
    use chatgraph_graph::GraphBuilder;

    fn sample() -> Graph {
        let mut g = GraphBuilder::undirected()
            .node("a", "C")
            .node("b", "O")
            .edge("a", "b", "single")
            .build();
        let v = g.node_ids().next().unwrap();
        g.node_attrs_mut(v).unwrap().insert("charge".into(), AttrValue::Int(1));
        g
    }

    #[test]
    fn ids_are_first_appearance_order_and_stable() {
        let mut cat = Catalog::new();
        let d1 = cat.delta_for(&sample());
        assert_eq!(d1.node_labels, vec!["C".to_owned(), "O".to_owned()]);
        assert_eq!(d1.edge_labels, vec!["single".to_owned()]);
        assert_eq!(d1.prop_keys, vec!["charge".to_owned()]);
        cat.apply(&d1);
        assert_eq!(cat.node_label_id("C"), Some(0));
        assert_eq!(cat.node_label_id("O"), Some(1));
        assert_eq!(cat.edge_label_id("single"), Some(0));
        assert_eq!(cat.prop_key_id("charge"), Some(0));

        // A second pass over the same graph adds nothing; new strings get
        // the next ids without disturbing old ones.
        assert!(cat.delta_for(&sample()).is_empty());
        let mut g = sample();
        let v = g.node_ids().last().unwrap();
        g.set_node_label(v, "N").unwrap();
        let d2 = cat.delta_for(&g);
        assert_eq!(d2.node_labels, vec!["N".to_owned()]);
        cat.apply(&d2);
        assert_eq!(cat.node_label_id("N"), Some(2));
        assert_eq!(cat.node_label_id("C"), Some(0));
    }

    #[test]
    fn delta_codec_roundtrips() {
        let mut cat = Catalog::new();
        let d = cat.delta_for(&sample());
        let bytes = d.to_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(CatalogDelta::decode(&mut r).unwrap(), d);
        assert!(r.done());
        cat.apply(&d);
        assert_eq!(cat.len(), 4);

        let empty = CatalogDelta::default();
        let bytes = empty.to_bytes();
        let mut r = Reader::new(&bytes);
        assert!(CatalogDelta::decode(&mut r).unwrap().is_empty());
    }

    #[test]
    fn oversized_counts_are_rejected() {
        let mut bytes = CatalogDelta::default().to_bytes();
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = Reader::new(&bytes);
        assert_eq!(CatalogDelta::decode(&mut r), Err(CodecError::BadCount));
    }
}
