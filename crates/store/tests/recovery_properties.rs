//! Crash-matrix property tests for the durable store.
//!
//! The suite sweeps *every* byte offset of a WAL built from seeded random
//! mutation chains — truncations (torn writes) and single-bit flips
//! (media corruption) — and asserts the recovery contract:
//!
//! 1. the recovered graph fingerprint is a member of the set of
//!    fingerprints at committed epochs (never a half-applied step),
//! 2. recovery lands on the *greatest* fully-durable commit at or before
//!    the damage point,
//! 3. `executed ≥ replayed`: recovery never replays more records or
//!    commits than were written,
//! 4. a store that survives a checkpoint replays to the same fingerprint
//!    as the in-memory graph it mirrored.

use chatgraph_graph::{AttrValue, Graph, NodeId};
use chatgraph_store::{
    graph_fp, CrashMode, CrashPoint, GraphStore, StoreOpened, PAGE_SIZE,
};
use chatgraph_support::prop::{check, Config};
use chatgraph_support::rng::{RngExt, SeedableRng, StdRng};
use chatgraph_support::{prop_assert, prop_assert_eq};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "chatgraph-store-prop-{tag}-{}-{}.cgdb",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ))
}

/// One seeded random mutation: grow, relabel, or annotate.
fn random_mutation(g: &mut Graph, rng: &mut StdRng, round: usize) {
    let nodes: Vec<NodeId> = g.node_ids().collect();
    match rng.random_range(0u8..4) {
        0 => {
            g.add_node(format!("n{round}"));
        }
        1 if nodes.len() >= 2 => {
            let u = nodes[rng.random_range(0..nodes.len())];
            let v = nodes[rng.random_range(0..nodes.len())];
            if u != v {
                let _ = g.add_edge(u, v, format!("e{round}"));
            }
        }
        2 if !nodes.is_empty() => {
            let v = nodes[rng.random_range(0..nodes.len())];
            let _ = g.set_node_label(v, format!("relabel{round}"));
        }
        _ if !nodes.is_empty() => {
            let v = nodes[rng.random_range(0..nodes.len())];
            if let Ok(attrs) = g.node_attrs_mut(v) {
                attrs.insert(format!("k{}", round % 3), AttrValue::Int(round as i64));
            }
        }
        _ => {
            g.add_node(format!("n{round}"));
        }
    }
}

/// A committed-epoch marker: `(epoch, fingerprint, durable end offset)`.
type EpochMark = (u64, u64, u64);

/// Builds a store at `path` from a seeded mutation chain, returning the
/// committed-epoch markers (including the base group as epoch 1) and the
/// total records written (base-group upper bound + per-commit receipts).
fn build_wal(path: &PathBuf, seed: u64, commits: usize) -> (Vec<EpochMark>, usize) {
    let _ = std::fs::remove_file(path);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::undirected();
    for i in 0..4 {
        g.add_node(format!("seed{i}"));
    }
    let store = GraphStore::create(path, &g).expect("create");
    // The base group (snapshot + catalog + stats + commit + pad) is at most
    // five records; recovery must never replay more than were written.
    let mut written = 5;
    let mut marks = vec![(1u64, graph_fp(&g), store.file_bytes())];
    for round in 0..commits {
        random_mutation(&mut g, &mut rng, round);
        let r = store.commit(&g).expect("commit");
        written += r.records;
        marks.push((r.epoch, graph_fp(&g), r.wal_end));
    }
    (marks, written)
}

/// The greatest committed epoch whose durable end fits inside `len` bytes.
fn expected_at(marks: &[EpochMark], len: u64) -> Option<&EpochMark> {
    marks.iter().filter(|(_, _, end)| *end <= len).next_back()
}

/// The byte offset just past the base group's `Commit` record. The base
/// group is padded to a page boundary, so its *durable* end (what a torn
/// write may truncate down to while keeping epoch 1) sits before the file
/// end recorded in its mark.
fn base_commit_end(image: &[u8]) -> u64 {
    use chatgraph_store::record::{next_record, WalRecord};
    let mut pos = PAGE_SIZE;
    loop {
        let framed = next_record(image, pos).expect("base group is intact");
        pos += framed.len;
        if matches!(framed.record, WalRecord::Commit { .. }) {
            return pos as u64;
        }
    }
}

/// Writes `bytes` to a fresh sibling file and opens it as a store.
fn open_mangled(
    tag: &str,
    bytes: &[u8],
) -> Result<(GraphStore, chatgraph_store::RecoveryReport), chatgraph_store::StoreError> {
    let path = temp_path(tag);
    std::fs::write(&path, bytes).expect("write mangled image");
    let out = GraphStore::open(&path);
    let _ = std::fs::remove_file(&path);
    out
}

#[test]
fn truncation_at_every_byte_recovers_greatest_durable_commit() {
    let path = temp_path("trunc-sweep");
    let (mut marks, written) = build_wal(&path, 0xC0FFEE, 6);
    let image = std::fs::read(&path).expect("read image");
    // Epoch 1 is durable as soon as the base group's Commit record is on
    // disk; the trailing pad to the page boundary is expendable tail.
    let page_end = marks[0].2;
    marks[0].2 = base_commit_end(&image);
    // Offsets at which recovery truncates nothing: the commit boundaries,
    // plus the base pad's end (pad records are standalone-durable).
    let durable: Vec<u64> = marks.iter().map(|&(_, _, end)| end).chain([page_end]).collect();
    let fps: Vec<u64> = marks.iter().map(|&(_, fp, _)| fp).collect();
    for len in 0..=image.len() {
        let result = open_mangled("trunc", &image[..len]);
        match expected_at(&marks, len as u64) {
            None => assert!(
                result.is_err(),
                "truncation to {len} bytes left no durable commit but open succeeded"
            ),
            Some(&(epoch, fp, end)) => {
                let (store, report) = result
                    .unwrap_or_else(|e| panic!("open failed at truncation {len}: {e}"));
                assert_eq!(report.epoch, epoch, "truncation to {len} bytes");
                assert_eq!(store.epoch(), epoch, "truncation to {len} bytes");
                let got = graph_fp(&store.graph());
                assert_eq!(got, fp, "truncation to {len} bytes recovered a wrong graph");
                assert!(fps.contains(&got), "fingerprint outside the committed set");
                // `end` ignores standalone-durable pad bytes, so the
                // dropped tail may be shorter than `len - end`.
                assert!(report.tail_dropped <= len as u64 - end);
                assert_eq!(
                    report.tail_dropped == 0,
                    durable.contains(&(len as u64)),
                    "tail_dropped {} at truncation {len}",
                    report.tail_dropped
                );
                assert!(
                    report.records_replayed <= written,
                    "replayed {} > executed {written}",
                    report.records_replayed
                );
                assert!(report.commits_replayed <= marks.len());
            }
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bit_flip_at_every_wal_byte_recovers_a_committed_epoch() {
    let path = temp_path("flip-sweep");
    let (marks, written) = build_wal(&path, 0xB17F11B, 5);
    let image = std::fs::read(&path).expect("read image");
    let fps: Vec<u64> = marks.iter().map(|&(_, fp, _)| fp).collect();
    let base_end = marks[0].2;
    for byte in PAGE_SIZE..image.len() {
        let mut mangled = image.clone();
        mangled[byte] ^= 1 << (byte % 8);
        match open_mangled("flip", &mangled) {
            // A flip inside the base group can destroy the only commit.
            Err(_) => assert!(
                (byte as u64) < base_end,
                "flip at byte {byte} (past the base group) must stay recoverable"
            ),
            Ok((store, report)) => {
                let got = graph_fp(&store.graph());
                assert!(
                    fps.contains(&got),
                    "flip at byte {byte} recovered a fingerprint outside the committed set"
                );
                assert!(report.records_replayed <= written);
                if byte as u64 >= base_end {
                    // Past the base group there is no padding: a flip in
                    // commit group k+1 recovers exactly epoch k.
                    let &(epoch, fp, _) = expected_at(&marks, byte as u64)
                        .expect("base group fits before byte");
                    assert_eq!(report.epoch, epoch, "flip at byte {byte}");
                    assert_eq!(got, fp, "flip at byte {byte}");
                }
            }
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn armed_crash_points_recover_to_previous_epoch() {
    check(
        "armed_crash_points_recover_to_previous_epoch",
        Config::default().with_cases(48),
        |rng, size| {
            (
                rng.random_range(0u64..1 << 32),
                1 + size.min(6),
                rng.random_range(0u64..48),
                rng.random_range(0u8..9), // 8 = truncate, 0..8 = flip that bit
            )
        },
        |&(seed, commits, offset, mode)| {
            let path = temp_path("armed");
            let (marks, _) = build_wal(&path, seed, commits);
            let &(last_epoch, last_fp, wal_end) = marks.last().expect("non-empty");
            let (store, opened) =
                GraphStore::open_or_create(&path, &Graph::undirected())
                    .map_err(|e| format!("reopen: {e}"))?;
            prop_assert!(matches!(opened, StoreOpened::Recovered(_)));
            let crash_mode = if mode == 8 {
                CrashMode::Truncate
            } else {
                CrashMode::FlipBit { bit: mode }
            };
            store.arm_crash(CrashPoint { at_byte: wal_end + offset, mode: crash_mode });
            let mut g = store.graph();
            g.add_node("doomed");
            let crash = store.commit(&g);
            prop_assert!(crash.is_err(), "armed commit must report the crash");
            prop_assert!(store.is_crashed());
            // The process "died": everything after the crash point is torn.
            let (recovered, report) =
                GraphStore::open(&path).map_err(|e| format!("recovery: {e}"))?;
            prop_assert_eq!(report.epoch, last_epoch);
            prop_assert_eq!(graph_fp(&recovered.graph()), last_fp);
            // The store keeps working after recovery.
            let r = recovered.commit(&g).map_err(|e| format!("recommit: {e}"))?;
            prop_assert_eq!(r.epoch, last_epoch + 1);
            prop_assert_eq!(graph_fp(&recovered.graph()), graph_fp(&g));
            let _ = std::fs::remove_file(&path);
            Ok(())
        },
    );
}

#[test]
fn reopen_after_checkpoint_matches_in_memory_graph() {
    check(
        "reopen_after_checkpoint_matches_in_memory_graph",
        Config::default().with_cases(24),
        |rng, size| (rng.random_range(0u64..1 << 32), 2 + size.min(8)),
        |&(seed, rounds)| {
            let path = temp_path("ckpt-diff");
            let _ = std::fs::remove_file(&path);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = Graph::undirected();
            g.add_node("origin");
            let store = GraphStore::create(&path, &g).map_err(|e| e.to_string())?;
            for round in 0..rounds {
                random_mutation(&mut g, &mut rng, round);
                store.commit(&g).map_err(|e| e.to_string())?;
                if round == rounds / 2 {
                    store.checkpoint().map_err(|e| e.to_string())?;
                }
            }
            let epoch = store.epoch();
            drop(store);
            let (reopened, report) = GraphStore::open(&path).map_err(|e| e.to_string())?;
            prop_assert_eq!(report.epoch, epoch);
            prop_assert_eq!(report.tail_dropped, 0);
            prop_assert_eq!(graph_fp(&reopened.graph()), graph_fp(&g));
            // Post-checkpoint stores keep committing and recovering.
            random_mutation(&mut g, &mut rng, rounds);
            reopened.commit(&g).map_err(|e| e.to_string())?;
            drop(reopened);
            let (again, _) = GraphStore::open(&path).map_err(|e| e.to_string())?;
            prop_assert_eq!(graph_fp(&again.graph()), graph_fp(&g));
            let _ = std::fs::remove_file(&path);
            Ok(())
        },
    );
}
