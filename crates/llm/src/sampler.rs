//! Decoding strategies over the model's distribution.

use crate::features::SparseFeatures;
use crate::model::{softmax, ApiLm};
use chatgraph_support::rng::{RngExt, SeedableRng};
use chatgraph_support::rng::ChaCha12Rng;

/// Sampling configuration (the LLM-side knobs of the paper's Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingConfig {
    /// Softmax temperature; 0 (or anything ≤ 0) means greedy argmax.
    pub temperature: f32,
    /// Restrict sampling to the `top_k` most likely tokens (0 = no limit).
    pub top_k: usize,
}

chatgraph_support::impl_json_struct!(SamplingConfig { temperature, top_k });

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            temperature: 0.8,
            top_k: 8,
        }
    }
}

/// A seeded token sampler.
#[derive(Debug, Clone)]
pub struct Sampler {
    config: SamplingConfig,
    rng: ChaCha12Rng,
}

impl Sampler {
    /// Creates a sampler with a seed.
    pub fn new(config: SamplingConfig, seed: u64) -> Self {
        Sampler {
            config,
            rng: ChaCha12Rng::seed_from_u64(seed),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SamplingConfig {
        &self.config
    }

    /// Samples the next token among `allowed` (all when empty).
    pub fn sample(&mut self, model: &ApiLm, x: &SparseFeatures, allowed: &[u32]) -> u32 {
        let pool_size = if self.config.top_k == 0 {
            usize::MAX
        } else {
            self.config.top_k
        };
        let pool = model.top_k(x, allowed, pool_size.min(model.vocab().len()));
        if pool.is_empty() {
            return model.vocab().eos();
        }
        if self.config.temperature <= 0.0 || pool.len() == 1 {
            return pool[0].0;
        }
        let logits: Vec<f32> = pool.iter().map(|&(_, l)| l).collect();
        let probs = softmax(&logits, self.config.temperature);
        let roll: f32 = self.rng.random();
        let mut acc = 0.0;
        for (i, p) in probs.iter().enumerate() {
            acc += p;
            if roll < acc {
                return pool[i].0;
            }
        }
        pool[pool.len() - 1].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocab;

    fn trained_model() -> (ApiLm, SparseFeatures) {
        let mut m = ApiLm::new(Vocab::new(["a", "b", "c"]), 8);
        let x = SparseFeatures([(1u32, 1.0f32)].into_iter().collect());
        for _ in 0..40 {
            m.train_step(&x, 2, 0.5, 1.0); // token "a"
        }
        (m, x)
    }

    #[test]
    fn greedy_picks_argmax() {
        let (m, x) = trained_model();
        let mut s = Sampler::new(SamplingConfig { temperature: 0.0, top_k: 0 }, 1);
        assert_eq!(s.sample(&m, &x, &[]), 2);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let (m, x) = trained_model();
        let cfg = SamplingConfig { temperature: 1.5, top_k: 0 };
        let mut s1 = Sampler::new(cfg.clone(), 9);
        let mut s2 = Sampler::new(cfg, 9);
        let seq1: Vec<u32> = (0..20).map(|_| s1.sample(&m, &x, &[])).collect();
        let seq2: Vec<u32> = (0..20).map(|_| s2.sample(&m, &x, &[])).collect();
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn high_temperature_explores() {
        let (m, x) = trained_model();
        let mut s = Sampler::new(SamplingConfig { temperature: 5.0, top_k: 0 }, 3);
        let distinct: std::collections::HashSet<u32> =
            (0..100).map(|_| s.sample(&m, &x, &[])).collect();
        assert!(distinct.len() >= 3, "expected exploration, got {distinct:?}");
    }

    #[test]
    fn allowed_set_is_respected() {
        let (m, x) = trained_model();
        let mut s = Sampler::new(SamplingConfig { temperature: 2.0, top_k: 0 }, 4);
        for _ in 0..50 {
            let t = s.sample(&m, &x, &[3, 4]);
            assert!(t == 3 || t == 4);
        }
    }

    #[test]
    fn empty_allowed_pool_falls_back_to_eos() {
        let (m, x) = trained_model();
        let mut s = Sampler::new(SamplingConfig::default(), 5);
        // top_k over an empty allowed list means "all tokens", so force the
        // edge case with an impossible restriction instead.
        let t = s.sample(&m, &x, &[]);
        assert!(t < m.vocab().len() as u32);
    }

    #[test]
    fn top_k_one_is_greedy() {
        let (m, x) = trained_model();
        let mut s = Sampler::new(SamplingConfig { temperature: 3.0, top_k: 1 }, 6);
        for _ in 0..10 {
            assert_eq!(s.sample(&m, &x, &[]), 2);
        }
    }
}
