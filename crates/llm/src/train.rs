//! The SGD training loop.

use crate::features::SparseFeatures;
use crate::model::ApiLm;
use chatgraph_support::rng::SliceRandom;
use chatgraph_support::rng::SeedableRng;
use chatgraph_support::rng::ChaCha12Rng;

/// One supervised next-token example.
#[derive(Debug, Clone)]
pub struct Example {
    /// Input features at this decoding step.
    pub features: SparseFeatures,
    /// Gold next token.
    pub target: u32,
    /// Example weight (1.0 unless the node matching-based loss reweights it).
    pub weight: f32,
}

/// Training hyper-parameters (exposed in the configuration panel, Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Learning rate.
    pub learning_rate: f32,
    /// Epochs over the example set.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
    /// Learning-rate decay multiplier per epoch.
    pub lr_decay: f32,
}

chatgraph_support::impl_json_struct!(TrainConfig {
    learning_rate,
    epochs,
    seed,
    lr_decay,
});

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.5,
            epochs: 8,
            seed: 17,
            lr_decay: 0.9,
        }
    }
}

/// Per-epoch training metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean cross-entropy loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Final-epoch next-token accuracy.
    pub final_accuracy: f64,
}

chatgraph_support::impl_json_struct!(TrainReport { epoch_losses, final_accuracy });

/// Trains `model` on `examples` with shuffled SGD.
pub fn train(model: &mut ApiLm, examples: &[Example], config: &TrainConfig) -> TrainReport {
    let mut rng = ChaCha12Rng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..examples.len()).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let mut lr = config.learning_rate;
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut total = 0.0f64;
        for &i in &order {
            let ex = &examples[i];
            total += model.train_step(&ex.features, ex.target, lr, ex.weight) as f64;
        }
        epoch_losses.push(if examples.is_empty() {
            0.0
        } else {
            total / examples.len() as f64
        });
        lr *= config.lr_decay;
    }
    let correct = examples
        .iter()
        .filter(|ex| model.top_k(&ex.features, &[], 1)[0].0 == ex.target)
        .count();
    TrainReport {
        epoch_losses,
        final_accuracy: if examples.is_empty() {
            0.0
        } else {
            correct as f64 / examples.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocab;

    fn toy_examples() -> Vec<Example> {
        // Feature i predicts token (i % 3) + 2 deterministically.
        (0..30u32)
            .map(|i| Example {
                features: SparseFeatures([(i % 6, 1.0f32)].into_iter().collect()),
                target: (i % 3) + 2,
                weight: 1.0,
            })
            .collect()
    }

    #[test]
    fn loss_decreases_and_accuracy_reaches_one() {
        let mut m = ApiLm::new(Vocab::new(["a", "b", "c"]), 8);
        let report = train(&mut m, &toy_examples(), &TrainConfig::default());
        assert_eq!(report.epoch_losses.len(), 8);
        assert!(report.epoch_losses[0] > *report.epoch_losses.last().unwrap());
        assert_eq!(report.final_accuracy, 1.0);
    }

    #[test]
    fn training_is_deterministic() {
        let run = || {
            let mut m = ApiLm::new(Vocab::new(["a", "b", "c"]), 8);
            train(&mut m, &toy_examples(), &TrainConfig::default())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_examples_are_benign() {
        let mut m = ApiLm::new(Vocab::new(["a"]), 8);
        let report = train(&mut m, &[], &TrainConfig::default());
        assert!(report.epoch_losses.iter().all(|&l| l == 0.0));
        assert_eq!(report.final_accuracy, 0.0);
    }

    #[test]
    fn zero_weight_examples_do_not_learn() {
        let mut m = ApiLm::new(Vocab::new(["a", "b", "c"]), 8);
        let examples: Vec<Example> = toy_examples()
            .into_iter()
            .map(|mut e| {
                e.weight = 0.0;
                e
            })
            .collect();
        let report = train(&mut m, &examples, &TrainConfig::default());
        // Uniform 5-way distribution forever.
        let expected = (5.0f64).ln();
        for l in report.epoch_losses {
            assert!((l - expected).abs() < 1e-5);
        }
    }
}
