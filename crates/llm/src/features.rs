//! Hashed feature extraction over (prompt, graph, partial chain).
//!
//! The "graph-aware" part of the graph-aware LLM: the sequentialiser's token
//! streams (both the base path cover and the super-graph paths, paper §II-B)
//! enter the feature space alongside the prompt text and the decoding state.

use chatgraph_embed::hashing::fnv1a;
use chatgraph_embed::tokenizer;
use chatgraph_graph::Graph;
use chatgraph_sequencer::{sequentialize, CoverParams};
use std::collections::BTreeMap;

/// Feature-space configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureConfig {
    /// Hashed feature dimensionality.
    pub dim: usize,
    /// Character n-gram size for prompt words (0 disables).
    pub char_ngram: usize,
    /// Path-cover length ℓ used when sequentialising graphs.
    pub cover_length: usize,
    /// Include super-graph (multi-level) sequences.
    pub multi_level: bool,
    /// Weight of the prompt-text feature group.
    pub prompt_weight: f32,
    /// Weight of the graph feature group.
    pub graph_weight: f32,
    /// Weight of the decoding-state feature group.
    pub state_weight: f32,
    /// Weight of the single graph-family hint feature.
    pub family_weight: f32,
}

chatgraph_support::impl_json_struct!(FeatureConfig {
    dim,
    char_ngram,
    cover_length,
    multi_level,
    prompt_weight,
    graph_weight,
    state_weight,
    family_weight,
});

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            dim: 4096,
            char_ngram: 3,
            cover_length: 2,
            multi_level: true,
            prompt_weight: 1.0,
            graph_weight: 0.5,
            state_weight: 2.0,
            family_weight: 1.0,
        }
    }
}

/// A sparse feature vector: `index → count`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseFeatures(pub BTreeMap<u32, f32>);

impl SparseFeatures {
    /// Number of distinct active features.
    pub fn nnz(&self) -> usize {
        self.0.len()
    }

    fn bump(&mut self, dim: usize, namespaced: &str) {
        let idx = (fnv1a(namespaced.as_bytes()) % dim as u64) as u32;
        *self.0.entry(idx).or_insert(0.0) += 1.0;
    }

    /// L2-normalises the counts so long prompts don't drown short ones.
    pub fn normalize(&mut self) {
        let norm: f32 = self.0.values().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            for v in self.0.values_mut() {
                *v /= norm;
            }
        }
    }

    /// Adds another sparse vector into this one, scaled by `scale`.
    pub fn merge_scaled(&mut self, other: &SparseFeatures, scale: f32) {
        for (&i, &v) in &other.0 {
            *self.0.entry(i).or_insert(0.0) += v * scale;
        }
    }

    /// Adds another sparse vector into this one.
    pub fn merge(&mut self, other: &SparseFeatures) {
        self.merge_scaled(other, 1.0);
    }
}

/// A label-histogram heuristic for the family of a graph. Cheap and local —
/// the authoritative classifier lives in the API layer; this hint only feeds
/// one model feature that disambiguates same-wording prompts attached to
/// different graph kinds ("write a report for G").
pub fn family_hint(graph: &Graph) -> &'static str {
    const ELEMENTS: &[&str] = &["C", "N", "O", "S", "P", "H", "F", "Cl", "Br"];
    let hist = graph.label_histogram();
    if hist.is_empty() {
        return "empty";
    }
    if graph.is_directed() {
        return "directed";
    }
    if hist.iter().all(|(l, _)| ELEMENTS.contains(&l.as_str())) {
        return "molecule";
    }
    if hist.iter().any(|(l, _)| l == "Person" || l == "User") {
        return "social";
    }
    "generic"
}

/// Extracts model features from the three prompt components.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    config: FeatureConfig,
}

chatgraph_support::impl_json_struct!(FeatureExtractor { config });

impl FeatureExtractor {
    /// Creates an extractor.
    pub fn new(config: FeatureConfig) -> Self {
        assert!(config.dim > 0, "feature dimension must be positive");
        FeatureExtractor { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }

    /// Prompt-text features (namespace `p:`).
    fn add_prompt(&self, out: &mut SparseFeatures, prompt: &str) {
        for f in tokenizer::features(prompt, self.config.char_ngram) {
            out.bump(self.config.dim, &format!("p:{f}"));
        }
    }

    /// Graph features (namespaces `g:` for tokens, `g2:` for token bigrams,
    /// `s:` for super-graph tokens).
    fn add_graph(&self, out: &mut SparseFeatures, graph: &Graph) {
        let params = CoverParams {
            max_length: self.config.cover_length,
            dedup_singletons: true,
        };
        let seqs = sequentialize(graph, &params, self.config.multi_level);
        for seq in &seqs.base {
            for t in &seq[1..] {
                out.bump(self.config.dim, &format!("g:{t}"));
            }
            for w in seq[1..].windows(2) {
                out.bump(self.config.dim, &format!("g2:{}_{}", w[0], w[1]));
            }
        }
        for seq in &seqs.multi_level {
            for t in &seq[1..] {
                out.bump(self.config.dim, &format!("s:{t}"));
            }
        }
    }

    /// Decoding-state features (namespaces `c1:`, `c2:`, `used:`, `pos:`).
    fn add_chain_state(&self, out: &mut SparseFeatures, partial_chain: &[String]) {
        let last = partial_chain.last().map(String::as_str).unwrap_or("[BOS]");
        out.bump(self.config.dim, &format!("c1:{last}"));
        if partial_chain.len() >= 2 {
            out.bump(
                self.config.dim,
                &format!(
                    "c2:{}_{}",
                    partial_chain[partial_chain.len() - 2],
                    last
                ),
            );
        }
        for api in partial_chain {
            out.bump(self.config.dim, &format!("used:{api}"));
        }
        out.bump(self.config.dim, &format!("pos:{}", partial_chain.len().min(8)));
    }

    /// Precomputes the (expensive) prompt + graph features once per question.
    /// Sequentialising the graph dominates extraction cost, and rollout-based
    /// prediction evaluates hundreds of steps per question, so this cache is
    /// what makes finetuning fast.
    ///
    /// Each feature *group* (prompt, graph) is L2-normalised independently
    /// before merging: a large graph emits hundreds of path tokens, and
    /// without per-group normalisation they drown the handful of prompt and
    /// decoding-state features that actually decide the next API.
    pub fn context(&self, prompt: &str, graph: Option<&Graph>) -> SparseFeatures {
        let mut prompt_group = SparseFeatures::default();
        self.add_prompt(&mut prompt_group, prompt);
        prompt_group.normalize();
        let mut out = SparseFeatures::default();
        out.merge_scaled(&prompt_group, self.config.prompt_weight);
        if let Some(g) = graph {
            let mut graph_group = SparseFeatures::default();
            self.add_graph(&mut graph_group, g);
            graph_group.normalize();
            out.merge_scaled(&graph_group, self.config.graph_weight);
            let mut hint = SparseFeatures::default();
            hint.bump(self.config.dim, &format!("fam:{}", family_hint(g)));
            out.merge_scaled(&hint, self.config.family_weight);
        }
        out
    }

    /// Merges a cached context with the (independently normalised) decoding
    /// state.
    pub fn step(&self, context: &SparseFeatures, partial_chain: &[String]) -> SparseFeatures {
        let mut state = SparseFeatures::default();
        self.add_chain_state(&mut state, partial_chain);
        state.normalize();
        let mut out = context.clone();
        out.merge_scaled(&state, self.config.state_weight);
        out
    }

    /// Full feature vector for one decoding step (uncached convenience).
    pub fn extract(
        &self,
        prompt: &str,
        graph: Option<&Graph>,
        partial_chain: &[String],
    ) -> SparseFeatures {
        self.step(&self.context(prompt, graph), partial_chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatgraph_graph::generators::{molecule, social_network, MoleculeParams, SocialParams};

    fn extractor() -> FeatureExtractor {
        FeatureExtractor::new(FeatureConfig::default())
    }

    #[test]
    fn deterministic_and_group_normalised() {
        let e = extractor();
        let g = molecule(&MoleculeParams::default(), 1);
        let a = e.extract("report please", Some(&g), &[]);
        let b = e.extract("report please", Some(&g), &[]);
        assert_eq!(a, b);
        // Three weighted unit-norm groups merged: total norm is bounded by
        // the sum of the group weights.
        let cfg = e.config();
        let bound =
            cfg.prompt_weight + cfg.graph_weight + cfg.state_weight + cfg.family_weight;
        let norm: f32 = a.0.values().map(|v| v * v).sum::<f32>().sqrt();
        assert!(norm > 1.0 && norm <= bound, "norm {norm}");
    }

    #[test]
    fn groups_contribute_comparable_mass() {
        let e = extractor();
        let g = social_network(&SocialParams::default(), 3);
        let ctx = e.context("question", Some(&g));
        // Groups of norm prompt_weight, graph_weight and family_weight.
        let cfg = e.config();
        let expected = (cfg.prompt_weight.powi(2)
            + cfg.graph_weight.powi(2)
            + cfg.family_weight.powi(2))
        .sqrt();
        let norm: f32 = ctx.0.values().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - expected).abs() < 0.4, "norm {norm} vs {expected}");
    }

    #[test]
    fn different_graph_families_yield_different_features() {
        let e = extractor();
        let mol = molecule(&MoleculeParams::default(), 1);
        let soc = social_network(&SocialParams::default(), 1);
        let fa = e.extract("analyse this", Some(&mol), &[]);
        let fb = e.extract("analyse this", Some(&soc), &[]);
        assert_ne!(fa, fb);
    }

    #[test]
    fn chain_state_changes_features() {
        let e = extractor();
        let f0 = e.extract("q", None, &[]);
        let f1 = e.extract("q", None, &["detect_communities".to_owned()]);
        assert_ne!(f0, f1);
    }

    #[test]
    fn no_graph_is_supported() {
        let e = extractor();
        let f = e.extract("just text", None, &[]);
        assert!(f.nnz() > 0);
    }

    #[test]
    fn multi_level_adds_features_on_clustered_graphs() {
        let cfg = FeatureConfig { multi_level: false, ..Default::default() };
        let single = FeatureExtractor::new(cfg);
        let multi = extractor();
        let g = social_network(&SocialParams::default(), 2);
        let fs = single.extract("q", Some(&g), &[]);
        let fm = multi.extract("q", Some(&g), &[]);
        assert!(fm.nnz() >= fs.nnz());
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        FeatureExtractor::new(FeatureConfig { dim: 0, ..Default::default() });
    }
}
