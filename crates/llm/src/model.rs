//! The next-API-token model.
//!
//! A multinomial logistic regression over the hashed feature space: one
//! weight row per vocabulary token. This is the trainable core the
//! finetuning module updates — the same interface a finetuned neural LM
//! would expose (contextual logits over the API vocabulary), in a form that
//! trains in milliseconds and is fully deterministic.

use crate::features::SparseFeatures;
use crate::vocab::Vocab;

/// The trainable API language model.
#[derive(Debug, Clone)]
pub struct ApiLm {
    vocab: Vocab,
    dim: usize,
    /// Row-major weights: `weights[token * dim + feature]`.
    weights: Vec<f32>,
}

chatgraph_support::impl_json_struct!(ApiLm { vocab, dim, weights });

impl ApiLm {
    /// A zero-initialised model.
    pub fn new(vocab: Vocab, dim: usize) -> Self {
        assert!(dim > 0);
        let v = vocab.len();
        ApiLm {
            vocab,
            dim,
            weights: vec![0.0; v * dim],
        }
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Rebuilds the vocabulary's lookup index after deserialisation (the
    /// index is not serialised).
    pub fn reindex_vocab(&mut self) {
        self.vocab.reindex();
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Raw logit of one token for a feature vector.
    pub fn logit(&self, token: u32, x: &SparseFeatures) -> f32 {
        let row = token as usize * self.dim;
        x.0.iter()
            .map(|(&i, &v)| self.weights[row + i as usize] * v)
            .sum()
    }

    /// Logits over the whole vocabulary.
    pub fn logits(&self, x: &SparseFeatures) -> Vec<f32> {
        (0..self.vocab.len() as u32).map(|t| self.logit(t, x)).collect()
    }

    /// Softmax distribution over the whole vocabulary at `temperature`.
    pub fn distribution(&self, x: &SparseFeatures, temperature: f32) -> Vec<f32> {
        softmax(&self.logits(x), temperature)
    }

    /// One SGD step of softmax cross-entropy towards `target`, scaled by
    /// `weight` (the node matching-based loss enters through this weight).
    /// Returns the example's cross-entropy loss before the update.
    pub fn train_step(&mut self, x: &SparseFeatures, target: u32, lr: f32, weight: f32) -> f32 {
        let probs = self.distribution(x, 1.0);
        let loss = -probs[target as usize].max(1e-9).ln();
        for t in 0..self.vocab.len() as u32 {
            let grad_coeff = if t == target {
                probs[t as usize] - 1.0
            } else {
                probs[t as usize]
            };
            if grad_coeff == 0.0 {
                continue;
            }
            let row = t as usize * self.dim;
            for (&i, &v) in &x.0 {
                self.weights[row + i as usize] -= lr * weight * grad_coeff * v;
            }
        }
        loss
    }

    /// The `k` highest-logit tokens restricted to `allowed` (all tokens when
    /// `allowed` is empty), descending.
    pub fn top_k(&self, x: &SparseFeatures, allowed: &[u32], k: usize) -> Vec<(u32, f32)> {
        let logits = self.logits(x);
        let mut scored: Vec<(u32, f32)> = if allowed.is_empty() {
            logits.iter().enumerate().map(|(i, &l)| (i as u32, l)).collect()
        } else {
            allowed.iter().map(|&t| (t, logits[t as usize])).collect()
        };
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }
}

/// Numerically stable softmax with temperature.
pub fn softmax(logits: &[f32], temperature: f32) -> Vec<f32> {
    let t = temperature.max(1e-4);
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| ((l - max) / t).exp()).collect();
    let sum: f32 = exps.iter().sum();
    if sum == 0.0 || !sum.is_finite() {
        vec![1.0 / logits.len().max(1) as f32; logits.len()]
    } else {
        exps.into_iter().map(|e| e / sum).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xvec(pairs: &[(u32, f32)]) -> SparseFeatures {
        SparseFeatures(pairs.iter().copied().collect())
    }

    fn model() -> ApiLm {
        ApiLm::new(Vocab::new(["a", "b", "c"]), 16)
    }

    #[test]
    fn zero_model_is_uniform() {
        let m = model();
        let d = m.distribution(&xvec(&[(0, 1.0)]), 1.0);
        assert_eq!(d.len(), 5);
        for p in &d {
            assert!((p - 0.2).abs() < 1e-6);
        }
    }

    #[test]
    fn training_moves_probability_to_target() {
        let mut m = model();
        let x = xvec(&[(1, 1.0), (3, 0.5)]);
        let target = m.vocab().id("b").unwrap();
        let before = m.distribution(&x, 1.0)[target as usize];
        let mut last_loss = f32::INFINITY;
        for _ in 0..50 {
            let loss = m.train_step(&x, target, 0.5, 1.0);
            assert!(loss <= last_loss + 1e-4, "loss should not increase");
            last_loss = loss;
        }
        let after = m.distribution(&x, 1.0)[target as usize];
        assert!(after > 0.9, "{before} -> {after}");
    }

    #[test]
    fn weight_zero_is_noop() {
        let mut m = model();
        let x = xvec(&[(0, 1.0)]);
        let w0 = m.weights.clone();
        m.train_step(&x, 2, 0.5, 0.0);
        assert_eq!(m.weights, w0);
    }

    #[test]
    fn top_k_respects_allowed_set() {
        let mut m = model();
        let x = xvec(&[(2, 1.0)]);
        // Teach token 'c' (id 4) hard.
        for _ in 0..30 {
            m.train_step(&x, 4, 0.5, 1.0);
        }
        let all = m.top_k(&x, &[], 1);
        assert_eq!(all[0].0, 4);
        let constrained = m.top_k(&x, &[2, 3], 2);
        assert_eq!(constrained.len(), 2);
        assert!(constrained.iter().all(|&(t, _)| t == 2 || t == 3));
    }

    #[test]
    fn softmax_temperature_sharpens_and_flattens() {
        let logits = vec![1.0, 2.0, 3.0];
        let sharp = softmax(&logits, 0.2);
        let flat = softmax(&logits, 5.0);
        assert!(sharp[2] > flat[2]);
        let sum: f32 = sharp.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn json_roundtrip_preserves_predictions() {
        let mut m = model();
        let x = xvec(&[(5, 1.0)]);
        for _ in 0..10 {
            m.train_step(&x, 3, 0.5, 1.0);
        }
        let s = chatgraph_support::json::to_string(&m);
        let mut back: ApiLm = chatgraph_support::json::from_str(&s).unwrap();
        back.vocab.reindex();
        assert_eq!(m.logits(&x), back.logits(&x));
    }
}
