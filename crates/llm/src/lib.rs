//! # chatgraph-llm
//!
//! The simulated **graph-aware LLM** substrate (paper §II-B, §III).
//!
//! The paper backs ChatGraph with ChatGLM/MOSS/Vicuna downloaded from
//! HuggingFace. Those GPU-scale models are unavailable offline, and the only
//! behaviour ChatGraph observes from its LLM is: *given the user's text, the
//! sequentialised graph, and the partial API chain, score the next API
//! token*. This crate reproduces exactly that interface with a trainable
//! model that runs anywhere:
//!
//! * [`vocab`] — the API-token vocabulary (API names + `[BOS]`/`[EOS]`).
//! * [`features`] — deterministic hashed features over the prompt text, the
//!   graph sequentialiser's token streams (both levels), and the partial
//!   chain.
//! * [`model`] — a multinomial logistic next-token model over that feature
//!   space, trained by SGD (this is what "finetuning" updates).
//! * [`sampler`] — greedy / temperature / top-k decoding.
//! * [`mod@train`] — the SGD loop with shuffling, loss tracking, and
//!   example-weighting hooks used by the node matching-based loss.
//!
//! Everything is seeded and deterministic, so finetuning experiments (E8)
//! reproduce bit-for-bit.

pub mod features;
pub mod model;
pub mod sampler;
pub mod train;
pub mod vocab;

pub use features::{FeatureConfig, FeatureExtractor, SparseFeatures};
pub use model::ApiLm;
pub use sampler::{Sampler, SamplingConfig};
pub use train::{train, Example, TrainConfig, TrainReport};
pub use vocab::{Vocab, BOS, EOS};
