//! The API-token vocabulary.

use chatgraph_support::json::{FromJson, Json, JsonError, ToJson};
use std::collections::HashMap;

/// Beginning-of-chain token.
pub const BOS: &str = "[BOS]";
/// End-of-chain token.
pub const EOS: &str = "[EOS]";

/// A fixed token vocabulary: the registered API names plus the two special
/// tokens. Token 0 is always `[BOS]`, token 1 always `[EOS]`.
#[derive(Debug, Clone)]
pub struct Vocab {
    tokens: Vec<String>,
    /// Derived lookup table; skipped on the wire (rebuild via
    /// [`Vocab::reindex`] after decoding), matching the former
    /// `#[serde(skip)]`.
    index: HashMap<String, u32>,
}

impl ToJson for Vocab {
    fn to_json(&self) -> Json {
        Json::Object(vec![("tokens".to_owned(), self.tokens.to_json())])
    }
}

impl FromJson for Vocab {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let tokens = Vec::from_json(
            v.get("tokens")
                .ok_or_else(|| JsonError::missing_field("Vocab", "tokens"))?,
        )?;
        Ok(Vocab {
            tokens,
            index: HashMap::new(),
        })
    }
}

impl Vocab {
    /// Builds a vocabulary from API names. Order is preserved; duplicates
    /// are rejected.
    pub fn new<I, S>(api_names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut tokens = vec![BOS.to_owned(), EOS.to_owned()];
        tokens.extend(api_names.into_iter().map(Into::into));
        let mut index = HashMap::with_capacity(tokens.len());
        for (i, t) in tokens.iter().enumerate() {
            let prev = index.insert(t.clone(), i as u32);
            assert!(prev.is_none(), "duplicate vocabulary token: {t}");
        }
        Vocab { tokens, index }
    }

    /// Rebuilds the lookup index after deserialisation.
    pub fn reindex(&mut self) {
        self.index = self
            .tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();
    }

    /// Vocabulary size (including specials).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when only the special tokens exist.
    pub fn is_empty(&self) -> bool {
        self.tokens.len() <= 2
    }

    /// Token id of `token`, if present.
    pub fn id(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// Token string for an id.
    pub fn token(&self, id: u32) -> Option<&str> {
        self.tokens.get(id as usize).map(String::as_str)
    }

    /// The id of `[BOS]`.
    pub fn bos(&self) -> u32 {
        0
    }

    /// The id of `[EOS]`.
    pub fn eos(&self) -> u32 {
        1
    }

    /// Ids of all non-special tokens (the actual APIs).
    pub fn api_ids(&self) -> impl Iterator<Item = u32> + '_ {
        (2..self.tokens.len() as u32).filter(move |_| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_are_fixed() {
        let v = Vocab::new(["alpha", "beta"]);
        assert_eq!(v.len(), 4);
        assert_eq!(v.token(v.bos()), Some(BOS));
        assert_eq!(v.token(v.eos()), Some(EOS));
        assert_eq!(v.id("alpha"), Some(2));
        assert_eq!(v.id("nope"), None);
    }

    #[test]
    fn api_ids_exclude_specials() {
        let v = Vocab::new(["a", "b", "c"]);
        let ids: Vec<u32> = v.api_ids().collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "duplicate vocabulary token")]
    fn duplicates_rejected() {
        Vocab::new(["a", "a"]);
    }

    #[test]
    fn json_roundtrip_with_reindex() {
        let v = Vocab::new(["x", "y"]);
        let s = chatgraph_support::json::to_string(&v);
        let mut back: Vocab = chatgraph_support::json::from_str(&s).unwrap();
        back.reindex();
        assert_eq!(back.id("y"), Some(3));
        assert_eq!(back.len(), v.len());
    }
}
