//! Property-based tests for the simulated LLM's training dynamics.

use chatgraph_llm::{train, ApiLm, Example, SparseFeatures, TrainConfig, Vocab};
use chatgraph_support::prop::{check, Config};
use chatgraph_support::rng::RngExt;
use chatgraph_support::{prop_assert, prop_assert_eq};

fn features(ids: Vec<u32>, dim: u32) -> SparseFeatures {
    SparseFeatures(ids.into_iter().map(|i| (i % dim, 1.0f32)).collect())
}

/// On separable data (each feature id determines the label), training
/// reaches perfect accuracy and loss decreases monotonically per epoch
/// (up to small SGD noise).
#[test]
fn separable_data_is_learned() {
    check(
        "separable_data_is_learned",
        Config::default().with_cases(48),
        |rng, _size| {
            (
                rng.random_range(2usize..6),
                rng.random_range(6usize..30),
                rng.random_range(0u64..500),
            )
        },
        |&(n_tokens, n_examples, seed)| {
            let vocab = Vocab::new((0..n_tokens).map(|i| format!("api{i}")));
            let dim = 64u32;
            let examples: Vec<Example> = (0..n_examples)
                .map(|i| Example {
                    // feature i (one per example cluster) → token i % n_tokens
                    features: features(vec![i as u32 % 8], dim),
                    target: (i % n_tokens) as u32 + 2,
                    weight: 1.0,
                })
                .collect();
            // Labels must be a function of features for separability: dedupe by
            // feature id, keeping the first label.
            let mut seen = std::collections::HashMap::new();
            let examples: Vec<Example> = examples
                .into_iter()
                .filter(|e| {
                    let key = e.features.0.keys().copied().collect::<Vec<_>>();
                    *seen.entry(key).or_insert(e.target) == e.target
                })
                .collect();
            let mut model = ApiLm::new(vocab, dim as usize);
            let report = train(
                &mut model,
                &examples,
                &TrainConfig {
                    epochs: 20,
                    seed,
                    ..TrainConfig::default()
                },
            );
            prop_assert_eq!(report.final_accuracy, 1.0);
            let first = report.epoch_losses.first().copied().unwrap_or(0.0);
            let last = report.epoch_losses.last().copied().unwrap_or(0.0);
            prop_assert!(
                last <= first + 1e-9,
                "loss must not grow: {first} -> {last}"
            );
            Ok(())
        },
    );
}

/// Distribution outputs are valid probability vectors at any temperature.
#[test]
fn distributions_are_probabilities() {
    check(
        "distributions_are_probabilities",
        Config::default().with_cases(48),
        |rng, _size| {
            (
                rng.random_range(0u64..100),
                rng.random_range(0.01f32..5.0),
            )
        },
        |&(weights_seed, temp)| {
            let vocab = Vocab::new(["a", "b", "c"]);
            let mut model = ApiLm::new(vocab, 16);
            // Pseudo-train with arbitrary data to get non-trivial weights.
            let x = features(vec![weights_seed as u32 % 16], 16);
            model.train_step(&x, 2, 0.7, 1.0);
            model.train_step(&x, 3, 0.7, 1.0);
            let d = model.distribution(&x, temp);
            let sum: f32 = d.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
            prop_assert!(d.iter().all(|p| (0.0..=1.0).contains(p)));
            Ok(())
        },
    );
}

/// Example weights scale gradients linearly: training with weight w is
/// the same as taking a step with lr·w.
#[test]
fn weights_equal_lr_scaling() {
    check(
        "weights_equal_lr_scaling",
        Config::default().with_cases(48),
        |rng, _size| rng.random_range(0.1f32..2.0),
        |&w| {
            let vocab = Vocab::new(["a", "b"]);
            let x = features(vec![3], 16);
            let mut m1 = ApiLm::new(vocab.clone(), 16);
            let mut m2 = ApiLm::new(vocab, 16);
            m1.train_step(&x, 2, 0.5 * w, 1.0);
            m2.train_step(&x, 2, 0.5, w);
            let l1 = m1.logits(&x);
            let l2 = m2.logits(&x);
            for (a, b) in l1.iter().zip(&l2) {
                prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
            Ok(())
        },
    );
}

/// Training order is randomised by seed but the *result* is identical for
/// identical seeds and differs (almost surely) across seeds.
#[test]
fn seeds_control_shuffling() {
    let vocab = Vocab::new(["a", "b", "c"]);
    let examples: Vec<Example> = (0..20)
        .map(|i| Example {
            features: features(vec![i, i + 1], 32),
            target: (i % 3) + 2,
            weight: 1.0,
        })
        .collect();
    let run = |seed| {
        let mut m = ApiLm::new(vocab.clone(), 32);
        train(
            &mut m,
            &examples,
            &TrainConfig {
                epochs: 2,
                seed,
                ..TrainConfig::default()
            },
        )
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2));
}
