//! The labelled property graph.
//!
//! Design notes:
//!
//! * **Stable ids with tombstones.** Graph-edit APIs (scenario 3 of the paper,
//!   "Chat-based Graph Cleaning") mutate a graph *while* an API chain is
//!   executing and holding node/edge ids. Removal therefore tombstones slots
//!   instead of shifting ids; [`Graph::compact`] rebuilds a dense graph when a
//!   caller wants one.
//! * **Directed and undirected** graphs share one type: molecules and social
//!   networks are undirected, knowledge graphs are directed. Algorithms query
//!   [`Graph::is_directed`] where it matters.
//! * **Parallel edges and self-loops are rejected** — none of the paper's
//!   graph families need them, and forbidding them keeps edit-distance costs
//!   well-defined.

use crate::attr::{AttrValue, Attrs};
use std::fmt;

/// Index of a node in a [`Graph`]. Stable across removals of other elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Index of an edge in a [`Graph`]. Stable across removals of other elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Whether edges are ordered pairs or unordered pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Edges are ordered `(src, dst)` pairs (knowledge graphs).
    Directed,
    /// Edges are unordered pairs (molecules, social networks).
    Undirected,
}

/// Errors raised by graph mutation and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The node id does not exist or has been removed.
    NodeNotFound(NodeId),
    /// The edge id does not exist or has been removed.
    EdgeNotFound(EdgeId),
    /// An edge between the two endpoints already exists.
    DuplicateEdge(NodeId, NodeId),
    /// Self-loops are not supported.
    SelfLoop(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeNotFound(v) => write!(f, "node {v} not found"),
            GraphError::EdgeNotFound(e) => write!(f, "edge {e} not found"),
            GraphError::DuplicateEdge(u, v) => write!(f, "edge ({u}, {v}) already exists"),
            GraphError::SelfLoop(v) => write!(f, "self-loop at {v} not supported"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Capacity of the structural-edit journal. Past this many retained edits
/// the oldest are dropped; delta snapshots against ancestors older than the
/// window fall back to the scan diff (and typically a full rebuild), which
/// is the right call anyway — that many edits touch too many rows to splice.
const JOURNAL_CAP: usize = 4096;

/// Process-global stamp source for journal entries. Stamps only need to be
/// unique, not ordered or dense: ancestry is decided by *finding* a stamp
/// in a journal, never by comparing magnitudes.
// lockdoc: recover(a lone atomic counter; fetch_add cannot be torn or deadlock)
static EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn fresh_stamp() -> u64 {
    EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// One structural mutation, as the CSR delta-splicer needs to see it:
/// which rows it touches. Label and attribute edits are not structural —
/// the CSR carries neither.
#[derive(Debug, Clone, Copy)]
pub(crate) enum StructEdit {
    /// A node slot was appended (ids are never reused, so the id always
    /// equals the pre-edit node bound).
    AddNode(NodeId),
    /// A node was tombstoned — an edit the delta path declines, because the
    /// dense remap of every later node shifts (which node doesn't matter).
    RemoveNode,
    /// An edge was added between the two endpoints.
    AddEdge(NodeId, NodeId),
    /// An edge between the two endpoints was tombstoned.
    RemoveEdge(NodeId, NodeId),
}

/// A capped log of recent structural edits, stamped with process-globally
/// unique ids. Cloning a graph clones its journal, so a derived graph's
/// journal contains its ancestor's tip stamp — finding that stamp proves
/// ancestry (stamps are never reissued) and the entries after it are
/// exactly the edits separating the two graphs. This is what lets
/// [`crate::csr::CsrGraph::build_delta`] compute the touched-row set in
/// O(edits) instead of re-scanning every node and edge slot.
#[derive(Debug, Clone)]
pub(crate) struct Journal {
    /// Stamp of the last structural mutation (or of creation /
    /// deserialisation — fresh graphs get a unique tip so two unrelated
    /// graphs can never look like ancestors).
    tip: u64,
    edits: std::collections::VecDeque<(u64, StructEdit)>,
}

impl Journal {
    fn fresh() -> Journal {
        Journal { tip: fresh_stamp(), edits: std::collections::VecDeque::new() }
    }

    fn record(&mut self, edit: StructEdit) {
        let stamp = fresh_stamp();
        self.tip = stamp;
        self.edits.push_back((stamp, edit));
        if self.edits.len() > JOURNAL_CAP {
            self.edits.pop_front();
        }
    }

    /// The stamp identifying this graph's current structural state.
    pub(crate) fn tip(&self) -> u64 {
        self.tip
    }

    /// The edits separating the state stamped `ancestor_tip` from this
    /// state, oldest first — or `None` when `ancestor_tip` is not in the
    /// retained window (not an ancestor, or too many edits ago).
    pub(crate) fn edits_since(&self, ancestor_tip: u64) -> Option<Vec<StructEdit>> {
        if ancestor_tip == self.tip {
            return Some(Vec::new());
        }
        let pos = self.edits.iter().position(|&(s, _)| s == ancestor_tip)?;
        Some(self.edits.iter().skip(pos + 1).map(|&(_, e)| e).collect())
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct NodeSlot {
    pub(crate) label: String,
    pub(crate) attrs: Attrs,
    pub(crate) removed: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EdgeSlot {
    pub(crate) src: NodeId,
    pub(crate) dst: NodeId,
    pub(crate) label: String,
    pub(crate) attrs: Attrs,
    pub(crate) removed: bool,
}

/// A labelled, attributed property graph.
///
/// ```
/// use chatgraph_graph::{Graph, Direction};
///
/// let mut g = Graph::new(Direction::Undirected);
/// let a = g.add_node("C");
/// let b = g.add_node("O");
/// let e = g.add_edge(a, b, "double").unwrap();
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.edge_label(e).unwrap(), "double");
/// assert!(g.has_edge(a, b));
/// assert!(g.has_edge(b, a)); // undirected
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    direction: Direction,
    /// A free-form graph name, surfaced in chat transcripts ("G", "aspirin", …).
    name: String,
    nodes: Vec<NodeSlot>,
    edges: Vec<EdgeSlot>,
    /// Outgoing adjacency. For undirected graphs each edge appears in both
    /// endpoints' lists.
    out_adj: Vec<Vec<(NodeId, EdgeId)>>,
    /// Incoming adjacency; maintained only for directed graphs.
    in_adj: Vec<Vec<(NodeId, EdgeId)>>,
    live_nodes: usize,
    live_edges: usize,
    /// Recent structural edits (excluded from equality and serialisation —
    /// a cache acceleration, not graph content).
    journal: Journal,
}

/// Equality is over graph *content*; the journal is lineage metadata and
/// two equal graphs may well have disjoint histories.
impl PartialEq for Graph {
    fn eq(&self, other: &Graph) -> bool {
        self.direction == other.direction
            && self.name == other.name
            && self.nodes == other.nodes
            && self.edges == other.edges
            && self.out_adj == other.out_adj
            && self.in_adj == other.in_adj
            && self.live_nodes == other.live_nodes
            && self.live_edges == other.live_edges
    }
}

chatgraph_support::impl_json_newtype!(NodeId);
chatgraph_support::impl_json_newtype!(EdgeId);
chatgraph_support::impl_json_enum_unit!(Direction { Directed, Undirected });
chatgraph_support::impl_json_struct!(NodeSlot { label, attrs, removed });
chatgraph_support::impl_json_struct!(EdgeSlot { src, dst, label, attrs, removed });
// Hand-written (rather than `impl_json_struct!`) so the journal stays off
// the wire: the format is unchanged from before the journal existed, and a
// decoded graph starts with a fresh journal — its first delta snapshot
// falls back to the scan diff, exactly like any graph of unknown lineage.
impl chatgraph_support::json::ToJson for Graph {
    fn to_json(&self) -> chatgraph_support::json::Json {
        use chatgraph_support::json::Json;
        Json::Object(vec![
            ("direction".to_owned(), self.direction.to_json()),
            ("name".to_owned(), self.name.to_json()),
            ("nodes".to_owned(), self.nodes.to_json()),
            ("edges".to_owned(), self.edges.to_json()),
            ("out_adj".to_owned(), self.out_adj.to_json()),
            ("in_adj".to_owned(), self.in_adj.to_json()),
            ("live_nodes".to_owned(), self.live_nodes.to_json()),
            ("live_edges".to_owned(), self.live_edges.to_json()),
        ])
    }
}

impl chatgraph_support::json::FromJson for Graph {
    fn from_json(
        v: &chatgraph_support::json::Json,
    ) -> Result<Self, chatgraph_support::json::JsonError> {
        use chatgraph_support::json::{FromJson, JsonError};
        if v.as_object().is_none() {
            return Err(JsonError::expected("object", v));
        }
        let field = |name: &str| {
            v.get(name).ok_or_else(|| JsonError::missing_field("Graph", name))
        };
        Ok(Graph {
            direction: FromJson::from_json(field("direction")?)?,
            name: FromJson::from_json(field("name")?)?,
            nodes: FromJson::from_json(field("nodes")?)?,
            edges: FromJson::from_json(field("edges")?)?,
            out_adj: FromJson::from_json(field("out_adj")?)?,
            in_adj: FromJson::from_json(field("in_adj")?)?,
            live_nodes: FromJson::from_json(field("live_nodes")?)?,
            live_edges: FromJson::from_json(field("live_edges")?)?,
            journal: Journal::fresh(),
        })
    }
}

impl Graph {
    /// Creates an empty graph.
    pub fn new(direction: Direction) -> Self {
        Graph {
            direction,
            name: "G".to_owned(),
            nodes: Vec::new(),
            edges: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
            live_nodes: 0,
            live_edges: 0,
            journal: Journal::fresh(),
        }
    }

    /// The structural-edit journal (for the CSR delta-splicer).
    pub(crate) fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Every node slot ever allocated, tombstones included (for the
    /// slot-exact delta/image codec in [`crate::delta`]).
    pub(crate) fn node_slots(&self) -> &[NodeSlot] {
        &self.nodes
    }

    /// Every edge slot ever allocated, tombstones included.
    pub(crate) fn edge_slots(&self) -> &[EdgeSlot] {
        &self.edges
    }

    /// Rebuilds a graph from raw slot arrays, tombstones and all.
    ///
    /// Adjacency is reconstructed by walking live edges in id order, which
    /// is exactly the order incremental mutation leaves the lists in: every
    /// insertion appends a strictly larger edge id and removals preserve
    /// relative order, so a mutated graph's adjacency is always the live
    /// incident edges sorted by edge id. A slot-replayed graph is therefore
    /// `==` to the incrementally mutated original, adjacency included.
    ///
    /// Callers must have validated edge endpoints against the node slots;
    /// out-of-range endpoints here are a codec bug, not user input.
    pub(crate) fn from_slots(
        direction: Direction,
        name: String,
        nodes: Vec<NodeSlot>,
        edges: Vec<EdgeSlot>,
    ) -> Graph {
        let mut out_adj: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); nodes.len()];
        let mut in_adj: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); nodes.len()];
        let mut live_edges = 0usize;
        for (i, e) in edges.iter().enumerate() {
            if e.removed {
                continue;
            }
            let id = EdgeId(i as u32);
            out_adj[e.src.index()].push((e.dst, id));
            if direction == Direction::Directed {
                in_adj[e.dst.index()].push((e.src, id));
            } else {
                out_adj[e.dst.index()].push((e.src, id));
            }
            live_edges += 1;
        }
        let live_nodes = nodes.iter().filter(|n| !n.removed).count();
        Graph {
            direction,
            name,
            nodes,
            edges,
            out_adj,
            in_adj,
            live_nodes,
            live_edges,
            journal: Journal::fresh(),
        }
    }

    /// Creates an empty undirected graph.
    pub fn undirected() -> Self {
        Graph::new(Direction::Undirected)
    }

    /// Creates an empty directed graph.
    pub fn directed() -> Self {
        Graph::new(Direction::Directed)
    }

    /// Whether edges are directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.direction == Direction::Directed
    }

    /// The graph's direction mode.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The graph's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the graph's display name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of live (non-removed) nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live (non-removed) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Upper bound (exclusive) on node ids ever allocated, including removed
    /// slots. Useful for sizing per-node scratch arrays.
    #[inline]
    pub fn node_bound(&self) -> usize {
        self.nodes.len()
    }

    /// Upper bound (exclusive) on edge ids ever allocated, including removed
    /// slots.
    #[inline]
    pub fn edge_bound(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph has no live nodes.
    pub fn is_empty(&self) -> bool {
        self.live_nodes == 0
    }

    /// Adds a node with the given label and no attributes.
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        self.add_node_with_attrs(label, Attrs::new())
    }

    /// Adds a node with the given label and attributes.
    pub fn add_node_with_attrs(&mut self, label: impl Into<String>, attrs: Attrs) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot {
            label: label.into(),
            attrs,
            removed: false,
        });
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        self.live_nodes += 1;
        self.journal.record(StructEdit::AddNode(id));
        id
    }

    /// True if `id` refers to a live node.
    #[inline]
    pub fn contains_node(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).is_some_and(|n| !n.removed)
    }

    /// True if `id` refers to a live edge.
    #[inline]
    pub fn contains_edge(&self, id: EdgeId) -> bool {
        self.edges.get(id.index()).is_some_and(|e| !e.removed)
    }

    fn check_node(&self, id: NodeId) -> Result<(), GraphError> {
        if self.contains_node(id) {
            Ok(())
        } else {
            Err(GraphError::NodeNotFound(id))
        }
    }

    /// Adds an edge with the given label and no attributes.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        label: impl Into<String>,
    ) -> Result<EdgeId, GraphError> {
        self.add_edge_with_attrs(src, dst, label, Attrs::new())
    }

    /// Adds an edge with the given label and attributes.
    ///
    /// Returns [`GraphError::DuplicateEdge`] if an edge between the endpoints
    /// already exists (in the same direction, for directed graphs) and
    /// [`GraphError::SelfLoop`] if `src == dst`.
    pub fn add_edge_with_attrs(
        &mut self,
        src: NodeId,
        dst: NodeId,
        label: impl Into<String>,
        attrs: Attrs,
    ) -> Result<EdgeId, GraphError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        if self.find_edge(src, dst).is_some() {
            return Err(GraphError::DuplicateEdge(src, dst));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeSlot {
            src,
            dst,
            label: label.into(),
            attrs,
            removed: false,
        });
        self.out_adj[src.index()].push((dst, id));
        if self.is_directed() {
            self.in_adj[dst.index()].push((src, id));
        } else {
            self.out_adj[dst.index()].push((src, id));
        }
        self.live_edges += 1;
        self.journal.record(StructEdit::AddEdge(src, dst));
        Ok(id)
    }

    /// Finds the live edge from `src` to `dst`, if any. For undirected graphs
    /// the orientation of the query does not matter.
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        let adj = self.out_adj.get(src.index())?;
        adj.iter()
            .find(|&&(v, e)| v == dst && !self.edges[e.index()].removed)
            .map(|&(_, e)| e)
    }

    /// True if a live edge runs from `src` to `dst`.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.find_edge(src, dst).is_some()
    }

    /// Removes an edge. The id is never reused.
    pub fn remove_edge(&mut self, id: EdgeId) -> Result<(), GraphError> {
        if !self.contains_edge(id) {
            return Err(GraphError::EdgeNotFound(id));
        }
        let (src, dst) = {
            let e = &mut self.edges[id.index()];
            e.removed = true;
            (e.src, e.dst)
        };
        self.out_adj[src.index()].retain(|&(_, e)| e != id);
        if self.is_directed() {
            self.in_adj[dst.index()].retain(|&(_, e)| e != id);
        } else {
            self.out_adj[dst.index()].retain(|&(_, e)| e != id);
        }
        self.live_edges -= 1;
        self.journal.record(StructEdit::RemoveEdge(src, dst));
        Ok(())
    }

    /// Removes a node and all incident edges. Ids are never reused.
    pub fn remove_node(&mut self, id: NodeId) -> Result<(), GraphError> {
        self.check_node(id)?;
        let incident: Vec<EdgeId> = self
            .out_adj[id.index()]
            .iter()
            .map(|&(_, e)| e)
            .chain(self.in_adj[id.index()].iter().map(|&(_, e)| e))
            .collect();
        for e in incident {
            if self.contains_edge(e) {
                self.remove_edge(e)?;
            }
        }
        self.nodes[id.index()].removed = true;
        self.live_nodes -= 1;
        self.journal.record(StructEdit::RemoveNode);
        Ok(())
    }

    /// The label of a live node.
    pub fn node_label(&self, id: NodeId) -> Result<&str, GraphError> {
        self.check_node(id)?;
        Ok(&self.nodes[id.index()].label)
    }

    /// Replaces a node's label.
    pub fn set_node_label(
        &mut self,
        id: NodeId,
        label: impl Into<String>,
    ) -> Result<(), GraphError> {
        self.check_node(id)?;
        self.nodes[id.index()].label = label.into();
        Ok(())
    }

    /// The attributes of a live node.
    pub fn node_attrs(&self, id: NodeId) -> Result<&Attrs, GraphError> {
        self.check_node(id)?;
        Ok(&self.nodes[id.index()].attrs)
    }

    /// Mutable attributes of a live node.
    pub fn node_attrs_mut(&mut self, id: NodeId) -> Result<&mut Attrs, GraphError> {
        self.check_node(id)?;
        Ok(&mut self.nodes[id.index()].attrs)
    }

    /// Convenience: sets one node attribute.
    pub fn set_node_attr(
        &mut self,
        id: NodeId,
        key: impl Into<String>,
        value: impl Into<AttrValue>,
    ) -> Result<(), GraphError> {
        self.node_attrs_mut(id)?.insert(key.into(), value.into());
        Ok(())
    }

    /// The label of a live edge.
    pub fn edge_label(&self, id: EdgeId) -> Result<&str, GraphError> {
        if !self.contains_edge(id) {
            return Err(GraphError::EdgeNotFound(id));
        }
        Ok(&self.edges[id.index()].label)
    }

    /// Replaces an edge's label.
    pub fn set_edge_label(
        &mut self,
        id: EdgeId,
        label: impl Into<String>,
    ) -> Result<(), GraphError> {
        if !self.contains_edge(id) {
            return Err(GraphError::EdgeNotFound(id));
        }
        self.edges[id.index()].label = label.into();
        Ok(())
    }

    /// The attributes of a live edge.
    pub fn edge_attrs(&self, id: EdgeId) -> Result<&Attrs, GraphError> {
        if !self.contains_edge(id) {
            return Err(GraphError::EdgeNotFound(id));
        }
        Ok(&self.edges[id.index()].attrs)
    }

    /// Mutable attributes of a live edge.
    pub fn edge_attrs_mut(&mut self, id: EdgeId) -> Result<&mut Attrs, GraphError> {
        if !self.contains_edge(id) {
            return Err(GraphError::EdgeNotFound(id));
        }
        Ok(&mut self.edges[id.index()].attrs)
    }

    /// The `(src, dst)` endpoints of a live edge.
    pub fn edge_endpoints(&self, id: EdgeId) -> Result<(NodeId, NodeId), GraphError> {
        if !self.contains_edge(id) {
            return Err(GraphError::EdgeNotFound(id));
        }
        let e = &self.edges[id.index()];
        Ok((e.src, e.dst))
    }

    /// Iterator over live node ids, in ascending id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.removed)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Iterator over live edge ids, in ascending id order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.removed)
            .map(|(i, _)| EdgeId(i as u32))
    }

    /// Out-neighbours of `id` as `(neighbour, edge)` pairs. For undirected
    /// graphs this is all neighbours.
    pub fn neighbors(&self, id: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.out_adj
            .get(id.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .copied()
    }

    /// In-neighbours of `id`. Empty for undirected graphs — use
    /// [`Graph::neighbors`] there.
    pub fn in_neighbors(&self, id: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.in_adj
            .get(id.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .copied()
    }

    /// All neighbours regardless of direction (union of out and in lists).
    pub fn undirected_neighbors(&self, id: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.neighbors(id).chain(self.in_neighbors(id))
    }

    /// Out-degree of a node (total degree for undirected graphs).
    pub fn degree(&self, id: NodeId) -> usize {
        self.out_adj.get(id.index()).map_or(0, |v| v.len())
    }

    /// In-degree of a node (0 for undirected graphs).
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.in_adj.get(id.index()).map_or(0, |v| v.len())
    }

    /// Total degree: out + in for directed graphs, degree for undirected.
    pub fn total_degree(&self, id: NodeId) -> usize {
        self.degree(id) + self.in_degree(id)
    }

    /// Rebuilds the graph with dense, gap-free ids.
    ///
    /// Returns the compacted graph and, for each old live node id, its new id
    /// (`mapping[old.index()] == Some(new)`).
    pub fn compact(&self) -> (Graph, Vec<Option<NodeId>>) {
        let mut mapping: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut g = Graph::new(self.direction);
        g.set_name(self.name.clone());
        for id in self.node_ids() {
            let slot = &self.nodes[id.index()];
            let new = g.add_node_with_attrs(slot.label.clone(), slot.attrs.clone());
            mapping[id.index()] = Some(new);
        }
        for eid in self.edge_ids() {
            let e = &self.edges[eid.index()];
            // Both endpoints of a live edge are live, so the mapping always
            // resolves; a compacted edge cannot collide because the source
            // graph held it without collision.
            if let (Some(src), Some(dst)) = (mapping[e.src.index()], mapping[e.dst.index()]) {
                let added = g.add_edge_with_attrs(src, dst, e.label.clone(), e.attrs.clone());
                debug_assert!(added.is_ok(), "compacted edges cannot collide");
            } else {
                debug_assert!(false, "live edge endpoint must be live");
            }
        }
        (g, mapping)
    }

    /// Builds the subgraph induced by `nodes` (live ids only).
    ///
    /// Returns the subgraph plus the mapping from old node ids to new.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<Option<NodeId>>) {
        let mut mapping: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut g = Graph::new(self.direction);
        g.set_name(format!("{}-sub", self.name));
        for &id in nodes {
            if self.contains_node(id) && mapping[id.index()].is_none() {
                let slot = &self.nodes[id.index()];
                mapping[id.index()] =
                    Some(g.add_node_with_attrs(slot.label.clone(), slot.attrs.clone()));
            }
        }
        for eid in self.edge_ids() {
            let e = &self.edges[eid.index()];
            if let (Some(src), Some(dst)) = (mapping[e.src.index()], mapping[e.dst.index()]) {
                let added = g.add_edge_with_attrs(src, dst, e.label.clone(), e.attrs.clone());
                debug_assert!(added.is_ok(), "induced edges cannot collide");
            }
        }
        (g, mapping)
    }

    /// Sorted multiset of node labels — a cheap structural fingerprint used by
    /// the classifiers and tests.
    pub fn label_histogram(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
        for id in self.node_ids() {
            *counts.entry(&self.nodes[id.index()].label).or_default() += 1;
        }
        counts
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::undirected();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let c = g.add_node("C");
        g.add_edge(a, b, "x").unwrap();
        g.add_edge(b, c, "y").unwrap();
        (g, a, b, c)
    }

    #[test]
    fn add_and_query_nodes_edges() {
        let (g, a, b, c) = path3();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_label(a).unwrap(), "A");
        assert!(g.has_edge(a, b));
        assert!(g.has_edge(b, a));
        assert!(!g.has_edge(a, c));
        assert_eq!(g.degree(b), 2);
    }

    #[test]
    fn directed_edges_are_oriented() {
        let mut g = Graph::directed();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_edge(a, b, "r").unwrap();
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.in_degree(b), 1);
        assert_eq!(g.total_degree(b), 1);
        // Reverse edge is a distinct edge, not a duplicate.
        g.add_edge(b, a, "r").unwrap();
        assert!(g.has_edge(b, a));
    }

    #[test]
    fn duplicate_and_self_loop_rejected() {
        let (mut g, a, b, _) = path3();
        assert_eq!(
            g.add_edge(a, b, "z").unwrap_err(),
            GraphError::DuplicateEdge(a, b)
        );
        assert_eq!(
            g.add_edge(b, a, "z").unwrap_err(),
            GraphError::DuplicateEdge(b, a)
        );
        assert_eq!(g.add_edge(a, a, "z").unwrap_err(), GraphError::SelfLoop(a));
    }

    #[test]
    fn remove_edge_keeps_ids_stable() {
        let (mut g, a, b, c) = path3();
        let e = g.find_edge(a, b).unwrap();
        g.remove_edge(e).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(a, b));
        assert!(g.has_edge(b, c));
        assert_eq!(g.remove_edge(e).unwrap_err(), GraphError::EdgeNotFound(e));
        // Re-adding after removal works and yields a fresh id.
        let e2 = g.add_edge(a, b, "x2").unwrap();
        assert_ne!(e, e2);
    }

    #[test]
    fn remove_node_cascades_to_incident_edges() {
        let (mut g, a, b, c) = path3();
        g.remove_node(b).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.contains_node(b));
        assert!(g.contains_node(a) && g.contains_node(c));
        assert!(g.node_label(b).is_err());
    }

    #[test]
    fn remove_node_directed_cascades_incoming() {
        let mut g = Graph::directed();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_edge(a, b, "r").unwrap();
        g.remove_node(b).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(a), 0);
    }

    #[test]
    fn attrs_roundtrip() {
        let (mut g, a, _, _) = path3();
        g.set_node_attr(a, "age", 30i64).unwrap();
        assert_eq!(g.node_attrs(a).unwrap()["age"].as_int(), Some(30));
        let e = g.edge_ids().next().unwrap();
        g.edge_attrs_mut(e)
            .unwrap()
            .insert("w".into(), AttrValue::Float(0.5));
        assert_eq!(g.edge_attrs(e).unwrap()["w"].as_float(), Some(0.5));
    }

    #[test]
    fn labels_can_be_rewritten() {
        let (mut g, a, _, _) = path3();
        g.set_node_label(a, "Z").unwrap();
        assert_eq!(g.node_label(a).unwrap(), "Z");
        let e = g.edge_ids().next().unwrap();
        g.set_edge_label(e, "zz").unwrap();
        assert_eq!(g.edge_label(e).unwrap(), "zz");
    }

    #[test]
    fn compact_renumbers_densely() {
        let (mut g, a, b, c) = path3();
        g.remove_node(a).unwrap();
        let (dense, mapping) = g.compact();
        assert_eq!(dense.node_count(), 2);
        assert_eq!(dense.edge_count(), 1);
        assert_eq!(mapping[a.index()], None);
        let nb = mapping[b.index()].unwrap();
        let nc = mapping[c.index()].unwrap();
        assert!(dense.has_edge(nb, nc));
        assert_eq!(dense.node_bound(), 2);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let (g, a, b, c) = path3();
        let (sub, mapping) = g.induced_subgraph(&[a, b]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert!(mapping[c.index()].is_none());
    }

    #[test]
    fn induced_subgraph_ignores_duplicates_and_dead_nodes() {
        let (mut g, a, b, _) = path3();
        g.remove_node(a).unwrap();
        let (sub, _) = g.induced_subgraph(&[a, b, b]);
        assert_eq!(sub.node_count(), 1);
    }

    #[test]
    fn label_histogram_sorted() {
        let mut g = Graph::undirected();
        g.add_node("C");
        g.add_node("O");
        g.add_node("C");
        assert_eq!(
            g.label_histogram(),
            vec![("C".to_owned(), 2), ("O".to_owned(), 1)]
        );
    }

    #[test]
    fn node_ids_skip_tombstones() {
        let (mut g, a, _, _) = path3();
        g.remove_node(a).unwrap();
        let ids: Vec<_> = g.node_ids().collect();
        assert_eq!(ids.len(), 2);
        assert!(!ids.contains(&a));
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let (g, a, b, _) = path3();
        let s = chatgraph_support::json::to_string(&g);
        let back: Graph = chatgraph_support::json::from_str(&s).unwrap();
        assert_eq!(back.node_count(), 3);
        assert!(back.has_edge(a, b));
    }

    #[test]
    fn display_ids() {
        assert_eq!(NodeId(3).to_string(), "v3");
        assert_eq!(EdgeId(0).to_string(), "e0");
    }

    #[test]
    fn error_display() {
        let e = GraphError::DuplicateEdge(NodeId(1), NodeId(2));
        assert!(e.to_string().contains("already exists"));
    }
}
