//! Bridges and articulation points (Tarjan's low-link algorithm).
//!
//! Social-network analysts ask for the "weak links" of a network: edges and
//! nodes whose removal disconnects it. Undirected semantics.

use crate::graph::{EdgeId, Graph, NodeId};

struct Dfs<'a> {
    g: &'a Graph,
    disc: Vec<Option<usize>>,
    low: Vec<usize>,
    timer: usize,
    bridges: Vec<EdgeId>,
    articulation: Vec<bool>,
}

impl<'a> Dfs<'a> {
    /// Iterative Tarjan DFS from `root` (recursion would overflow on long
    /// paths).
    fn run(&mut self, root: NodeId) {
        #[derive(Clone)]
        struct Frame {
            v: NodeId,
            parent_edge: Option<EdgeId>,
            child_count: usize,
            neighbors: Vec<(NodeId, EdgeId)>,
            next: usize,
        }
        let mut stack = vec![Frame {
            v: root,
            parent_edge: None,
            child_count: 0,
            neighbors: self.g.undirected_neighbors(root).collect(),
            next: 0,
        }];
        self.disc[root.index()] = Some(self.timer);
        self.low[root.index()] = self.timer;
        self.timer += 1;

        while let Some(frame) = stack.last_mut() {
            if frame.next < frame.neighbors.len() {
                let (w, e) = frame.neighbors[frame.next];
                frame.next += 1;
                if Some(e) == frame.parent_edge {
                    continue;
                }
                match self.disc[w.index()] {
                    Some(dw) => {
                        let vi = frame.v.index();
                        self.low[vi] = self.low[vi].min(dw);
                    }
                    None => {
                        frame.child_count += 1;
                        self.disc[w.index()] = Some(self.timer);
                        self.low[w.index()] = self.timer;
                        self.timer += 1;
                        let neighbors = self.g.undirected_neighbors(w).collect();
                        stack.push(Frame {
                            v: w,
                            parent_edge: Some(e),
                            child_count: 0,
                            neighbors,
                            next: 0,
                        });
                    }
                }
            } else {
                // Post-visit: propagate low-link to the parent.
                let done = stack.pop().expect("non-empty stack");
                let v = done.v;
                if done.parent_edge.is_none() {
                    // DFS root: articulation iff it has ≥ 2 DFS children.
                    if done.child_count >= 2 {
                        self.articulation[v.index()] = true;
                    }
                    continue;
                }
                let parent_frame = stack.last().expect("child has a parent");
                let p = parent_frame.v;
                let pe = done.parent_edge.expect("checked above");
                self.low[p.index()] = self.low[p.index()].min(self.low[v.index()]);
                let disc_p = self.disc[p.index()].expect("visited");
                if self.low[v.index()] > disc_p {
                    self.bridges.push(pe);
                }
                // Non-root articulation: some child's subtree cannot reach
                // above p.
                if self.low[v.index()] >= disc_p && parent_frame.parent_edge.is_some() {
                    self.articulation[p.index()] = true;
                }
            }
        }
    }
}

/// All bridge edges (edges whose removal increases the component count),
/// sorted by id.
pub fn bridges(g: &Graph) -> Vec<EdgeId> {
    let (b, _) = bridges_and_articulation(g);
    b
}

/// All articulation points (nodes whose removal increases the component
/// count), sorted by id.
pub fn articulation_points(g: &Graph) -> Vec<NodeId> {
    let (_, a) = bridges_and_articulation(g);
    a
}

/// Computes both in one pass.
pub fn bridges_and_articulation(g: &Graph) -> (Vec<EdgeId>, Vec<NodeId>) {
    let bound = g.node_bound();
    let mut dfs = Dfs {
        g,
        disc: vec![None; bound],
        low: vec![0; bound],
        timer: 0,
        bridges: Vec::new(),
        articulation: vec![false; bound],
    };
    for v in g.node_ids() {
        if dfs.disc[v.index()].is_none() {
            dfs.run(v);
        }
    }
    let mut bridges = dfs.bridges;
    bridges.sort();
    let articulation: Vec<NodeId> = dfs
        .articulation
        .iter()
        .enumerate()
        .filter(|&(_, &a)| a)
        .map(|(i, _)| NodeId(i as u32))
        .collect();
    (bridges, articulation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::components::connected_components;
    use crate::GraphBuilder;

    fn barbell() -> Graph {
        // triangle a-b-c — bridge c-d — triangle d-e-f
        GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("c", "a", "-")
            .edge("c", "d", "-")
            .edge("d", "e", "-")
            .edge("e", "f", "-")
            .edge("f", "d", "-")
            .build()
    }

    #[test]
    fn finds_the_single_bridge() {
        let g = barbell();
        let b = bridges(&g);
        assert_eq!(b.len(), 1);
        let (s, d) = g.edge_endpoints(b[0]).unwrap();
        assert_eq!((s, d), (NodeId(2), NodeId(3)));
    }

    #[test]
    fn bridge_endpoints_are_articulation_points() {
        let g = barbell();
        let a = articulation_points(&g);
        assert_eq!(a, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn cycle_has_no_bridges() {
        let mut b = GraphBuilder::undirected();
        for i in 0..6 {
            b = b.edge(format!("n{i}"), format!("n{}", (i + 1) % 6), "-");
        }
        let g = b.build();
        assert!(bridges(&g).is_empty());
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn tree_edges_are_all_bridges() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("b", "d", "-")
            .build();
        assert_eq!(bridges(&g).len(), 3);
        assert_eq!(articulation_points(&g), vec![NodeId(1)]);
    }

    #[test]
    fn removing_a_bridge_disconnects() {
        let mut g = barbell();
        let b = bridges(&g)[0];
        assert_eq!(connected_components(&g).count, 1);
        g.remove_edge(b).unwrap();
        assert_eq!(connected_components(&g).count, 2);
    }

    #[test]
    fn star_center_is_articulation() {
        let g = GraphBuilder::undirected()
            .edge("c", "a", "-")
            .edge("c", "b", "-")
            .edge("c", "d", "-")
            .build();
        assert_eq!(articulation_points(&g), vec![NodeId(0)]);
    }

    #[test]
    fn disconnected_graph_handled() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("x", "y", "-")
            .build();
        assert_eq!(bridges(&g).len(), 2);
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::undirected();
        assert!(bridges(&g).is_empty());
        assert!(articulation_points(&g).is_empty());
    }
}
