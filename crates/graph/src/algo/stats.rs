//! Whole-graph summary statistics, as consumed by the report APIs.

use crate::algo::components::connected_components;
use crate::algo::triangles::{global_clustering_coefficient, triangle_count};
use crate::graph::Graph;

/// A bundle of cheap structural statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Live node count.
    pub nodes: usize,
    /// Live edge count.
    pub edges: usize,
    /// Edge density in `[0, 1]` (directed graphs use `n(n-1)` pairs).
    pub density: f64,
    /// Minimum total degree.
    pub min_degree: usize,
    /// Maximum total degree.
    pub max_degree: usize,
    /// Mean total degree.
    pub avg_degree: f64,
    /// Number of connected components (weak, for directed graphs).
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Number of triangles.
    pub triangles: usize,
    /// Global clustering coefficient (transitivity).
    pub clustering: f64,
    /// Number of distinct node labels.
    pub distinct_labels: usize,
}

chatgraph_support::impl_json_struct!(GraphStats {
    nodes,
    edges,
    density,
    min_degree,
    max_degree,
    avg_degree,
    components,
    largest_component,
    triangles,
    clustering,
    distinct_labels,
});

/// Computes [`GraphStats`] for a graph.
pub fn graph_stats(g: &Graph) -> GraphStats {
    let n = g.node_count();
    let m = g.edge_count();
    let possible = if g.is_directed() {
        n.saturating_mul(n.saturating_sub(1))
    } else {
        n.saturating_mul(n.saturating_sub(1)) / 2
    };
    let density = if possible == 0 {
        0.0
    } else {
        m as f64 / possible as f64
    };
    let degrees: Vec<usize> = g.node_ids().map(|v| g.total_degree(v)).collect();
    let cc = connected_components(g);
    GraphStats {
        nodes: n,
        edges: m,
        density,
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        avg_degree: if n == 0 {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / n as f64
        },
        components: cc.count,
        largest_component: cc.largest_size(),
        triangles: triangle_count(g),
        clustering: global_clustering_coefficient(g),
        distinct_labels: g.label_histogram().len(),
    }
}

/// Degree histogram: `histogram[d]` = number of nodes with total degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in g.node_ids() {
        let d = g.total_degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn triangle_stats() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("c", "a", "-")
            .build();
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.density, 1.0);
        assert_eq!(s.min_degree, 2);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.avg_degree, 2.0);
        assert_eq!(s.components, 1);
        assert_eq!(s.triangles, 1);
        assert_eq!(s.clustering, 1.0);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let s = graph_stats(&crate::Graph::undirected());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn directed_density_uses_ordered_pairs() {
        let g = GraphBuilder::directed().edge("a", "b", "r").build();
        let s = graph_stats(&g);
        assert_eq!(s.density, 0.5); // 1 edge of 2 possible ordered pairs
    }

    #[test]
    fn degree_histogram_counts() {
        // star: center degree 3, leaves degree 1
        let g = GraphBuilder::undirected()
            .edge("c", "a", "-")
            .edge("c", "b", "-")
            .edge("c", "d", "-")
            .build();
        let h = degree_histogram(&g);
        assert_eq!(h[1], 3);
        assert_eq!(h[3], 1);
    }

    #[test]
    fn distinct_labels_counted() {
        let g = GraphBuilder::undirected()
            .node("a", "C")
            .node("b", "C")
            .node("c", "O")
            .build();
        assert_eq!(graph_stats(&g).distinct_labels, 2);
    }
}
