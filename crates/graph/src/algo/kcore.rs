//! k-core decomposition.

use crate::graph::{Graph, NodeId};

/// Core number per node slot (`None` for removed slots).
///
/// The core number of `v` is the largest `k` such that `v` belongs to a
/// subgraph in which every node has degree ≥ `k`. Computed by the standard
/// peeling algorithm (undirected semantics).
pub fn core_numbers(g: &Graph) -> Vec<Option<usize>> {
    let bound = g.node_bound();
    let mut degree: Vec<usize> = vec![0; bound];
    let mut alive: Vec<bool> = vec![false; bound];
    for v in g.node_ids() {
        degree[v.index()] = g.total_degree(v);
        alive[v.index()] = true;
    }
    let mut core: Vec<Option<usize>> = vec![None; bound];
    let mut remaining: Vec<NodeId> = g.node_ids().collect();
    let mut k = 0usize;
    while !remaining.is_empty() {
        // Peel all nodes of degree ≤ k; if none, increment k.
        let mut peel: Vec<NodeId> = remaining
            .iter()
            .copied()
            .filter(|v| degree[v.index()] <= k)
            .collect();
        if peel.is_empty() {
            k += 1;
            continue;
        }
        while let Some(v) = peel.pop() {
            if !alive[v.index()] {
                continue;
            }
            alive[v.index()] = false;
            core[v.index()] = Some(k);
            for (w, _) in g.undirected_neighbors(v) {
                if alive[w.index()] {
                    degree[w.index()] -= 1;
                    if degree[w.index()] <= k {
                        peel.push(w);
                    }
                }
            }
        }
        remaining.retain(|v| alive[v.index()]);
    }
    core
}

/// The nodes of the maximal `k`-core (possibly empty).
pub fn k_core(g: &Graph, k: usize) -> Vec<NodeId> {
    core_numbers(g)
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_some_and(|c| c >= k))
        .map(|(i, _)| NodeId(i as u32))
        .collect()
}

/// Degeneracy: the maximum core number (0 for empty graphs).
pub fn degeneracy(g: &Graph) -> usize {
    core_numbers(g).into_iter().flatten().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn triangle_with_tail() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("c", "a", "-")
            .edge("c", "d", "-")
            .build();
        let core = core_numbers(&g);
        assert_eq!(core[0], Some(2));
        assert_eq!(core[1], Some(2));
        assert_eq!(core[2], Some(2));
        assert_eq!(core[3], Some(1)); // tail node
        assert_eq!(degeneracy(&g), 2);
        assert_eq!(k_core(&g, 2).len(), 3);
        assert!(k_core(&g, 3).is_empty());
    }

    #[test]
    fn clique_core_is_n_minus_one() {
        let mut b = GraphBuilder::undirected();
        let names = ["a", "b", "c", "d", "e"];
        for i in 0..5 {
            for j in (i + 1)..5 {
                b = b.edge(names[i], names[j], "-");
            }
        }
        let g = b.build();
        assert_eq!(degeneracy(&g), 4);
        assert_eq!(k_core(&g, 4).len(), 5);
    }

    #[test]
    fn isolated_nodes_have_core_zero() {
        let mut g = crate::Graph::undirected();
        g.add_node("x");
        assert_eq!(core_numbers(&g)[0], Some(0));
        assert_eq!(degeneracy(&g), 0);
    }

    #[test]
    fn path_is_one_degenerate() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .build();
        assert_eq!(degeneracy(&g), 1);
        assert_eq!(k_core(&g, 1).len(), 3);
    }
}
