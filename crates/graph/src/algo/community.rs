//! Community detection.
//!
//! Two detectors back the social-analysis APIs:
//!
//! * [`label_propagation`] — near-linear-time, seed-deterministic.
//! * [`greedy_modularity`] — agglomerative modularity maximisation (CNM
//!   style), slower but deterministic without a seed.
//!
//! Both return a [`Communities`] partition; [`modularity`] scores any
//! partition, and [`nmi`] compares one against ground truth.

use crate::graph::{Graph, NodeId};
use chatgraph_support::rng::SliceRandom;
use chatgraph_support::rng::SeedableRng;
use chatgraph_support::rng::ChaCha12Rng;
use std::collections::HashMap;

/// A partition of the live nodes into communities `0..count`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Communities {
    /// Community index per node slot (`None` for removed slots).
    pub assignment: Vec<Option<usize>>,
    count: usize,
}

impl Communities {
    /// Builds a partition from raw per-slot labels, renumbering communities
    /// densely in first-appearance order.
    pub fn from_assignment(raw: Vec<Option<usize>>) -> Self {
        let mut remap: HashMap<usize, usize> = HashMap::new();
        let mut assignment = raw;
        for c in assignment.iter_mut().flatten() {
            let next = remap.len();
            *c = *remap.entry(*c).or_insert(next);
        }
        let count = remap.len();
        Communities { assignment, count }
    }

    /// Number of communities.
    pub fn num_communities(&self) -> usize {
        self.count
    }

    /// Community of `v`, if live.
    pub fn community_of(&self, v: NodeId) -> Option<usize> {
        self.assignment.get(v.index()).copied().flatten()
    }

    /// Nodes grouped per community, largest first.
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (i, c) in self.assignment.iter().enumerate() {
            if let Some(c) = c {
                groups[*c].push(NodeId(i as u32));
            }
        }
        groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
        groups
    }
}

/// Synchronous-ish label propagation with seed-controlled tie-breaking.
///
/// Each node repeatedly adopts the most frequent label among its neighbours
/// (ties broken by smallest label); iteration order is shuffled per round.
/// Converges on planted-partition graphs in a handful of rounds.
pub fn label_propagation(g: &Graph, seed: u64) -> Communities {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut labels: Vec<Option<usize>> = vec![None; g.node_bound()];
    let mut order: Vec<NodeId> = g.node_ids().collect();
    for v in &order {
        labels[v.index()] = Some(v.index());
    }
    let max_rounds = 50;
    for _ in 0..max_rounds {
        order.shuffle(&mut rng);
        let mut changed = false;
        for &v in &order {
            let mut freq: HashMap<usize, usize> = HashMap::new();
            for (w, _) in g.undirected_neighbors(v) {
                if let Some(l) = labels[w.index()] {
                    *freq.entry(l).or_default() += 1;
                }
            }
            if freq.is_empty() {
                continue;
            }
            let best = freq
                .iter()
                .map(|(&l, &c)| (c, std::cmp::Reverse(l)))
                .max()
                .map(|(c, std::cmp::Reverse(l))| (l, c))
                .expect("non-empty freq");
            if labels[v.index()] != Some(best.0) {
                labels[v.index()] = Some(best.0);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Communities::from_assignment(labels)
}

/// Newman modularity `Q` of a partition (undirected semantics).
pub fn modularity(g: &Graph, comms: &Communities) -> f64 {
    let m = g.edge_count() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let mut intra = 0.0;
    for e in g.edge_ids() {
        let (a, b) = g.edge_endpoints(e).expect("live edge");
        if comms.community_of(a) == comms.community_of(b) {
            intra += 1.0;
        }
    }
    let mut degree_sum: HashMap<usize, f64> = HashMap::new();
    for v in g.node_ids() {
        if let Some(c) = comms.community_of(v) {
            *degree_sum.entry(c).or_default() += g.total_degree(v) as f64;
        }
    }
    let expected: f64 = degree_sum.values().map(|d| (d / (2.0 * m)).powi(2)).sum();
    intra / m - expected
}

/// Greedy agglomerative modularity maximisation (CNM-style).
///
/// Starts from singletons and repeatedly merges the pair of connected
/// communities with the best modularity gain until no positive gain remains.
/// Deterministic. Intended for the modest graph sizes of the demo scenarios
/// (it is O(n·m) in this simple formulation).
pub fn greedy_modularity(g: &Graph) -> Communities {
    let two_m = (2 * g.edge_count()) as f64;
    if two_m == 0.0 {
        let labels: Vec<Option<usize>> = (0..g.node_bound())
            .map(|i| g.contains_node(NodeId(i as u32)).then_some(i))
            .collect();
        return Communities::from_assignment(labels);
    }
    // community id per slot; start as singletons
    let mut comm: Vec<Option<usize>> = (0..g.node_bound())
        .map(|i| g.contains_node(NodeId(i as u32)).then_some(i))
        .collect();
    // degree sum per community
    let mut deg: HashMap<usize, f64> = HashMap::new();
    for v in g.node_ids() {
        *deg.entry(v.index()).or_default() += g.total_degree(v) as f64;
    }
    // edge counts between communities
    let mut between: HashMap<(usize, usize), f64> = HashMap::new();
    for e in g.edge_ids() {
        let (a, b) = g.edge_endpoints(e).expect("live edge");
        let (x, y) = ord(a.index(), b.index());
        *between.entry((x, y)).or_default() += 1.0;
    }

    loop {
        // Find the merge with the largest modularity gain:
        // ΔQ = e_ij/m − k_i·k_j/(2m²)   (with e_ij the inter-community edges)
        let mut best: Option<((usize, usize), f64)> = None;
        for (&(i, j), &eij) in &between {
            if i == j {
                continue;
            }
            let gain = 2.0 * eij / two_m - 2.0 * deg[&i] * deg[&j] / (two_m * two_m);
            let better = match best {
                None => true,
                Some((pair, g0)) => gain > g0 + 1e-15 || (gain > g0 - 1e-15 && (i, j) < pair),
            };
            if better {
                best = Some(((i, j), gain));
            }
        }
        let Some(((i, j), gain)) = best else { break };
        if gain <= 1e-12 {
            break;
        }
        // Merge j into i.
        for c in comm.iter_mut().flatten() {
            if *c == j {
                *c = i;
            }
        }
        let dj = deg.remove(&j).unwrap_or(0.0);
        *deg.entry(i).or_default() += dj;
        let old: Vec<((usize, usize), f64)> = between
            .iter()
            .filter(|(&(a, b), _)| a == j || b == j)
            .map(|(&k, &v)| (k, v))
            .collect();
        for (k, v) in old {
            between.remove(&k);
            let other = if k.0 == j { k.1 } else { k.0 };
            if other == i || other == j {
                continue; // internal edges no longer matter
            }
            let nk = ord(i, other);
            *between.entry(nk).or_default() += v;
        }
    }
    Communities::from_assignment(comm)
}

fn ord(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Normalised mutual information between two partitions over the same nodes,
/// in `[0, 1]`; 1 means identical partitions. Used to validate detected
/// communities against planted ground truth.
pub fn nmi(a: &Communities, b: &Communities) -> f64 {
    let mut joint: HashMap<(usize, usize), f64> = HashMap::new();
    let mut ca: HashMap<usize, f64> = HashMap::new();
    let mut cb: HashMap<usize, f64> = HashMap::new();
    let mut n = 0.0;
    for (i, la) in a.assignment.iter().enumerate() {
        if let (Some(x), Some(Some(y))) = (la, b.assignment.get(i)) {
            *joint.entry((*x, *y)).or_default() += 1.0;
            *ca.entry(*x).or_default() += 1.0;
            *cb.entry(*y).or_default() += 1.0;
            n += 1.0;
        }
    }
    if n == 0.0 {
        return 0.0;
    }
    let mut mi = 0.0;
    for (&(x, y), &nxy) in &joint {
        mi += (nxy / n) * ((n * nxy) / (ca[&x] * cb[&y])).ln();
    }
    let h = |m: &HashMap<usize, f64>| -> f64 {
        m.values().map(|&c| -(c / n) * (c / n).ln()).sum::<f64>()
    };
    let (ha, hb) = (h(&ca), h(&cb));
    if ha == 0.0 && hb == 0.0 {
        return 1.0; // both trivial single-community partitions
    }
    let denom = (ha * hb).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        (mi / denom).clamp(0.0, 1.0)
    }
}

/// Ground-truth partition read from the `community` node attribute written by
/// the social-network generator. Nodes lacking the attribute go to a fresh
/// community each.
pub fn planted_partition(g: &Graph) -> Communities {
    let mut labels: Vec<Option<usize>> = vec![None; g.node_bound()];
    let mut fresh = 1_000_000;
    for v in g.node_ids() {
        let c = g
            .node_attrs(v)
            .ok()
            .and_then(|a| a.get("community"))
            .and_then(|v| v.as_int())
            .map(|c| c as usize)
            .unwrap_or_else(|| {
                fresh += 1;
                fresh
            });
        labels[v.index()] = Some(c);
    }
    Communities::from_assignment(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{social_network, SocialParams};
    use crate::GraphBuilder;

    fn two_cliques() -> Graph {
        // Two K4s joined by one bridge edge.
        let mut b = GraphBuilder::undirected();
        for (x, y) in [("a", "b"), ("a", "c"), ("a", "d"), ("b", "c"), ("b", "d"), ("c", "d")] {
            b = b.edge(x, y, "-");
        }
        for (x, y) in [("e", "f"), ("e", "g"), ("e", "h"), ("f", "g"), ("f", "h"), ("g", "h")] {
            b = b.edge(x, y, "-");
        }
        b.edge("d", "e", "-").build()
    }

    #[test]
    fn label_propagation_splits_cliques() {
        let g = two_cliques();
        let c = label_propagation(&g, 1);
        assert!(c.num_communities() >= 2, "got {}", c.num_communities());
        // All of the first clique share a community.
        let c0 = c.community_of(NodeId(0));
        for i in 1..4 {
            assert_eq!(c.community_of(NodeId(i)), c0);
        }
    }

    #[test]
    fn greedy_modularity_splits_cliques() {
        let g = two_cliques();
        let c = greedy_modularity(&g);
        assert_eq!(c.num_communities(), 2);
        let q = modularity(&g, &c);
        assert!(q > 0.3, "modularity {q}");
    }

    #[test]
    fn modularity_of_trivial_partition_is_low() {
        let g = two_cliques();
        let all_one =
            Communities::from_assignment(vec![Some(0); g.node_bound()]);
        assert!(modularity(&g, &all_one).abs() < 1e-9);
    }

    #[test]
    fn nmi_identity_and_disagreement() {
        let a = Communities::from_assignment(vec![Some(0), Some(0), Some(1), Some(1)]);
        let b = Communities::from_assignment(vec![Some(5), Some(5), Some(9), Some(9)]);
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-9);
        let c = Communities::from_assignment(vec![Some(0), Some(1), Some(0), Some(1)]);
        assert!(nmi(&a, &c) < 0.1);
    }

    #[test]
    fn recovers_planted_partition() {
        let g = social_network(&SocialParams::default(), 13);
        let truth = planted_partition(&g);
        assert_eq!(truth.num_communities(), 4);
        let detected = label_propagation(&g, 13);
        let score = nmi(&truth, &detected);
        assert!(score > 0.8, "nmi {score}");
    }

    #[test]
    fn greedy_modularity_on_planted_graph() {
        let g = social_network(
            &SocialParams {
                communities: 3,
                community_size: 12,
                p_intra: 0.5,
                p_inter: 0.01,
            },
            21,
        );
        let truth = planted_partition(&g);
        let detected = greedy_modularity(&g);
        let score = nmi(&truth, &detected);
        assert!(score > 0.8, "nmi {score}");
    }

    #[test]
    fn empty_graph_has_no_communities() {
        let g = crate::Graph::undirected();
        assert_eq!(label_propagation(&g, 0).num_communities(), 0);
        assert_eq!(greedy_modularity(&g).num_communities(), 0);
    }

    #[test]
    fn groups_sorted_largest_first() {
        let c = Communities::from_assignment(vec![Some(0), Some(1), Some(1), Some(1)]);
        let gs = c.groups();
        assert_eq!(gs[0].len(), 3);
        assert_eq!(gs[1].len(), 1);
    }
}
