//! VF2-style subgraph isomorphism.
//!
//! Backs the similarity / pattern-matching APIs: finds label-preserving
//! embeddings of a small pattern graph inside a target graph. Undirected
//! semantics; node labels must match exactly, edge labels match when
//! `match_edge_labels` is set.

use crate::graph::{Graph, NodeId};

/// Search options.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct IsoOptions {
    /// Require pattern edge labels to equal target edge labels.
    pub match_edge_labels: bool,
    /// Stop after this many embeddings (0 = unlimited).
    pub limit: usize,
}


/// Finds embeddings of `pattern` in `target`.
///
/// Each embedding maps pattern node → target node, returned as a vector
/// indexed by pattern slot. Pattern and target must both be live-compact
/// enough that their `node_ids` enumerations are meaningful (removed slots
/// are handled).
pub fn find_embeddings(pattern: &Graph, target: &Graph, opts: &IsoOptions) -> Vec<Vec<NodeId>> {
    let p_nodes: Vec<NodeId> = pattern.node_ids().collect();
    if p_nodes.is_empty() {
        return vec![Vec::new()];
    }
    if p_nodes.len() > target.node_count() {
        return Vec::new();
    }
    // Order pattern nodes so each node after the first connects to an earlier
    // one where possible — keeps the partial mapping connected and prunes hard.
    let order = connected_order(pattern, &p_nodes);
    let mut results = Vec::new();
    let mut mapping: Vec<Option<NodeId>> = vec![None; pattern.node_bound()];
    let mut used = vec![false; target.node_bound()];
    backtrack(
        pattern,
        target,
        opts,
        &order,
        0,
        &mut mapping,
        &mut used,
        &mut results,
    );
    results
        .into_iter()
        .map(|m: Vec<Option<NodeId>>| {
            p_nodes
                .iter()
                .map(|p| m[p.index()].expect("complete mapping"))
                .collect()
        })
        .collect()
}

/// True if `pattern` occurs in `target` (at least one embedding).
pub fn is_subgraph(pattern: &Graph, target: &Graph, opts: &IsoOptions) -> bool {
    let mut o = opts.clone();
    o.limit = 1;
    !find_embeddings(pattern, target, &o).is_empty()
}

fn connected_order(pattern: &Graph, nodes: &[NodeId]) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = Vec::with_capacity(nodes.len());
    let mut placed = vec![false; pattern.node_bound()];
    // Start from the highest-degree node for maximal early pruning.
    let mut remaining: Vec<NodeId> = nodes.to_vec();
    remaining.sort_by_key(|&v| std::cmp::Reverse(pattern.total_degree(v)));
    while order.len() < nodes.len() {
        // Prefer an unplaced node adjacent to the placed set.
        let next = remaining
            .iter()
            .copied()
            .find(|&v| {
                !placed[v.index()]
                    && pattern
                        .undirected_neighbors(v)
                        .any(|(w, _)| placed[w.index()])
            })
            .or_else(|| remaining.iter().copied().find(|&v| !placed[v.index()]))
            .expect("some node remains");
        placed[next.index()] = true;
        order.push(next);
    }
    order
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    pattern: &Graph,
    target: &Graph,
    opts: &IsoOptions,
    order: &[NodeId],
    depth: usize,
    mapping: &mut Vec<Option<NodeId>>,
    used: &mut Vec<bool>,
    results: &mut Vec<Vec<Option<NodeId>>>,
) {
    if opts.limit != 0 && results.len() >= opts.limit {
        return;
    }
    if depth == order.len() {
        results.push(mapping.clone());
        return;
    }
    let p = order[depth];
    let p_label = pattern.node_label(p).expect("live pattern node");
    'candidates: for t in target.node_ids() {
        if used[t.index()] || target.node_label(t).expect("live node") != p_label {
            continue;
        }
        if target.total_degree(t) < pattern.total_degree(p) {
            continue;
        }
        // Consistency: every already-mapped pattern neighbour of p must map to
        // a target neighbour of t (with a matching edge label, if requested).
        for (q, pe) in pattern.undirected_neighbors(p) {
            if let Some(tq) = mapping[q.index()] {
                let te = target
                    .find_edge(t, tq)
                    .or_else(|| target.find_edge(tq, t));
                match te {
                    None => continue 'candidates,
                    Some(te) if opts.match_edge_labels
                        && target.edge_label(te).expect("live edge")
                            != pattern.edge_label(pe).expect("live edge")
                        => {
                            continue 'candidates;
                        }
                    _ => {}
                }
            }
        }
        mapping[p.index()] = Some(t);
        used[t.index()] = true;
        backtrack(pattern, target, opts, order, depth + 1, mapping, used, results);
        mapping[p.index()] = None;
        used[t.index()] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn labeled_triangle() -> Graph {
        GraphBuilder::undirected()
            .node("a", "C")
            .node("b", "C")
            .node("c", "O")
            .edge("a", "b", "single")
            .edge("b", "c", "single")
            .edge("c", "a", "double")
            .build()
    }

    #[test]
    fn finds_edge_pattern() {
        let target = labeled_triangle();
        let pattern = GraphBuilder::undirected()
            .node("x", "C")
            .node("y", "O")
            .edge("x", "y", "-")
            .build();
        let embeddings = find_embeddings(&pattern, &target, &IsoOptions::default());
        // Two C nodes each adjacent to the single O node.
        assert_eq!(embeddings.len(), 2);
        assert!(is_subgraph(&pattern, &target, &IsoOptions::default()));
    }

    #[test]
    fn label_mismatch_blocks() {
        let target = labeled_triangle();
        let pattern = GraphBuilder::undirected()
            .node("x", "N")
            .node("y", "O")
            .edge("x", "y", "-")
            .build();
        assert!(!is_subgraph(&pattern, &target, &IsoOptions::default()));
    }

    #[test]
    fn edge_labels_enforced_when_requested() {
        let target = labeled_triangle();
        let pattern = GraphBuilder::undirected()
            .node("x", "C")
            .node("y", "O")
            .edge("x", "y", "double")
            .build();
        let strict = IsoOptions {
            match_edge_labels: true,
            limit: 0,
        };
        let embeddings = find_embeddings(&pattern, &target, &strict);
        assert_eq!(embeddings.len(), 1, "only the double bond matches");
    }

    #[test]
    fn triangle_in_triangle_has_automorphisms() {
        let target = GraphBuilder::undirected()
            .node("a", "X")
            .node("b", "X")
            .node("c", "X")
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("c", "a", "-")
            .build();
        let embeddings = find_embeddings(&target, &target, &IsoOptions::default());
        assert_eq!(embeddings.len(), 6, "3! automorphisms of a label-free triangle");
    }

    #[test]
    fn pattern_larger_than_target_fails_fast() {
        let small = GraphBuilder::undirected().edge("a", "b", "-").build();
        let big = labeled_triangle();
        assert!(find_embeddings(&big, &small, &IsoOptions::default()).is_empty());
    }

    #[test]
    fn empty_pattern_matches_trivially() {
        let target = labeled_triangle();
        let empty = crate::Graph::undirected();
        assert_eq!(find_embeddings(&empty, &target, &IsoOptions::default()).len(), 1);
    }

    #[test]
    fn limit_caps_results() {
        let target = labeled_triangle();
        let node = GraphBuilder::undirected().node("x", "C").build();
        let opts = IsoOptions {
            match_edge_labels: false,
            limit: 1,
        };
        assert_eq!(find_embeddings(&node, &target, &opts).len(), 1);
    }

    #[test]
    fn disconnected_pattern_is_supported() {
        let target = labeled_triangle();
        let pattern = GraphBuilder::undirected()
            .node("x", "C")
            .node("y", "O")
            .build(); // no edge: any C and any O, distinct
        let embeddings = find_embeddings(&pattern, &target, &IsoOptions::default());
        assert_eq!(embeddings.len(), 2);
    }
}
