//! Shortest paths and distance summaries.

use crate::algo::traversal::bfs_distances;
use crate::graph::{EdgeId, Graph, NodeId};
use std::collections::VecDeque;

/// One shortest path between `start` and `goal` (unit edge weights), or
/// `None` if unreachable. The returned path includes both endpoints.
pub fn shortest_path(g: &Graph, start: NodeId, goal: NodeId) -> Option<Vec<NodeId>> {
    if !g.contains_node(start) || !g.contains_node(goal) {
        return None;
    }
    if start == goal {
        return Some(vec![start]);
    }
    let mut pred: Vec<Option<NodeId>> = vec![None; g.node_bound()];
    let mut seen = vec![false; g.node_bound()];
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        for (w, _) in g.undirected_neighbors(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                pred[w.index()] = Some(v);
                if w == goal {
                    let mut path = vec![goal];
                    let mut cur = goal;
                    while let Some(p) = pred[cur.index()] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(w);
            }
        }
    }
    None
}

/// Dijkstra over undirected adjacency with per-edge weights from `weight`
/// (assumed non-negative). Returns slot-indexed shortest distances from
/// `start`, `None` for unreachable or removed nodes. This is the
/// adjacency-walking differential oracle for the CSR `dijkstra` kernel.
pub fn weighted_distances(
    g: &Graph,
    start: NodeId,
    weight: impl Fn(EdgeId) -> f64,
) -> Vec<Option<f64>> {
    let mut out: Vec<Option<f64>> = vec![None; g.node_bound()];
    if !g.contains_node(start) {
        return out;
    }
    let mut dist = vec![f64::INFINITY; g.node_bound()];
    dist[start.index()] = 0.0;
    // Max-heap over (negated distance bits, id): total_cmp ordering without
    // a wrapper type. Distances are non-negative, so bit order is value
    // order.
    let mut heap = std::collections::BinaryHeap::new();
    heap.push((std::cmp::Reverse(0.0f64.to_bits()), start));
    while let Some((std::cmp::Reverse(bits), v)) = heap.pop() {
        let d = f64::from_bits(bits);
        if d > dist[v.index()] {
            continue;
        }
        for (w, e) in g.undirected_neighbors(v) {
            let nd = d + weight(e);
            if nd < dist[w.index()] {
                dist[w.index()] = nd;
                heap.push((std::cmp::Reverse(nd.to_bits()), w));
            }
        }
    }
    for v in g.node_ids() {
        if dist[v.index()].is_finite() {
            out[v.index()] = Some(dist[v.index()]);
        }
    }
    out
}

/// Eccentricity of `v`: the maximum hop distance to any reachable node.
pub fn eccentricity(g: &Graph, v: NodeId) -> Option<usize> {
    if !g.contains_node(v) {
        return None;
    }
    bfs_distances(g, v, usize::MAX)
        .into_iter()
        .flatten()
        .max()
}

/// Exact diameter (longest shortest path) of the largest component, by
/// running BFS from every node. `None` for empty graphs.
pub fn diameter(g: &Graph) -> Option<usize> {
    g.node_ids().filter_map(|v| eccentricity(g, v)).max()
}

/// Average shortest-path length over all ordered reachable pairs.
/// `None` when there are no reachable pairs.
pub fn average_path_length(g: &Graph) -> Option<f64> {
    let mut total = 0usize;
    let mut pairs = 0usize;
    for v in g.node_ids() {
        for d in bfs_distances(g, v, usize::MAX).into_iter().flatten() {
            if d > 0 {
                total += d;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        None
    } else {
        Some(total as f64 / pairs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn line5() -> Graph {
        GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("c", "d", "-")
            .edge("d", "e", "-")
            .build()
    }

    #[test]
    fn shortest_path_on_line() {
        let g = line5();
        let p = shortest_path(&g, NodeId(0), NodeId(4)).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p[0], NodeId(0));
        assert_eq!(p[4], NodeId(4));
    }

    #[test]
    fn shortest_path_prefers_shortcut() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("a", "c", "-")
            .build();
        let p = shortest_path(&g, NodeId(0), NodeId(2)).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn unreachable_is_none() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .node("z", "Z")
            .build();
        assert!(shortest_path(&g, NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn trivial_path_to_self() {
        let g = line5();
        assert_eq!(shortest_path(&g, NodeId(2), NodeId(2)), Some(vec![NodeId(2)]));
    }

    #[test]
    fn diameter_and_eccentricity() {
        let g = line5();
        assert_eq!(diameter(&g), Some(4));
        assert_eq!(eccentricity(&g, NodeId(2)), Some(2));
        assert_eq!(eccentricity(&g, NodeId(0)), Some(4));
    }

    #[test]
    fn average_path_length_of_triangle() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("c", "a", "-")
            .build();
        assert_eq!(average_path_length(&g), Some(1.0));
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = crate::Graph::undirected();
        assert_eq!(diameter(&g), None);
        assert_eq!(average_path_length(&g), None);
    }
}
