//! Small-motif enumeration and census.
//!
//! The graph sequentialiser's multi-level mode (paper §II-B, following RUM
//! \[13\]) contracts motif instances into super-nodes. This module enumerates
//! the motif instances: triangles, wedges, and maximal cliques up to a size
//! cap, plus a 3-node census used by the understanding APIs.

use crate::graph::{Graph, NodeId};
use std::collections::HashSet;

/// All triangles as sorted node triples, each reported once.
pub fn enumerate_triangles(g: &Graph) -> Vec<[NodeId; 3]> {
    let mut sets: Vec<HashSet<NodeId>> = vec![HashSet::new(); g.node_bound()];
    for e in g.edge_ids() {
        let (a, b) = g.edge_endpoints(e).expect("live edge");
        sets[a.index()].insert(b);
        sets[b.index()].insert(a);
    }
    let mut out = Vec::new();
    for e in g.edge_ids() {
        let (a, b) = g.edge_endpoints(e).expect("live edge");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        for &w in sets[lo.index()].intersection(&sets[hi.index()]) {
            if w > hi {
                out.push([lo, hi, w]);
            }
        }
    }
    out.sort();
    out
}

/// 3-node connected-subgraph census: `(wedges, triangles)`.
///
/// A wedge is an open triple (path of length 2 whose endpoints are not
/// adjacent).
pub fn triad_census(g: &Graph) -> (usize, usize) {
    let mut sets: Vec<HashSet<NodeId>> = vec![HashSet::new(); g.node_bound()];
    for e in g.edge_ids() {
        let (a, b) = g.edge_endpoints(e).expect("live edge");
        sets[a.index()].insert(b);
        sets[b.index()].insert(a);
    }
    let triangles = enumerate_triangles(g).len();
    let paths: usize = g
        .node_ids()
        .map(|v| {
            let k = sets[v.index()].len();
            k * k.saturating_sub(1) / 2
        })
        .sum();
    // Each triangle contributes 3 closed triples; the rest are wedges.
    (paths - 3 * triangles, triangles)
}

/// Greedy maximal-clique cover: repeatedly grows a clique from the
/// highest-degree unassigned node, assigning each node to at most one clique.
/// Cliques smaller than `min_size` are not reported. This is the motif set the
/// sequentialiser contracts into super-nodes.
pub fn greedy_clique_cover(g: &Graph, min_size: usize) -> Vec<Vec<NodeId>> {
    let mut sets: Vec<HashSet<NodeId>> = vec![HashSet::new(); g.node_bound()];
    for e in g.edge_ids() {
        let (a, b) = g.edge_endpoints(e).expect("live edge");
        sets[a.index()].insert(b);
        sets[b.index()].insert(a);
    }
    let mut order: Vec<NodeId> = g.node_ids().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(sets[v.index()].len()));
    let mut assigned = vec![false; g.node_bound()];
    let mut cliques = Vec::new();
    for &seed in &order {
        if assigned[seed.index()] {
            continue;
        }
        let mut clique = vec![seed];
        // Candidates: unassigned neighbours of the seed, densest first.
        let mut cands: Vec<NodeId> = sets[seed.index()]
            .iter()
            .copied()
            .filter(|&w| !assigned[w.index()])
            .collect();
        cands.sort_by_key(|&v| (std::cmp::Reverse(sets[v.index()].len()), v));
        for w in cands {
            if clique.iter().all(|&c| sets[w.index()].contains(&c)) {
                clique.push(w);
            }
        }
        if clique.len() >= min_size {
            for &v in &clique {
                assigned[v.index()] = true;
            }
            clique.sort();
            cliques.push(clique);
        }
    }
    cliques.sort();
    cliques
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_triangles_sharing_edge() -> Graph {
        // diamond: a-b-c-a and b-c-d-b
        GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("c", "a", "-")
            .edge("b", "d", "-")
            .edge("c", "d", "-")
            .build()
    }

    #[test]
    fn enumerates_both_triangles() {
        let g = two_triangles_sharing_edge();
        let tris = enumerate_triangles(&g);
        assert_eq!(tris.len(), 2);
        assert_eq!(tris[0], [NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(tris[1], [NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn census_of_diamond() {
        let g = two_triangles_sharing_edge();
        let (wedges, triangles) = triad_census(&g);
        assert_eq!(triangles, 2);
        // total connected triples: sum k(k-1)/2 = 1+3+3+1 = 8; wedges = 8-6 = 2
        assert_eq!(wedges, 2);
    }

    #[test]
    fn clique_cover_finds_triangle() {
        let g = two_triangles_sharing_edge();
        let cliques = greedy_clique_cover(&g, 3);
        assert_eq!(cliques.len(), 1, "nodes are disjointly assigned");
        assert_eq!(cliques[0].len(), 3);
    }

    #[test]
    fn clique_cover_respects_min_size() {
        let g = GraphBuilder::undirected().edge("a", "b", "-").build();
        assert!(greedy_clique_cover(&g, 3).is_empty());
        assert_eq!(greedy_clique_cover(&g, 2).len(), 1);
    }

    #[test]
    fn clique_cover_of_two_disjoint_triangles() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("c", "a", "-")
            .edge("x", "y", "-")
            .edge("y", "z", "-")
            .edge("z", "x", "-")
            .build();
        let cliques = greedy_clique_cover(&g, 3);
        assert_eq!(cliques.len(), 2);
    }

    #[test]
    fn triangle_free_graph() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .build();
        assert!(enumerate_triangles(&g).is_empty());
        assert_eq!(triad_census(&g), (1, 0));
    }
}
