//! Centrality measures: degree, PageRank, betweenness (Brandes).

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Degree centrality: total degree / (n − 1). Zero for singleton graphs.
pub fn degree_centrality(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    let mut out = vec![0.0; g.node_bound()];
    if n <= 1 {
        return out;
    }
    for v in g.node_ids() {
        out[v.index()] = g.total_degree(v) as f64 / (n - 1) as f64;
    }
    out
}

/// PageRank with uniform teleport. Directed graphs follow edge direction;
/// undirected graphs treat each edge both ways. Dangling mass is
/// redistributed uniformly. Returns per-slot scores summing to ~1.
pub fn pagerank(g: &Graph, damping: f64, iterations: usize) -> Vec<f64> {
    let nodes: Vec<NodeId> = g.node_ids().collect();
    let n = nodes.len();
    let mut rank = vec![0.0; g.node_bound()];
    if n == 0 {
        return rank;
    }
    let init = 1.0 / n as f64;
    for &v in &nodes {
        rank[v.index()] = init;
    }
    // `Graph::degree` already returns out-degree for directed graphs and
    // total degree for undirected ones, which is exactly the mass-splitting
    // denominator PageRank needs in both cases.
    let out_deg = |v: NodeId| -> usize { g.degree(v) };
    for _ in 0..iterations {
        let mut next = vec![0.0; g.node_bound()];
        let mut dangling = 0.0;
        for &v in &nodes {
            let d = out_deg(v);
            if d == 0 {
                dangling += rank[v.index()];
                continue;
            }
            let share = rank[v.index()] / d as f64;
            for (w, _) in g.neighbors(v) {
                next[w.index()] += share;
            }
        }
        let teleport = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        for &v in &nodes {
            rank[v.index()] = teleport + damping * next[v.index()];
        }
    }
    rank
}

/// Betweenness centrality via Brandes' algorithm (unit weights, undirected
/// semantics). Undirected pair counts are halved as usual.
pub fn betweenness(g: &Graph) -> Vec<f64> {
    let bound = g.node_bound();
    let mut bc = vec![0.0; bound];
    for s in g.node_ids() {
        // Single-source shortest-path DAG.
        let mut stack: Vec<NodeId> = Vec::new();
        let mut pred: Vec<Vec<NodeId>> = vec![Vec::new(); bound];
        let mut sigma = vec![0.0; bound];
        let mut dist: Vec<i64> = vec![-1; bound];
        sigma[s.index()] = 1.0;
        dist[s.index()] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for (w, _) in g.undirected_neighbors(v) {
                if dist[w.index()] < 0 {
                    dist[w.index()] = dist[v.index()] + 1;
                    queue.push_back(w);
                }
                if dist[w.index()] == dist[v.index()] + 1 {
                    sigma[w.index()] += sigma[v.index()];
                    pred[w.index()].push(v);
                }
            }
        }
        // Back-propagation of dependencies.
        let mut delta = vec![0.0; bound];
        while let Some(w) = stack.pop() {
            for &v in &pred[w.index()] {
                delta[v.index()] +=
                    sigma[v.index()] / sigma[w.index()] * (1.0 + delta[w.index()]);
            }
            if w != s {
                bc[w.index()] += delta[w.index()];
            }
        }
    }
    if !g.is_directed() {
        for b in bc.iter_mut() {
            *b /= 2.0;
        }
    }
    bc
}

/// Closeness centrality: `(reachable − 1) / Σ distances`, scaled by the
/// reachable fraction (the Wasserman–Faust formula for disconnected graphs).
/// Isolated nodes score 0.
pub fn closeness(g: &Graph) -> Vec<f64> {
    use crate::algo::traversal::bfs_distances;
    let n = g.node_count();
    let mut out = vec![0.0; g.node_bound()];
    if n <= 1 {
        return out;
    }
    for v in g.node_ids() {
        let dists = bfs_distances(g, v, usize::MAX);
        let mut sum = 0usize;
        let mut reachable = 0usize;
        for d in dists.into_iter().flatten() {
            if d > 0 {
                sum += d;
                reachable += 1;
            }
        }
        if sum > 0 {
            out[v.index()] =
                (reachable as f64 / (n - 1) as f64) * (reachable as f64 / sum as f64);
        }
    }
    out
}

/// Indices of the `k` highest-scoring live nodes, ties broken by node id.
pub fn top_k(g: &Graph, scores: &[f64], k: usize) -> Vec<(NodeId, f64)> {
    let mut pairs: Vec<(NodeId, f64)> = g
        .node_ids()
        .map(|v| (v, scores.get(v.index()).copied().unwrap_or(0.0)))
        .collect();
    pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn star() -> Graph {
        GraphBuilder::undirected()
            .edge("c", "a", "-")
            .edge("c", "b", "-")
            .edge("c", "d", "-")
            .edge("c", "e", "-")
            .build()
    }

    #[test]
    fn degree_centrality_of_star() {
        let g = star();
        let dc = degree_centrality(&g);
        assert_eq!(dc[0], 1.0); // center
        assert_eq!(dc[1], 0.25);
    }

    #[test]
    fn pagerank_sums_to_one_and_favours_hub() {
        let g = star();
        let pr = pagerank(&g, 0.85, 50);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(pr[0] > pr[1] * 2.0);
    }

    #[test]
    fn pagerank_handles_dangling_nodes() {
        let g = GraphBuilder::directed().edge("a", "b", "r").build();
        let pr = pagerank(&g, 0.85, 100);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(pr[1] > pr[0]);
    }

    #[test]
    fn betweenness_of_path() {
        // a-b-c: b lies on the single a↔c shortest path.
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .build();
        let bc = betweenness(&g);
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[1], 1.0);
        assert_eq!(bc[2], 0.0);
    }

    #[test]
    fn betweenness_of_bridge() {
        // two triangles joined at a bridge: bridge endpoints score highest
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("c", "a", "-")
            .edge("c", "d", "-")
            .edge("d", "e", "-")
            .edge("e", "f", "-")
            .edge("f", "d", "-")
            .build();
        let bc = betweenness(&g);
        let c = bc[2];
        let d = bc[3];
        assert!(c > bc[0] && d > bc[4], "bridge endpoints dominate: {bc:?}");
    }

    #[test]
    fn closeness_of_star_center_is_highest() {
        let g = star();
        let c = closeness(&g);
        assert_eq!(c[0], 1.0); // center reaches everyone in 1 hop
        assert!((c[1] - 4.0 / 7.0).abs() < 1e-12); // leaf: 4 reachable, Σd = 1+2+2+2
        assert!(c[0] > c[1]);
    }

    #[test]
    fn closeness_of_disconnected_component_scales_down() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .node("z", "Z")
            .build();
        let c = closeness(&g);
        // a reaches 1 of 2 other nodes at distance 1: (1/2)·(1/1) = 0.5
        assert_eq!(c[0], 0.5);
        assert_eq!(c[2], 0.0);
    }

    #[test]
    fn top_k_orders_by_score_then_id() {
        let g = star();
        let pr = pagerank(&g, 0.85, 30);
        let top = top_k(&g, &pr, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, NodeId(0));
        // leaves tie; the smallest id wins second place
        assert_eq!(top[1].0, NodeId(1));
    }

    #[test]
    fn empty_graph() {
        let g = crate::Graph::undirected();
        assert!(pagerank(&g, 0.85, 10).is_empty());
        assert!(betweenness(&g).is_empty());
    }
}
