//! Connected components (undirected semantics).

use crate::graph::{Graph, NodeId};

/// Result of [`connected_components`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Component index per node slot (`None` for removed slots).
    pub assignment: Vec<Option<usize>>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// The component containing `v`, if `v` is live.
    pub fn component_of(&self, v: NodeId) -> Option<usize> {
        self.assignment.get(v.index()).copied().flatten()
    }

    /// Nodes grouped by component, ordered by component index.
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (i, c) in self.assignment.iter().enumerate() {
            if let Some(c) = c {
                groups[*c].push(NodeId(i as u32));
            }
        }
        groups
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest_size(&self) -> usize {
        self.groups().iter().map(|g| g.len()).max().unwrap_or(0)
    }
}

/// Computes connected components by repeated BFS.
pub fn connected_components(g: &Graph) -> Components {
    let mut assignment: Vec<Option<usize>> = vec![None; g.node_bound()];
    let mut count = 0;
    for start in g.node_ids() {
        if assignment[start.index()].is_some() {
            continue;
        }
        let mut queue = std::collections::VecDeque::new();
        assignment[start.index()] = Some(count);
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for (w, _) in g.undirected_neighbors(v) {
                if assignment[w.index()].is_none() {
                    assignment[w.index()] = Some(count);
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    Components { assignment, count }
}

/// True if all live nodes are mutually reachable (empty graphs count as
/// connected).
pub fn is_connected(g: &Graph) -> bool {
    connected_components(g).count <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn two_components_detected() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("c", "d", "-")
            .build();
        let cc = connected_components(&g);
        assert_eq!(cc.count, 2);
        assert_eq!(cc.component_of(NodeId(0)), cc.component_of(NodeId(1)));
        assert_ne!(cc.component_of(NodeId(0)), cc.component_of(NodeId(2)));
        assert_eq!(cc.largest_size(), 2);
        assert!(!is_connected(&g));
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let mut g = crate::Graph::undirected();
        g.add_node("x");
        g.add_node("y");
        let cc = connected_components(&g);
        assert_eq!(cc.count, 2);
        assert_eq!(cc.groups().len(), 2);
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = crate::Graph::undirected();
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).largest_size(), 0);
    }

    #[test]
    fn removed_nodes_are_unassigned() {
        let mut g = crate::Graph::undirected();
        let a = g.add_node("a");
        g.add_node("b");
        g.remove_node(a).unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.count, 1);
        assert_eq!(cc.component_of(a), None);
    }

    #[test]
    fn directed_graph_uses_weak_connectivity() {
        let g = GraphBuilder::directed()
            .edge("a", "b", "r")
            .edge("c", "b", "r")
            .build();
        assert!(is_connected(&g));
    }
}
