//! Breadth-first and depth-first traversal.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// BFS visit order from `start`, following undirected adjacency.
pub fn bfs_order(g: &Graph, start: NodeId) -> Vec<NodeId> {
    let mut order = Vec::new();
    if !g.contains_node(start) {
        return order;
    }
    let mut seen = vec![false; g.node_bound()];
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for (w, _) in g.undirected_neighbors(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

/// Hop distances from `start` up to `max_hops` (inclusive); unreachable or
/// too-far nodes get `None`. `max_hops = usize::MAX` means unbounded.
pub fn bfs_distances(g: &Graph, start: NodeId, max_hops: usize) -> Vec<Option<usize>> {
    let mut dist: Vec<Option<usize>> = vec![None; g.node_bound()];
    if !g.contains_node(start) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[start.index()] = Some(0);
    queue.push_back((start, 0usize));
    while let Some((v, d)) = queue.pop_front() {
        if d == max_hops {
            continue;
        }
        for (w, _) in g.undirected_neighbors(v) {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(d + 1);
                queue.push_back((w, d + 1));
            }
        }
    }
    dist
}

/// Iterative DFS preorder from `start`, following undirected adjacency.
///
/// Neighbours are expanded in reverse adjacency order so the visit order
/// matches the classic recursive formulation.
pub fn dfs_order(g: &Graph, start: NodeId) -> Vec<NodeId> {
    let mut order = Vec::new();
    if !g.contains_node(start) {
        return order;
    }
    let mut seen = vec![false; g.node_bound()];
    let mut stack = vec![start];
    // Scratch buffer reused across nodes: one allocation for the whole
    // traversal instead of one per visited node.
    let mut nbrs: Vec<NodeId> = Vec::new();
    while let Some(v) = stack.pop() {
        if seen[v.index()] {
            continue;
        }
        seen[v.index()] = true;
        order.push(v);
        nbrs.clear();
        nbrs.extend(g.undirected_neighbors(v).map(|(w, _)| w));
        nbrs.reverse();
        for &w in &nbrs {
            if !seen[w.index()] {
                stack.push(w);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn line4() -> Graph {
        GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("c", "d", "-")
            .build()
    }

    #[test]
    fn bfs_visits_in_level_order() {
        let g = line4();
        let order = bfs_order(&g, NodeId(0));
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn bfs_distances_bounded() {
        let g = line4();
        let d = bfs_distances(&g, NodeId(0), 2);
        assert_eq!(d[0], Some(0));
        assert_eq!(d[2], Some(2));
        assert_eq!(d[3], None, "beyond the hop bound");
        let unbounded = bfs_distances(&g, NodeId(0), usize::MAX);
        assert_eq!(unbounded[3], Some(3));
    }

    #[test]
    fn dfs_goes_deep_first() {
        // star with one long arm: a-b, a-c, c-d
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("a", "c", "-")
            .edge("c", "d", "-")
            .build();
        let order = dfs_order(&g, NodeId(0));
        assert_eq!(order[0], NodeId(0));
        assert_eq!(order.len(), 4);
        // b (id 1) is visited before backtracking to c's subtree or vice versa;
        // either way all nodes appear exactly once.
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn traversal_respects_directed_edges_as_undirected() {
        let g = GraphBuilder::directed().edge("a", "b", "r").build();
        // Starting from the *target*, BFS still reaches the source.
        assert_eq!(bfs_order(&g, NodeId(1)).len(), 2);
    }

    #[test]
    fn missing_start_yields_empty() {
        let g = line4();
        assert!(bfs_order(&g, NodeId(99)).is_empty());
        assert!(dfs_order(&g, NodeId(99)).is_empty());
    }
}
