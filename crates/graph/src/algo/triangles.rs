//! Triangle counting and clustering coefficients.

use crate::graph::{Graph, NodeId};
use std::collections::HashSet;

fn neighbor_sets(g: &Graph) -> Vec<HashSet<NodeId>> {
    let mut sets = vec![HashSet::new(); g.node_bound()];
    for (a, b) in g.edge_ids().filter_map(|e| g.edge_endpoints(e).ok()) {
        sets[a.index()].insert(b);
        sets[b.index()].insert(a);
    }
    sets
}

/// Counts triangles (unordered node triples with all three edges present).
/// Directed graphs are treated as undirected.
pub fn triangle_count(g: &Graph) -> usize {
    let sets = neighbor_sets(g);
    let mut count = 0usize;
    for (a, b) in g.edge_ids().filter_map(|e| g.edge_endpoints(e).ok()) {
        // Count common neighbours w with w > max(a, b) to count each triangle
        // exactly once per its lexicographically largest vertex.
        let hi = a.max(b);
        count += sets[a.index()]
            .intersection(&sets[b.index()])
            .filter(|&&w| w > hi)
            .count();
    }
    count
}

/// Per-node local clustering coefficient: fraction of a node's neighbour
/// pairs that are themselves adjacent. Nodes of degree < 2 get 0.
pub fn local_clustering(g: &Graph) -> Vec<f64> {
    let sets = neighbor_sets(g);
    let mut out = vec![0.0; g.node_bound()];
    for v in g.node_ids() {
        let nbrs: Vec<NodeId> = sets[v.index()].iter().copied().collect();
        let k = nbrs.len();
        if k < 2 {
            continue;
        }
        let mut links = 0usize;
        for i in 0..k {
            for j in (i + 1)..k {
                if sets[nbrs[i].index()].contains(&nbrs[j]) {
                    links += 1;
                }
            }
        }
        out[v.index()] = 2.0 * links as f64 / (k * (k - 1)) as f64;
    }
    out
}

/// Global clustering coefficient (transitivity):
/// `3 × triangles / number of connected triples`.
pub fn global_clustering_coefficient(g: &Graph) -> f64 {
    let sets = neighbor_sets(g);
    let triples: usize = g
        .node_ids()
        .map(|v| {
            let k = sets[v.index()].len();
            k * k.saturating_sub(1) / 2
        })
        .sum();
    if triples == 0 {
        0.0
    } else {
        3.0 * triangle_count(g) as f64 / triples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> Graph {
        GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("c", "a", "-")
            .edge("c", "d", "-")
            .build()
    }

    #[test]
    fn counts_single_triangle() {
        assert_eq!(triangle_count(&triangle_plus_tail()), 1);
    }

    #[test]
    fn k4_has_four_triangles() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("a", "c", "-")
            .edge("a", "d", "-")
            .edge("b", "c", "-")
            .edge("b", "d", "-")
            .edge("c", "d", "-")
            .build();
        assert_eq!(triangle_count(&g), 4);
        assert_eq!(global_clustering_coefficient(&g), 1.0);
    }

    #[test]
    fn tree_has_no_triangles() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("a", "c", "-")
            .build();
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(global_clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn local_clustering_values() {
        let g = triangle_plus_tail();
        let lc = local_clustering(&g);
        // a: neighbours {b, c}, edge (b,c) present → 1.0
        assert_eq!(lc[0], 1.0);
        // c: neighbours {a, b, d}, 1 of 3 pairs linked → 1/3
        assert!((lc[2] - 1.0 / 3.0).abs() < 1e-12);
        // d: degree 1 → 0
        assert_eq!(lc[3], 0.0);
    }

    #[test]
    fn directed_triangle_counts_as_undirected() {
        let g = GraphBuilder::directed()
            .edge("a", "b", "r")
            .edge("b", "c", "r")
            .edge("a", "c", "r")
            .build();
        assert_eq!(triangle_count(&g), 1);
    }
}
