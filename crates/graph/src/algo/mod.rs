//! Graph algorithms backing the ChatGraph analysis APIs.
//!
//! Each submodule is a self-contained algorithm family. Unless documented
//! otherwise, algorithms treat directed graphs as undirected (they traverse
//! [`crate::Graph::undirected_neighbors`]) because the paper's analysis APIs —
//! community, connectivity, similarity — are defined on the underlying
//! undirected structure.

pub mod bridges;
pub mod centrality;
pub mod community;
pub mod components;
pub mod isomorphism;
pub mod kcore;
pub mod motifs;
pub mod paths;
pub mod stats;
pub mod traversal;
pub mod triangles;
