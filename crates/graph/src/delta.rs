//! Slot-exact graph images and deltas — the durable store's payload codec.
//!
//! [`crate::binary`] re-densifies ids on encode, which is right for the
//! molecule database but wrong for durability: chain results hold stable
//! node/edge ids, so a recovered graph must reproduce the *slot layout* —
//! tombstones included — or replayed chains drift. This module provides:
//!
//! * [`image_to_bytes`] / [`image_from_bytes`] — a lossless snapshot of a
//!   graph's slot arrays (direction, name, every node/edge slot ever
//!   allocated with its `removed` flag). `image_from_bytes(image_to_bytes(g))
//!   == g`, adjacency and all.
//! * [`GraphDelta`] — the ordered op list transforming one graph into a
//!   descendant, computed by a full elementwise slot comparison
//!   ([`GraphDelta::diff`]) and applied at the slot level
//!   ([`GraphDelta::apply`]), bypassing the mutation API's duplicate/
//!   liveness checks (a replayed history may transiently violate them).
//!
//! The diff declines (returns `None`) when `after` is not a slot-level
//! descendant of `before` — bounds shrank, a tombstone resurrected, or an
//! edge's endpoints changed — which cannot happen under incremental
//! mutation (ids are never reused) but can when a caller swaps in an
//! unrelated or compacted graph. Callers fall back to a full image.
//!
//! ```text
//! image := "CGSI" | version u8 | directed u8 | name |
//!          n_node_slots u32 | node_slot… | n_edge_slots u32 | edge_slot…
//! node_slot := removed u8 | label | attrs
//! edge_slot := removed u8 | src u32 | dst u32 | label | attrs
//! delta := n_ops u32 | op…
//! op    := tag u8 | body            (tags in the order of `GraphOp`)
//! ```

use crate::attr::Attrs;
use crate::binary::{
    get_attrs, get_string, get_u32_le, get_u8, put_attrs, put_string, take, BinaryError,
};
use crate::graph::{Direction, EdgeId, Graph, NodeId};

const IMAGE_MAGIC: &[u8; 4] = b"CGSI";
const IMAGE_VERSION: u8 = 1;

/// Smallest encoded node slot: removed (1) + empty label (4) + attrs (2).
const MIN_NODE_SLOT_BYTES: usize = 7;
/// Smallest encoded edge slot: removed (1) + src/dst (8) + label (4) + attrs (2).
const MIN_EDGE_SLOT_BYTES: usize = 15;
/// Smallest encoded op: tag (1) + a u32 id (4).
const MIN_OP_BYTES: usize = 5;

/// One slot-level mutation. Ids are implicit for the `Add*` ops (slots only
/// ever append), explicit for edits of existing slots.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphOp {
    /// Append a node slot (id = current node bound). `removed` is the
    /// slot's *final* state, so a node added and removed within one commit
    /// window still claims its id.
    AddNode { label: String, attrs: Attrs, removed: bool },
    /// Append an edge slot (id = current edge bound).
    AddEdge { src: u32, dst: u32, label: String, attrs: Attrs, removed: bool },
    /// Tombstone an existing node slot.
    TombstoneNode { id: u32 },
    /// Tombstone an existing edge slot.
    TombstoneEdge { id: u32 },
    /// Replace a node slot's label.
    NodeLabel { id: u32, label: String },
    /// Replace a node slot's attributes wholesale.
    NodeAttrs { id: u32, attrs: Attrs },
    /// Replace an edge slot's label.
    EdgeLabel { id: u32, label: String },
    /// Replace an edge slot's attributes wholesale.
    EdgeAttrs { id: u32, attrs: Attrs },
    /// Rename the graph.
    Rename { name: String },
}

/// An ordered op list transforming a graph into a slot-level descendant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GraphDelta {
    ops: Vec<GraphOp>,
}

/// Why a delta could not be applied to a base graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An op referenced a slot the base graph does not have.
    BadSlot(u32),
    /// An appended edge referenced an out-of-range node slot.
    BadEndpoint(u32),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::BadSlot(id) => write!(f, "delta op references missing slot {id}"),
            DeltaError::BadEndpoint(id) => write!(f, "delta edge references missing node {id}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl GraphDelta {
    /// The ops, in application order.
    pub fn ops(&self) -> &[GraphOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Computes the op list turning `before` into `after` by elementwise
    /// slot comparison, or `None` when `after` is not a slot-level
    /// descendant (direction changed, bounds shrank, a tombstone came back
    /// to life, or an edge's endpoints moved) — the caller then persists a
    /// full image instead.
    pub fn diff(before: &Graph, after: &Graph) -> Option<GraphDelta> {
        if before.direction() != after.direction() {
            return None;
        }
        let (bn, an) = (before.node_slots(), after.node_slots());
        let (be, ae) = (before.edge_slots(), after.edge_slots());
        if an.len() < bn.len() || ae.len() < be.len() {
            return None;
        }
        let mut ops = Vec::new();
        if before.name() != after.name() {
            ops.push(GraphOp::Rename { name: after.name().to_owned() });
        }
        // Surviving node slots: label/attr edits and tombstonings.
        for (i, (b, a)) in bn.iter().zip(an).enumerate() {
            if b.removed && !a.removed {
                return None; // ids are never reused; this is no descendant
            }
            if !b.removed {
                if b.label != a.label {
                    ops.push(GraphOp::NodeLabel { id: i as u32, label: a.label.clone() });
                }
                if b.attrs != a.attrs {
                    ops.push(GraphOp::NodeAttrs { id: i as u32, attrs: a.attrs.clone() });
                }
            }
            if !b.removed && a.removed {
                ops.push(GraphOp::TombstoneNode { id: i as u32 });
            }
        }
        // Surviving edge slots.
        for (i, (b, a)) in be.iter().zip(ae).enumerate() {
            if (b.removed && !a.removed) || b.src != a.src || b.dst != a.dst {
                return None;
            }
            if !b.removed {
                if b.label != a.label {
                    ops.push(GraphOp::EdgeLabel { id: i as u32, label: a.label.clone() });
                }
                if b.attrs != a.attrs {
                    ops.push(GraphOp::EdgeAttrs { id: i as u32, attrs: a.attrs.clone() });
                }
            }
            if !b.removed && a.removed {
                ops.push(GraphOp::TombstoneEdge { id: i as u32 });
            }
        }
        // Appended slots, with their final removed state.
        for a in &an[bn.len()..] {
            ops.push(GraphOp::AddNode {
                label: a.label.clone(),
                attrs: a.attrs.clone(),
                removed: a.removed,
            });
        }
        for a in &ae[be.len()..] {
            ops.push(GraphOp::AddEdge {
                src: a.src.0,
                dst: a.dst.0,
                label: a.label.clone(),
                attrs: a.attrs.clone(),
                removed: a.removed,
            });
        }
        Some(GraphDelta { ops })
    }

    /// Applies the delta to `base`, returning the descendant graph.
    ///
    /// Works at the slot level (no duplicate-edge or liveness checks — a
    /// replayed history may transiently violate them) and rebuilds
    /// adjacency canonically, so `diff(b, a).apply(b) == a` exactly.
    pub fn apply(&self, base: &Graph) -> Result<Graph, DeltaError> {
        let mut name = base.name().to_owned();
        let mut nodes = base.node_slots().to_vec();
        let mut edges = base.edge_slots().to_vec();
        for op in &self.ops {
            match op {
                GraphOp::AddNode { label, attrs, removed } => {
                    nodes.push(crate::graph::NodeSlot {
                        label: label.clone(),
                        attrs: attrs.clone(),
                        removed: *removed,
                    });
                }
                GraphOp::AddEdge { src, dst, label, attrs, removed } => {
                    if *src as usize >= nodes.len() {
                        return Err(DeltaError::BadEndpoint(*src));
                    }
                    if *dst as usize >= nodes.len() {
                        return Err(DeltaError::BadEndpoint(*dst));
                    }
                    edges.push(crate::graph::EdgeSlot {
                        src: NodeId(*src),
                        dst: NodeId(*dst),
                        label: label.clone(),
                        attrs: attrs.clone(),
                        removed: *removed,
                    });
                }
                GraphOp::TombstoneNode { id } => {
                    let slot = nodes
                        .get_mut(*id as usize)
                        .ok_or(DeltaError::BadSlot(*id))?;
                    slot.removed = true;
                }
                GraphOp::TombstoneEdge { id } => {
                    let slot = edges
                        .get_mut(*id as usize)
                        .ok_or(DeltaError::BadSlot(*id))?;
                    slot.removed = true;
                }
                GraphOp::NodeLabel { id, label } => {
                    nodes.get_mut(*id as usize).ok_or(DeltaError::BadSlot(*id))?.label =
                        label.clone();
                }
                GraphOp::NodeAttrs { id, attrs } => {
                    nodes.get_mut(*id as usize).ok_or(DeltaError::BadSlot(*id))?.attrs =
                        attrs.clone();
                }
                GraphOp::EdgeLabel { id, label } => {
                    edges.get_mut(*id as usize).ok_or(DeltaError::BadSlot(*id))?.label =
                        label.clone();
                }
                GraphOp::EdgeAttrs { id, attrs } => {
                    edges.get_mut(*id as usize).ok_or(DeltaError::BadSlot(*id))?.attrs =
                        attrs.clone();
                }
                GraphOp::Rename { name: n } => name = n.clone(),
            }
        }
        Ok(Graph::from_slots(base.direction(), name, nodes, edges))
    }

    /// Encodes the delta (no framing — the store wraps payloads in
    /// length-prefixed, CRC-checksummed records).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + 32 * self.ops.len());
        buf.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
        for op in &self.ops {
            match op {
                GraphOp::AddNode { label, attrs, removed } => {
                    buf.push(0);
                    buf.push(*removed as u8);
                    put_string(&mut buf, label);
                    put_attrs(&mut buf, attrs);
                }
                GraphOp::AddEdge { src, dst, label, attrs, removed } => {
                    buf.push(1);
                    buf.push(*removed as u8);
                    buf.extend_from_slice(&src.to_le_bytes());
                    buf.extend_from_slice(&dst.to_le_bytes());
                    put_string(&mut buf, label);
                    put_attrs(&mut buf, attrs);
                }
                GraphOp::TombstoneNode { id } => {
                    buf.push(2);
                    buf.extend_from_slice(&id.to_le_bytes());
                }
                GraphOp::TombstoneEdge { id } => {
                    buf.push(3);
                    buf.extend_from_slice(&id.to_le_bytes());
                }
                GraphOp::NodeLabel { id, label } => {
                    buf.push(4);
                    buf.extend_from_slice(&id.to_le_bytes());
                    put_string(&mut buf, label);
                }
                GraphOp::NodeAttrs { id, attrs } => {
                    buf.push(5);
                    buf.extend_from_slice(&id.to_le_bytes());
                    put_attrs(&mut buf, attrs);
                }
                GraphOp::EdgeLabel { id, label } => {
                    buf.push(6);
                    buf.extend_from_slice(&id.to_le_bytes());
                    put_string(&mut buf, label);
                }
                GraphOp::EdgeAttrs { id, attrs } => {
                    buf.push(7);
                    buf.extend_from_slice(&id.to_le_bytes());
                    put_attrs(&mut buf, attrs);
                }
                GraphOp::Rename { name } => {
                    buf.push(8);
                    put_string(&mut buf, name);
                }
            }
        }
        buf
    }

    /// Decodes a delta encoded by [`GraphDelta::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<GraphDelta, BinaryError> {
        let mut buf = data;
        let n_ops = get_u32_le(&mut buf)? as usize;
        if n_ops > buf.len() / MIN_OP_BYTES {
            return Err(BinaryError::Truncated);
        }
        let mut ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            let op = match get_u8(&mut buf)? {
                0 => {
                    let removed = get_u8(&mut buf)? != 0;
                    GraphOp::AddNode {
                        label: get_string(&mut buf)?,
                        attrs: get_attrs(&mut buf)?,
                        removed,
                    }
                }
                1 => {
                    let removed = get_u8(&mut buf)? != 0;
                    GraphOp::AddEdge {
                        src: get_u32_le(&mut buf)?,
                        dst: get_u32_le(&mut buf)?,
                        label: get_string(&mut buf)?,
                        attrs: get_attrs(&mut buf)?,
                        removed,
                    }
                }
                2 => GraphOp::TombstoneNode { id: get_u32_le(&mut buf)? },
                3 => GraphOp::TombstoneEdge { id: get_u32_le(&mut buf)? },
                4 => GraphOp::NodeLabel {
                    id: get_u32_le(&mut buf)?,
                    label: get_string(&mut buf)?,
                },
                5 => GraphOp::NodeAttrs {
                    id: get_u32_le(&mut buf)?,
                    attrs: get_attrs(&mut buf)?,
                },
                6 => GraphOp::EdgeLabel {
                    id: get_u32_le(&mut buf)?,
                    label: get_string(&mut buf)?,
                },
                7 => GraphOp::EdgeAttrs {
                    id: get_u32_le(&mut buf)?,
                    attrs: get_attrs(&mut buf)?,
                },
                8 => GraphOp::Rename { name: get_string(&mut buf)? },
                other => return Err(BinaryError::BadTag(other)),
            };
            ops.push(op);
        }
        Ok(GraphDelta { ops })
    }
}

/// Encodes a slot-exact image of the graph (tombstones included), so that
/// `image_from_bytes(image_to_bytes(g)) == g` — adjacency, ids and all.
pub fn image_to_bytes(g: &Graph) -> Vec<u8> {
    let mut buf =
        Vec::with_capacity(64 + 32 * g.node_bound() + 24 * g.edge_bound());
    buf.extend_from_slice(IMAGE_MAGIC);
    buf.push(IMAGE_VERSION);
    buf.push(g.is_directed() as u8);
    put_string(&mut buf, g.name());
    let nodes = g.node_slots();
    buf.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
    for n in nodes {
        buf.push(n.removed as u8);
        put_string(&mut buf, &n.label);
        put_attrs(&mut buf, &n.attrs);
    }
    let edges = g.edge_slots();
    buf.extend_from_slice(&(edges.len() as u32).to_le_bytes());
    for e in edges {
        buf.push(e.removed as u8);
        buf.extend_from_slice(&e.src.0.to_le_bytes());
        buf.extend_from_slice(&e.dst.0.to_le_bytes());
        put_string(&mut buf, &e.label);
        put_attrs(&mut buf, &e.attrs);
    }
    buf
}

/// Decodes a slot-exact image. Counts are validated against the remaining
/// buffer and edge endpoints against the node slots, so corrupt input is
/// rejected without over-allocation or panics.
pub fn image_from_bytes(data: &[u8]) -> Result<Graph, BinaryError> {
    let mut buf = data;
    let header = take(&mut buf, 6).map_err(|_| BinaryError::BadHeader)?;
    if &header[..4] != IMAGE_MAGIC || header[4] != IMAGE_VERSION {
        return Err(BinaryError::BadHeader);
    }
    let direction = if header[5] != 0 { Direction::Directed } else { Direction::Undirected };
    let name = get_string(&mut buf)?;
    let n_nodes = get_u32_le(&mut buf)? as usize;
    if n_nodes > buf.len() / MIN_NODE_SLOT_BYTES {
        return Err(BinaryError::Truncated);
    }
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let removed = get_u8(&mut buf)? != 0;
        nodes.push(crate::graph::NodeSlot {
            label: get_string(&mut buf)?,
            attrs: get_attrs(&mut buf)?,
            removed,
        });
    }
    let n_edges = get_u32_le(&mut buf)? as usize;
    if n_edges > buf.len() / MIN_EDGE_SLOT_BYTES {
        return Err(BinaryError::Truncated);
    }
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        let removed = get_u8(&mut buf)? != 0;
        let src = get_u32_le(&mut buf)?;
        let dst = get_u32_le(&mut buf)?;
        if src as usize >= nodes.len() || dst as usize >= nodes.len() {
            return Err(BinaryError::BadEdge);
        }
        edges.push(crate::graph::EdgeSlot {
            src: NodeId(src),
            dst: NodeId(dst),
            label: get_string(&mut buf)?,
            attrs: get_attrs(&mut buf)?,
            removed,
        });
    }
    Ok(Graph::from_slots(direction, name, nodes, edges))
}

/// The edge id a delta-appended edge would get — exposed so store tests can
/// build expectations without poking at slot internals.
pub fn next_edge_id(g: &Graph) -> EdgeId {
    EdgeId(g.edge_bound() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{knowledge_graph, social_network, KgParams, SocialParams};

    fn mutate(g: &mut Graph) {
        // A representative edit mix: adds, removals (cascading), label and
        // attribute edits, and an add-then-remove inside the same window.
        let a = g.add_node("fresh");
        let b = g.node_ids().next().unwrap();
        let _ = g.add_edge(a, b, "new-edge");
        let victim = g.node_ids().nth(2).unwrap();
        g.remove_node(victim).unwrap();
        let relabel = g.node_ids().nth(1).unwrap();
        g.set_node_label(relabel, "renamed").unwrap();
        g.set_node_attr(relabel, "w", 7i64).unwrap();
        let tmp = g.add_node("ephemeral");
        g.remove_node(tmp).unwrap();
        let first_edge = g.edge_ids().next();
        if let Some(e) = first_edge {
            g.set_edge_label(e, "relabelled").unwrap();
        }
    }

    #[test]
    fn image_roundtrip_is_slot_exact() {
        let mut g = social_network(&SocialParams::default(), 5);
        mutate(&mut g);
        let back = image_from_bytes(&image_to_bytes(&g)).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.node_bound(), g.node_bound());
        assert_eq!(back.edge_bound(), g.edge_bound());
    }

    #[test]
    fn diff_apply_reproduces_the_descendant_exactly() {
        for seed in 0..4u64 {
            let before = social_network(&SocialParams::default(), seed);
            let mut after = before.clone();
            mutate(&mut after);
            let delta = GraphDelta::diff(&before, &after).expect("descendant");
            assert!(!delta.is_empty());
            let replayed = delta.apply(&before).unwrap();
            assert_eq!(replayed, after, "seed {seed}");
        }
    }

    #[test]
    fn diff_apply_handles_directed_graphs() {
        let before = knowledge_graph(&KgParams::default(), 3);
        let mut after = before.clone();
        let ids: Vec<_> = after.node_ids().collect();
        let e = after.add_edge(ids[0], ids[3], "linked").unwrap();
        after.remove_edge(e).unwrap();
        after.remove_node(ids[1]).unwrap();
        let delta = GraphDelta::diff(&before, &after).unwrap();
        assert_eq!(delta.apply(&before).unwrap(), after);
    }

    #[test]
    fn diff_declines_non_descendants() {
        let g = social_network(&SocialParams::default(), 9);
        let mut shrunk = g.clone();
        let victim = shrunk.node_ids().next().unwrap();
        shrunk.remove_node(victim).unwrap();
        let (compacted, _) = shrunk.compact();
        // Compaction shrinks the slot arrays: not a descendant.
        assert!(GraphDelta::diff(&g, &compacted).is_none());
        // A resurrected tombstone is not a descendant either.
        assert!(GraphDelta::diff(&shrunk, &g).is_none());
        // Direction mismatch.
        assert!(GraphDelta::diff(&g, &Graph::directed()).is_none());
    }

    #[test]
    fn delta_codec_roundtrips() {
        let before = social_network(&SocialParams::default(), 2);
        let mut after = before.clone();
        mutate(&mut after);
        after.set_name("renamed-graph");
        let delta = GraphDelta::diff(&before, &after).unwrap();
        let decoded = GraphDelta::from_bytes(&delta.to_bytes()).unwrap();
        assert_eq!(decoded, delta);
        assert_eq!(decoded.apply(&before).unwrap(), after);
    }

    #[test]
    fn corrupt_payloads_are_rejected() {
        let g = social_network(&SocialParams::default(), 1);
        let image = image_to_bytes(&g);
        for cut in 0..image.len() {
            assert!(image_from_bytes(&image[..cut]).is_err(), "cut {cut}");
        }
        let mut delta_bytes = GraphDelta::diff(&g, &g).unwrap().to_bytes();
        delta_bytes[0] = 0xFF; // absurd op count vs remaining bytes
        assert!(GraphDelta::from_bytes(&delta_bytes).is_err());
    }

    #[test]
    fn empty_diff_for_identical_graphs() {
        let g = social_network(&SocialParams::default(), 4);
        let delta = GraphDelta::diff(&g, &g).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.apply(&g).unwrap(), g);
    }

    #[test]
    fn bad_slot_references_error_on_apply() {
        let g = Graph::undirected();
        let delta = GraphDelta {
            ops: vec![GraphOp::TombstoneNode { id: 7 }],
        };
        assert_eq!(delta.apply(&g).unwrap_err(), DeltaError::BadSlot(7));
        let delta = GraphDelta {
            ops: vec![GraphOp::AddEdge {
                src: 0,
                dst: 9,
                label: "x".into(),
                attrs: Attrs::new(),
                removed: false,
            }],
        };
        assert!(matches!(delta.apply(&g), Err(DeltaError::BadEndpoint(_))));
    }
}
