//! Parallel frontier kernels over [`CsrGraph`] snapshots.
//!
//! Each kernel is a flat-array, level-synchronous reimplementation of one
//! of the adjacency-walking algorithms in [`crate::algo`], with the
//! original kept as its differential oracle (re-exported under
//! [`reference`] with a `*_reference` name). The contract every kernel
//! honours:
//!
//! * **Exact equivalence** — identical output to its reference oracle,
//!   bit-for-bit for floating-point kernels. PageRank pulls over
//!   ascending-sorted in-adjacency so each accumulator sees the same
//!   addition sequence as the reference's push loop; components renumber
//!   min-labels by first occurrence so the numbering matches BFS discovery
//!   order; the traversal kernels only combine integers.
//! * **Worker-count independence** — work is split into chunks whose
//!   boundaries depend only on the policy's [`ChunkStrategy`] (and the
//!   graph), never on [`KernelPolicy::workers`]; workers claim whole
//!   chunks and results are combined in chunk order, so 1 worker and N
//!   workers produce identical bytes. Under
//!   [`ChunkStrategy::DegreeWeighted`] the boundaries equalise *edge*
//!   weight instead of node count — a hub-heavy chunk no longer serialises
//!   the whole kernel behind one worker — and since every chunk is still a
//!   contiguous in-order range combined in chunk order, the bytes are also
//!   identical *across strategies*. Threads are scoped to each call — the
//!   kernels add no background pool beyond the scheduler's own workers.

//! * **Cooperative cancellation** — every chunked kernel polls
//!   [`KernelPolicy::cancel`] at chunk boundaries. Once the token fires the
//!   kernel stops claiming work and returns a *neutral* value (empty / zero
//!   / `None`); the supervisor that armed the token discards the result, so
//!   partial output is never observed by callers.

use crate::algo::components::Components;
use crate::algo::stats::GraphStats;
use crate::csr::CsrGraph;
use crate::graph::{EdgeId, Graph, NodeId};
use chatgraph_support::cancel::CancelToken;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Differential oracles: the original adjacency-walking implementations in
/// [`crate::algo`], re-exported under the `*_reference` names the property
/// tests and benches compare each kernel against.
pub mod reference {
    pub use crate::algo::centrality::{closeness as closeness_reference, pagerank as pagerank_reference};
    pub use crate::algo::components::{
        connected_components as connected_components_reference, is_connected as is_connected_reference,
    };
    pub use crate::algo::paths::{
        average_path_length as average_path_length_reference, diameter as diameter_reference,
        eccentricity as eccentricity_reference, weighted_distances as dijkstra_reference,
    };
    pub use crate::algo::stats::{
        degree_histogram as degree_histogram_reference, graph_stats as graph_stats_reference,
    };
    pub use crate::algo::traversal::bfs_distances as bfs_distances_reference;
    pub use crate::algo::triangles::{
        global_clustering_coefficient as global_clustering_coefficient_reference,
        triangle_count as triangle_count_reference,
    };
}

/// Default work-chunk size (nodes or edges per unit of claimed work).
pub const DEFAULT_KERNEL_CHUNK: usize = 1024;

/// Sources per cache block in the blocked PageRank pull: the corresponding
/// slice of the share vector (512 KiB of f64) stays L2-resident while every
/// target in a chunk drains it.
const PAGERANK_SOURCE_BLOCK: usize = 1 << 16;

/// Shrink trigger for checked-in scratch buffers: a buffer whose capacity
/// exceeds this multiple of its last-use length is shrunk to that length,
/// so one 10^6-node run doesn't pin high-water memory across later small
/// epochs.
const SCRATCH_SHRINK_FACTOR: usize = 4;

/// Reusable kernel working memory: the frontier queues, value/next vectors
/// and pair buffers the kernels used to allocate per invocation. One
/// `Scratch` is checked out of the policy's [`ScratchPool`] per worker (or
/// per chunk, for per-chunk buffers like the BFS sweep's distance array)
/// and checked back in when done, so the capacity survives across chunks,
/// steps and epochs. Buffers carry arbitrary stale contents at checkout —
/// every kernel re-initialises the prefix it uses (`clear` + `resize`),
/// which is what keeps outputs bit-identical to the allocate-fresh code.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Hop/weight distance buffer (BFS sweeps, component renumbering).
    pub dist: Vec<usize>,
    /// BFS queue.
    pub queue: VecDeque<u32>,
    /// f64 value buffer (pagerank ranks).
    pub f64a: Vec<f64>,
    /// Second f64 value buffer (pagerank shares).
    pub f64b: Vec<f64>,
    /// Cursor buffer (blocked-pull per-target cursors).
    pub cursors: Vec<usize>,
    /// u32 buffer (frontiers, component labels).
    pub u32a: Vec<u32>,
    /// Second u32 buffer (next frontier / next labels).
    pub u32b: Vec<u32>,
    /// Dense endpoint-pair buffer (triangle counting).
    pub pairs: Vec<(u32, u32)>,
}

/// Shrinks one buffer that is far over its last-use length.
fn shrink_vec<T>(v: &mut Vec<T>) {
    if v.capacity() > SCRATCH_SHRINK_FACTOR * v.len().max(1) {
        v.shrink_to(v.len().max(1));
    }
}

impl Scratch {
    /// Applies the shrink policy at check-in: any buffer whose capacity ran
    /// ahead of its last-use length by more than [`SCRATCH_SHRINK_FACTOR`]
    /// gives the excess back. Lengths are left as the kernels set them —
    /// they *are* the high-water record the next shrink decision uses.
    fn shrink_to_high_water(&mut self) {
        shrink_vec(&mut self.dist);
        shrink_vec(&mut self.f64a);
        shrink_vec(&mut self.f64b);
        shrink_vec(&mut self.cursors);
        shrink_vec(&mut self.u32a);
        shrink_vec(&mut self.u32b);
        shrink_vec(&mut self.pairs);
        if self.queue.capacity() > SCRATCH_SHRINK_FACTOR * self.queue.len().max(1) {
            self.queue.shrink_to(self.queue.len().max(1));
        }
    }
}

/// A shared pool of [`Scratch`] arenas, cloned by `Arc` into every worker's
/// [`KernelPolicy`]. Checkouts are exclusive, so the pool never grows past
/// the peak number of concurrent checkouts (≈ the worker count); a
/// checked-in arena keeps its capacity for the next kernel, step, or epoch.
#[derive(Debug, Clone, Default)]
pub struct ScratchPool {
    arenas: Arc<Mutex<Vec<Scratch>>>,
}

impl ScratchPool {
    /// A fresh, empty pool.
    pub fn new() -> ScratchPool {
        ScratchPool::default()
    }

    /// Takes an arena out of the pool (a fresh one when empty). The arena's
    /// buffers hold stale contents; callers re-initialise what they use.
    pub fn checkout(&self) -> Scratch {
        // The pool holds plain owned buffers; a panic between push/pop
        // cannot tear them, so a poisoned pool is still structurally valid.
        // lockdoc: recover(pool arenas are whole owned buffers; poison cannot tear them)
        self.arenas
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default()
    }

    /// Returns an arena to the pool, applying the shrink policy.
    pub fn checkin(&self, mut scratch: Scratch) {
        scratch.shrink_to_high_water();
        // lockdoc: recover(pool arenas are whole owned buffers; poison cannot tear them)
        self.arenas.lock().unwrap_or_else(|e| e.into_inner()).push(scratch);
    }

    /// Arenas currently parked in the pool.
    pub fn len(&self) -> usize {
        // lockdoc: recover(pool arenas are whole owned buffers; poison cannot tear them)
        self.arenas.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the pool is empty (everything checked out, or never used).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every parked arena (an explicit release valve for callers
    /// that know a large epoch just ended).
    pub fn release(&self) {
        // lockdoc: recover(pool arenas are whole owned buffers; poison cannot tear them)
        self.arenas.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Auto-engage thresholds for the blocked pull: below this many nodes the
/// share vector fits in cache anyway, and below this average pull degree
/// the per-block cursor sweep costs more than the locality buys.
const PAGERANK_BLOCK_NODES: usize = 1 << 17;
const PAGERANK_BLOCK_MIN_DEG: usize = 8;

/// How chunk boundaries are placed. Both strategies cut `0..len` into
/// contiguous in-order ranges and combine results in chunk order, so kernel
/// output is bit-identical across strategies *and* worker counts; only the
/// load balance differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkStrategy {
    /// Fixed-size chunks of [`KernelPolicy::chunk`] work items.
    #[default]
    Fixed,
    /// Equal-*weight* chunks: the same chunk *count* as [`Fixed`], but cut
    /// so each chunk carries roughly `Σ weight / chunks` of per-item weight
    /// (for adjacency-bound kernels, `1 + degree`). On skewed graphs this
    /// keeps hub rows from serialising a kernel behind one worker.
    ///
    /// [`Fixed`]: ChunkStrategy::Fixed
    DegreeWeighted,
}

/// How a kernel invocation splits its work.
#[derive(Debug, Clone)]
pub struct KernelPolicy {
    /// Scoped worker threads to use; `<= 1` runs fully sequentially.
    pub workers: usize,
    /// Chunk size (work items per chunk under [`ChunkStrategy::Fixed`];
    /// also sets the chunk *count* under
    /// [`ChunkStrategy::DegreeWeighted`]). Chunk boundaries are independent
    /// of `workers`, so results are identical for any worker count.
    pub chunk: usize,
    /// Boundary placement. Never affects results, only load balance.
    pub strategy: ChunkStrategy,
    /// Cooperative cancellation, polled at every chunk boundary. The
    /// default token never fires; the chain supervisor swaps in a
    /// deadline-armed clone per supervised step.
    pub cancel: CancelToken,
    /// Fault-injection stall applied before each chunk is claimed. Zero in
    /// production; the deterministic fault harness uses it to force a
    /// deadline to expire *inside* a kernel, proving chunk-boundary
    /// cancellation is observed.
    pub chunk_delay: Duration,
    /// Reusable working memory shared (via `Arc`) by every clone of this
    /// policy. Kernels check arenas out per worker/chunk and back in when
    /// done; contents never leak between uses (each kernel re-initialises
    /// what it reads), so scratch reuse cannot affect results.
    pub scratch: ScratchPool,
}

impl KernelPolicy {
    /// A policy with explicit worker and chunk counts.
    pub fn new(workers: usize, chunk: usize) -> KernelPolicy {
        KernelPolicy {
            workers: workers.max(1),
            chunk: chunk.max(1),
            strategy: ChunkStrategy::Fixed,
            cancel: CancelToken::new(),
            chunk_delay: Duration::ZERO,
            scratch: ScratchPool::new(),
        }
    }

    /// The same policy with a different boundary-placement strategy.
    pub fn with_strategy(mut self, strategy: ChunkStrategy) -> KernelPolicy {
        self.strategy = strategy;
        self
    }

    /// Fully sequential execution with the default chunk size.
    pub fn sequential() -> KernelPolicy {
        KernelPolicy::new(1, DEFAULT_KERNEL_CHUNK)
    }

    /// The same policy watching `cancel` instead of its current token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> KernelPolicy {
        self.cancel = cancel;
        self
    }

    /// The same policy with an injected per-chunk stall (fault harness).
    pub fn with_chunk_delay(mut self, delay: Duration) -> KernelPolicy {
        self.chunk_delay = delay;
        self
    }

    /// The same policy drawing working memory from `scratch` — used by the
    /// scheduler to keep one pool alive across per-chain policy rebuilds.
    pub fn with_scratch(mut self, scratch: ScratchPool) -> KernelPolicy {
        self.scratch = scratch;
        self
    }
}

impl Default for KernelPolicy {
    fn default() -> Self {
        KernelPolicy::sequential()
    }
}

/// Fixed-size chunk boundaries: `[0, chunk, 2·chunk, …, len]`.
fn fixed_bounds(chunk: usize, len: usize) -> Vec<usize> {
    let chunk = chunk.max(1);
    let mut bounds: Vec<usize> = (0..len.div_ceil(chunk)).map(|c| c * chunk).collect();
    bounds.push(len);
    bounds
}

/// Equal-weight chunk boundaries: the same chunk *count* as
/// [`fixed_bounds`], but each cut is placed greedily once the running
/// per-item weight reaches `Σ weight / chunks`. Depends only on `chunk`,
/// `len` and the weights — never on the worker count.
fn weighted_bounds(chunk: usize, len: usize, weight: impl Fn(usize) -> u64) -> Vec<usize> {
    let chunks = len.div_ceil(chunk.max(1));
    if chunks <= 1 {
        return fixed_bounds(chunk, len);
    }
    let total: u64 = (0..len).map(&weight).sum();
    let target = total.div_ceil(chunks as u64).max(1);
    let mut bounds = Vec::with_capacity(chunks + 1);
    bounds.push(0);
    let mut acc = 0u64;
    for i in 0..len {
        acc += weight(i);
        if acc >= target && bounds.len() < chunks && i + 1 < len {
            bounds.push(i + 1);
            acc = 0;
        }
    }
    bounds.push(len);
    bounds
}

/// Chunk boundaries for `0..len` under the policy's [`ChunkStrategy`],
/// weighting item `i` by `weight(i)` when degree-aware.
fn chunk_bounds(policy: &KernelPolicy, len: usize, weight: impl Fn(usize) -> u64) -> Vec<usize> {
    match policy.strategy {
        ChunkStrategy::Fixed => fixed_bounds(policy.chunk, len),
        ChunkStrategy::DegreeWeighted => weighted_bounds(policy.chunk, len, weight),
    }
}

/// Applies `f` to each fixed-size chunk of `0..len` and returns the
/// per-chunk results **in chunk order** — the uniform-cost entry point;
/// degree-aware kernels go through [`map_weighted`]. See [`map_parts`] for
/// the claiming and cancellation contract.
fn map_chunks<T, F>(policy: &KernelPolicy, len: usize, f: F) -> Option<Vec<T>>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    map_parts(policy, &fixed_bounds(policy.chunk, len), f)
}

/// Like [`map_chunks`], but boundaries follow the policy's
/// [`ChunkStrategy`] with per-item `weight` (adjacency-bound kernels pass
/// `1 + degree`). Results are bit-identical to [`map_chunks`] for any
/// weight function: chunks are contiguous in-order ranges combined in
/// chunk order.
fn map_weighted<T, F>(
    policy: &KernelPolicy,
    len: usize,
    weight: impl Fn(usize) -> u64,
    f: F,
) -> Option<Vec<T>>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    map_parts(policy, &chunk_bounds(policy, len, weight), f)
}

/// Applies `f` to each `bounds[c]..bounds[c+1]` range and returns the
/// per-chunk results **in chunk order**. With `workers <= 1` (or a single
/// chunk) this is a plain sequential loop; otherwise scoped threads claim
/// chunks from an atomic counter, but each chunk's result lands in its own
/// fixed slot, so the combined output never depends on claim order.
///
/// Before claiming each chunk the caller's [`CancelToken`] is polled (after
/// the injected `chunk_delay`, if any); once it fires, no further chunks are
/// computed and the call returns `None`. Kernels translate `None` into a
/// neutral result — the supervisor that armed the token never looks at it.
fn map_parts<T, F>(policy: &KernelPolicy, bounds: &[usize], f: F) -> Option<Vec<T>>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    let chunks = bounds.len().saturating_sub(1);
    let range = |c: usize| bounds[c]..bounds[c + 1];
    // One boundary check per claimed chunk: injected stall first (so a
    // fault-harness delay can push the deadline over), then the poll.
    let boundary = || {
        if !policy.chunk_delay.is_zero() {
            std::thread::sleep(policy.chunk_delay);
        }
        policy.cancel.is_cancelled()
    };
    if policy.workers <= 1 || chunks <= 1 {
        let mut out = Vec::with_capacity(chunks);
        for c in 0..chunks {
            if boundary() {
                return None;
            }
            out.push(f(range(c)));
        }
        return Some(out);
    }
    let next = AtomicUsize::new(0);
    // Each slot is written exactly once, whole; kernel panics are isolated
    // upstream by the supervisor, and a poisoned slot still holds either
    // None or a complete chunk result.
    // lockdoc: recover(slots are write-once whole chunk results; poison cannot tear them)
    let slots: Vec<Mutex<Option<T>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..policy.workers.min(chunks) {
            s.spawn(|| loop {
                if boundary() {
                    break;
                }
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= chunks {
                    break;
                }
                let out = f(range(c));
                *slots[c].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            });
        }
    });
    // The token latches, so if any worker bailed this final poll sees it.
    if policy.cancel.is_cancelled() {
        return None;
    }
    Some(
        slots
            .into_iter()
            .filter_map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
            .collect(),
    )
}

const UNSEEN: usize = usize::MAX;

/// Level-synchronous BFS / unweighted SSSP over the undirected view.
/// Matches [`reference::bfs_distances_reference`]: hop distances from
/// `start` up to `max_hops` (inclusive), slot-indexed, `None` when
/// unreachable, too far, or removed.
pub fn bfs_distances(
    csr: &CsrGraph,
    start: NodeId,
    max_hops: usize,
    policy: &KernelPolicy,
) -> Vec<Option<usize>> {
    let mut out = vec![None; csr.node_bound()];
    let Some(s) = csr.dense_of(start) else { return out };
    let mut scratch = policy.scratch.checkout();
    let Scratch { dist, u32a: frontier, u32b: next, .. } = &mut scratch;
    dist.clear();
    dist.resize(csr.n(), UNSEEN);
    dist[s as usize] = 0;
    frontier.clear();
    frontier.push(s);
    let mut depth = 0usize;
    while !frontier.is_empty() && depth < max_hops {
        // Expand the frontier in parallel (read-only over `dist`), then
        // claim discoveries sequentially in chunk order: duplicates across
        // chunks collapse and the result is worker-count independent. All
        // candidates sit at the same level, so any claim order yields the
        // same distances.
        let weight = |i: usize| 1 + csr.und(frontier[i]).len() as u64;
        let Some(candidates) = map_weighted(policy, frontier.len(), weight, |r| {
            let mut cand: Vec<u32> = Vec::new();
            for &v in &frontier[r] {
                for &w in csr.und(v) {
                    if dist[w as usize] == UNSEEN {
                        cand.push(w);
                    }
                }
            }
            cand
        }) else {
            return vec![None; csr.node_bound()];
        };
        next.clear();
        for chunk in candidates {
            for w in chunk {
                if dist[w as usize] == UNSEEN {
                    dist[w as usize] = depth + 1;
                    next.push(w);
                }
            }
        }
        std::mem::swap(frontier, next);
        depth += 1;
    }
    for (d, &v) in csr.nodes().iter().enumerate() {
        if dist[d] != UNSEEN {
            out[v.index()] = Some(dist[d]);
        }
    }
    policy.scratch.checkin(scratch);
    out
}

/// Min-heap item for Dijkstra: ordered by distance (total order over f64),
/// ties by dense id, inverted for `BinaryHeap`'s max-heap semantics.
struct HeapItem {
    dist: f64,
    node: u32,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.dist.total_cmp(&self.dist).then(other.node.cmp(&self.node))
    }
}

/// Dijkstra over the undirected view with slot-indexed edge `weights`
/// (missing slots weigh 1.0; weights are assumed non-negative). Returns
/// slot-indexed shortest distances. Matches
/// [`reference::dijkstra_reference`].
pub fn dijkstra(csr: &CsrGraph, weights: &[f64], start: NodeId) -> Vec<Option<f64>> {
    let mut out = vec![None; csr.node_bound()];
    let Some(s) = csr.dense_of(start) else { return out };
    let w_of = |e: EdgeId| weights.get(e.index()).copied().unwrap_or(1.0);
    let mut dist: Vec<f64> = vec![f64::INFINITY; csr.n()];
    dist[s as usize] = 0.0;
    let mut heap = std::collections::BinaryHeap::new();
    heap.push(HeapItem { dist: 0.0, node: s });
    while let Some(HeapItem { dist: d, node: v }) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        let relax = |heap: &mut std::collections::BinaryHeap<HeapItem>,
                     dist: &mut [f64],
                     w: u32,
                     e: EdgeId| {
            let nd = d + w_of(e);
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                heap.push(HeapItem { dist: nd, node: w });
            }
        };
        for (&w, &e) in csr.out(v).iter().zip(csr.out_edge_ids(v)) {
            relax(&mut heap, &mut dist, w, e);
        }
        for (&w, &e) in csr.incoming(v).iter().zip(csr.incoming_edge_ids(v)) {
            relax(&mut heap, &mut dist, w, e);
        }
    }
    for (d, &v) in csr.nodes().iter().enumerate() {
        if dist[d].is_finite() {
            out[v.index()] = Some(dist[d]);
        }
    }
    out
}

/// PageRank, edge-parallel *pull* over ascending-sorted in-adjacency.
/// Bit-identical to [`reference::pagerank_reference`]: per-target
/// contributions are summed in ascending source order (the same sequence
/// the reference's push loop produces), the dangling sum is accumulated
/// sequentially in ascending order, and the per-node update uses the exact
/// reference expression. Returns slot-indexed scores.
///
/// On large, dense-enough snapshots the pull loop automatically switches to
/// the cache-blocked variant (see [`pagerank_blocked`]); the switch never
/// changes the bytes, only the memory access pattern.
pub fn pagerank(csr: &CsrGraph, damping: f64, iterations: usize, policy: &KernelPolicy) -> Vec<f64> {
    let n = csr.n();
    let blocked =
        n >= PAGERANK_BLOCK_NODES && csr.m() / n.max(1) >= PAGERANK_BLOCK_MIN_DEG;
    pagerank_impl(csr, damping, iterations, policy, blocked)
}

/// PageRank with the cache-blocked pull forced on: within each target
/// chunk, sources are drained in ascending [`PAGERANK_SOURCE_BLOCK`]-sized
/// blocks so the active slice of the share vector stays cache-resident
/// across every target in the chunk. Each target still accumulates its
/// contributions in ascending source order (a per-target cursor only moves
/// forward), so the result is bit-identical to [`pagerank`] and the
/// reference oracle.
pub fn pagerank_blocked(
    csr: &CsrGraph,
    damping: f64,
    iterations: usize,
    policy: &KernelPolicy,
) -> Vec<f64> {
    pagerank_impl(csr, damping, iterations, policy, true)
}

fn pagerank_impl(
    csr: &CsrGraph,
    damping: f64,
    iterations: usize,
    policy: &KernelPolicy,
    blocked: bool,
) -> Vec<f64> {
    let n = csr.n();
    let mut out = vec![0.0; csr.node_bound()];
    if n == 0 {
        return out;
    }
    let mut scratch = policy.scratch.checkout();
    let Scratch { f64a: rank, f64b: share, .. } = &mut scratch;
    rank.clear();
    rank.resize(n, 1.0 / n as f64);
    share.clear();
    share.resize(n, 0.0);
    let weight = |w: usize| 1 + csr.pull_sources(w as u32).len() as u64;
    for _ in 0..iterations {
        let mut dangling = 0.0;
        for d in 0..n {
            let deg = csr.degree(d as u32);
            if deg == 0 {
                dangling += rank[d];
                share[d] = 0.0;
            } else {
                share[d] = rank[d] / deg as f64;
            }
        }
        let teleport = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        let Some(next) = map_weighted(policy, n, weight, |r| {
            if blocked {
                return pull_blocked(csr, share, r, &policy.scratch);
            }
            let mut vals = Vec::with_capacity(r.len());
            for w in r {
                let mut sum = 0.0;
                for &u in csr.pull_sources(w as u32) {
                    sum += share[u as usize];
                }
                vals.push(sum);
            }
            vals
        }) else {
            return vec![0.0; csr.node_bound()];
        };
        let mut d = 0usize;
        for chunk in next {
            for v in chunk {
                rank[d] = teleport + damping * v;
                d += 1;
            }
        }
    }
    for (d, &v) in csr.nodes().iter().enumerate() {
        out[v.index()] = rank[d];
    }
    policy.scratch.checkin(scratch);
    out
}

/// One cache-blocked pull pass over the targets in `r`: ascending source
/// blocks, per-target forward-only cursors (held in a per-chunk scratch
/// arena). Addition order per target is globally ascending — identical to
/// the plain pull.
fn pull_blocked(csr: &CsrGraph, share: &[f64], r: std::ops::Range<usize>, pool: &ScratchPool) -> Vec<f64> {
    let n = csr.n();
    let m = r.len();
    let mut vals = vec![0.0; m];
    let mut scratch = pool.checkout();
    let cursors = &mut scratch.cursors;
    cursors.clear();
    cursors.resize(m, 0);
    let mut b0 = 0usize;
    while b0 < n {
        let b1 = (b0 + PAGERANK_SOURCE_BLOCK).min(n);
        for (i, cursor) in cursors.iter_mut().enumerate() {
            let srcs = csr.pull_sources((r.start + i) as u32);
            let mut c = *cursor;
            while c < srcs.len() && (srcs[c] as usize) < b1 {
                vals[i] += share[srcs[c] as usize];
                c += 1;
            }
            *cursor = c;
        }
        b0 = b1;
    }
    pool.checkin(scratch);
    vals
}

/// Connected components by parallel min-label propagation (Jacobi rounds
/// with pointer shortcutting), renumbered by first occurrence in ascending
/// node order — exactly the numbering the reference's repeated-BFS
/// produces. Matches [`reference::connected_components_reference`].
pub fn connected_components(csr: &CsrGraph, policy: &KernelPolicy) -> Components {
    let n = csr.n();
    let mut scratch = policy.scratch.checkout();
    let Scratch { u32a: labels, u32b: next, cursors: comp_of_label, .. } = &mut scratch;
    labels.clear();
    labels.extend(0..n as u32);
    let weight = |v: usize| 1 + csr.und(v as u32).len() as u64;
    loop {
        let Some(rounds) = map_weighted(policy, n, weight, |r| {
            let mut round = Vec::with_capacity(r.len());
            let mut changed = false;
            for v in r {
                let mut best = labels[v];
                for &w in csr.und(v as u32) {
                    best = best.min(labels[w as usize]);
                }
                // Shortcut through the current label (pointer jumping):
                // reads the same pre-round snapshot, so the result stays
                // independent of chunking, but convergence drops from
                // O(diameter) to O(log n) rounds.
                best = best.min(labels[best as usize]);
                changed |= best != labels[v];
                round.push(best);
            }
            (round, changed)
        }) else {
            return Components { assignment: vec![None; csr.node_bound()], count: 0 };
        };
        let mut changed = false;
        next.clear();
        for (chunk, c) in rounds {
            next.extend(chunk);
            changed |= c;
        }
        std::mem::swap(labels, next);
        if !changed {
            break;
        }
    }
    let mut assignment = vec![None; csr.node_bound()];
    comp_of_label.clear();
    comp_of_label.resize(n, usize::MAX);
    let mut count = 0usize;
    for d in 0..n {
        let l = labels[d] as usize;
        if comp_of_label[l] == usize::MAX {
            comp_of_label[l] = count;
            count += 1;
        }
        assignment[csr.node_of(d as u32).index()] = Some(comp_of_label[l]);
    }
    policy.scratch.checkin(scratch);
    Components { assignment, count }
}

/// Whether all live nodes are mutually reachable (empty graphs count as
/// connected). Matches [`reference::is_connected_reference`].
pub fn is_connected(csr: &CsrGraph, policy: &KernelPolicy) -> bool {
    connected_components(csr, policy).count <= 1
}

/// Common elements of two ascending slices strictly greater than `hi`.
fn count_common_gt(a: &[u32], b: &[u32], hi: u32) -> usize {
    let mut a = &a[a.partition_point(|&x| x <= hi)..];
    let mut b = &b[b.partition_point(|&x| x <= hi)..];
    let mut count = 0usize;
    while let (Some(&x), Some(&y)) = (a.first(), b.first()) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => a = &a[1..],
            std::cmp::Ordering::Greater => b = &b[1..],
            std::cmp::Ordering::Equal => {
                count += 1;
                a = &a[1..];
                b = &b[1..];
            }
        }
    }
    count
}

/// Live edges as dense endpoint pairs, filled into `pairs`: each undirected
/// edge once (low endpoint first), each directed edge once — the same
/// per-edge iteration the reference oracles perform over `edge_ids`.
fn edge_pairs(csr: &CsrGraph, pairs: &mut Vec<(u32, u32)>) {
    pairs.clear();
    pairs.reserve(csr.m());
    for v in 0..csr.n() as u32 {
        for &w in csr.out(v) {
            if csr.is_directed() || w > v {
                pairs.push((v, w));
            }
        }
    }
}

/// Edge-parallel triangle count over sorted undirected-view adjacency.
/// Matches [`reference::triangle_count_reference`].
pub fn triangle_count(csr: &CsrGraph, policy: &KernelPolicy) -> usize {
    let mut scratch = policy.scratch.checkout();
    let pairs = &mut scratch.pairs;
    edge_pairs(csr, pairs);
    let weight =
        |i: usize| (csr.und(pairs[i].0).len() + csr.und(pairs[i].1).len()) as u64;
    let count = map_weighted(policy, pairs.len(), weight, |r| {
        let mut c = 0usize;
        for &(a, b) in &pairs[r] {
            c += count_common_gt(csr.und(a), csr.und(b), a.max(b));
        }
        c
    })
    .map(|chunks| chunks.into_iter().sum())
    .unwrap_or(0);
    policy.scratch.checkin(scratch);
    count
}

/// Connected triples `Σ k(k−1)/2` over undirected-view degrees.
fn triples(csr: &CsrGraph, policy: &KernelPolicy) -> usize {
    map_chunks(policy, csr.n(), |r| {
        let mut t = 0usize;
        for v in r {
            let k = csr.und(v as u32).len();
            t += k * k.saturating_sub(1) / 2;
        }
        t
    })
    .map(|chunks| chunks.into_iter().sum())
    .unwrap_or(0)
}

/// Global clustering coefficient `3·triangles / triples`. Matches
/// [`reference::global_clustering_coefficient_reference`].
pub fn global_clustering_coefficient(csr: &CsrGraph, policy: &KernelPolicy) -> f64 {
    let t = triples(csr, policy);
    if t == 0 {
        0.0
    } else {
        3.0 * triangle_count(csr, policy) as f64 / t as f64
    }
}

/// Fills `dist` (pre-set to `UNSEEN`) with hop distances from `s` over the
/// undirected view, reusing `queue`. Returns `(eccentricity, Σ d, pairs)`
/// over reached nodes with `d > 0`.
fn bfs_scan(csr: &CsrGraph, s: u32, dist: &mut [usize], queue: &mut VecDeque<u32>) -> (usize, usize, usize) {
    queue.clear();
    dist[s as usize] = 0;
    queue.push_back(s);
    let (mut ecc, mut total, mut pairs) = (0usize, 0usize, 0usize);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &w in csr.und(v) {
            if dist[w as usize] == UNSEEN {
                dist[w as usize] = d + 1;
                ecc = ecc.max(d + 1);
                total += d + 1;
                pairs += 1;
                queue.push_back(w);
            }
        }
    }
    (ecc, total, pairs)
}

/// Per-source BFS sweep, parallel over sources. Each chunk checks one
/// scratch arena out of the policy's pool and reuses its distance buffer
/// and queue across the chunk's sources (and, via the pool, across chunks,
/// steps and epochs). Returns per-source `(ecc, Σ d, pairs)` in ascending
/// source order.
fn sweep(csr: &CsrGraph, policy: &KernelPolicy) -> Vec<(usize, usize, usize)> {
    let n = csr.n();
    map_chunks(policy, n, |r| {
        let mut scratch = policy.scratch.checkout();
        let Scratch { dist, queue, .. } = &mut scratch;
        dist.clear();
        dist.resize(n, UNSEEN);
        let mut out = Vec::with_capacity(r.len());
        for s in r {
            dist.fill(UNSEEN);
            out.push(bfs_scan(csr, s as u32, dist, queue));
        }
        policy.scratch.checkin(scratch);
        out
    })
    .map(|chunks| chunks.into_iter().flatten().collect())
    .unwrap_or_default()
}

/// Eccentricity of `v`: maximum hop distance to any reachable node.
/// Matches [`reference::eccentricity_reference`].
pub fn eccentricity(csr: &CsrGraph, v: NodeId) -> Option<usize> {
    let s = csr.dense_of(v)?;
    let mut dist = vec![UNSEEN; csr.n()];
    let mut queue = VecDeque::new();
    let (ecc, _, _) = bfs_scan(csr, s, &mut dist, &mut queue);
    Some(ecc)
}

/// Exact diameter via an all-sources BFS sweep. Matches
/// [`reference::diameter_reference`].
pub fn diameter(csr: &CsrGraph, policy: &KernelPolicy) -> Option<usize> {
    sweep(csr, policy).into_iter().map(|(ecc, _, _)| ecc).max()
}

/// Average shortest-path length over ordered reachable pairs. Matches
/// [`reference::average_path_length_reference`].
pub fn average_path_length(csr: &CsrGraph, policy: &KernelPolicy) -> Option<f64> {
    let (mut total, mut pairs) = (0usize, 0usize);
    for (_, t, p) in sweep(csr, policy) {
        total += t;
        pairs += p;
    }
    if pairs == 0 {
        None
    } else {
        Some(total as f64 / pairs as f64)
    }
}

/// Closeness centrality (Wasserman–Faust), slot-indexed. Each score is an
/// independent per-source computation, so the parallel sweep is bit-exact
/// against [`reference::closeness_reference`].
pub fn closeness(csr: &CsrGraph, policy: &KernelPolicy) -> Vec<f64> {
    let n = csr.n();
    let mut out = vec![0.0; csr.node_bound()];
    if n <= 1 {
        return out;
    }
    for (d, (_, sum, reachable)) in sweep(csr, policy).into_iter().enumerate() {
        if sum > 0 {
            out[csr.node_of(d as u32).index()] =
                (reachable as f64 / (n - 1) as f64) * (reachable as f64 / sum as f64);
        }
    }
    out
}

/// Degree histogram over total degrees. Matches
/// [`reference::degree_histogram_reference`].
pub fn degree_histogram(csr: &CsrGraph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in 0..csr.n() as u32 {
        let d = csr.total_degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Whole-graph statistics scan: degree extrema from the CSR degree arrays,
/// components / triangles / clustering from the kernels above, labels from
/// the graph (the snapshot stores structure only). Matches
/// [`reference::graph_stats_reference`].
pub fn graph_stats(g: &Graph, csr: &CsrGraph, policy: &KernelPolicy) -> GraphStats {
    let n = csr.n();
    let m = csr.m();
    let possible = if csr.is_directed() {
        n.saturating_mul(n.saturating_sub(1))
    } else {
        n.saturating_mul(n.saturating_sub(1)) / 2
    };
    let density = if possible == 0 { 0.0 } else { m as f64 / possible as f64 };
    let (mut min_d, mut max_d, mut sum_d) = (usize::MAX, 0usize, 0usize);
    let degree_chunks = map_chunks(policy, n, |r| {
        let (mut lo, mut hi, mut sum) = (usize::MAX, 0usize, 0usize);
        for v in r {
            let d = csr.total_degree(v as u32);
            lo = lo.min(d);
            hi = hi.max(d);
            sum += d;
        }
        (lo, hi, sum)
    })
    .unwrap_or_default();
    for (lo, hi, sum) in degree_chunks {
        min_d = min_d.min(lo);
        max_d = max_d.max(hi);
        sum_d += sum;
    }
    let cc = connected_components(csr, policy);
    let tri = triangle_count(csr, policy);
    let trip = triples(csr, policy);
    GraphStats {
        nodes: n,
        edges: m,
        density,
        min_degree: if n == 0 { 0 } else { min_d },
        max_degree: max_d,
        avg_degree: if n == 0 { 0.0 } else { sum_d as f64 / n as f64 },
        components: cc.count,
        largest_component: cc.largest_size(),
        triangles: tri,
        clustering: if trip == 0 { 0.0 } else { 3.0 * tri as f64 / trip as f64 },
        distinct_labels: g.label_histogram().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::reference::*;
    use super::*;
    use crate::generators::{social_network, SocialParams};
    use crate::GraphBuilder;

    fn par() -> KernelPolicy {
        // Tiny chunks force real multi-chunk scheduling in tests.
        KernelPolicy::new(4, 8)
    }

    fn social() -> Graph {
        social_network(
            &SocialParams { communities: 3, community_size: 15, p_intra: 0.3, p_inter: 0.02 },
            7,
        )
    }

    #[test]
    fn bfs_matches_reference_on_social_graph() {
        let g = social();
        let csr = CsrGraph::build(&g);
        for start in [NodeId(0), NodeId(17), NodeId(44)] {
            for hops in [0, 2, usize::MAX] {
                assert_eq!(
                    bfs_distances(&csr, start, hops, &par()),
                    bfs_distances_reference(&g, start, hops),
                );
            }
        }
        assert!(bfs_distances(&csr, NodeId(9999), usize::MAX, &par()).iter().all(Option::is_none));
    }

    #[test]
    fn pagerank_is_bit_exact_sequential_and_parallel() {
        let g = social();
        let csr = CsrGraph::build(&g);
        let oracle = pagerank_reference(&g, 0.85, 50);
        let seq = pagerank(&csr, 0.85, 50, &KernelPolicy::sequential());
        let p = pagerank(&csr, 0.85, 50, &par());
        assert_eq!(seq, oracle, "sequential kernel must be bit-exact");
        assert_eq!(p, oracle, "parallel kernel must be bit-exact");
    }

    #[test]
    fn pagerank_directed_with_dangling_matches() {
        let g = GraphBuilder::directed()
            .edge("a", "b", "r")
            .edge("b", "c", "r")
            .edge("d", "b", "r")
            .build();
        let csr = CsrGraph::build(&g);
        assert_eq!(pagerank(&csr, 0.85, 40, &par()), pagerank_reference(&g, 0.85, 40));
    }

    #[test]
    fn components_match_reference_numbering() {
        let mut g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("c", "d", "-")
            .edge("e", "f", "-")
            .build();
        g.remove_node(NodeId(2)).expect("live node");
        let csr = CsrGraph::build(&g);
        let ours = connected_components(&csr, &par());
        let oracle = connected_components_reference(&g);
        assert_eq!(ours.assignment, oracle.assignment);
        assert_eq!(ours.count, oracle.count);
        assert_eq!(is_connected(&csr, &par()), is_connected_reference(&g));
    }

    #[test]
    fn triangles_and_clustering_match() {
        let g = social();
        let csr = CsrGraph::build(&g);
        assert_eq!(triangle_count(&csr, &par()), triangle_count_reference(&g));
        assert_eq!(
            global_clustering_coefficient(&csr, &par()),
            global_clustering_coefficient_reference(&g),
        );
    }

    #[test]
    fn path_kernels_match() {
        let g = social();
        let csr = CsrGraph::build(&g);
        assert_eq!(diameter(&csr, &par()), diameter_reference(&g));
        assert_eq!(average_path_length(&csr, &par()), average_path_length_reference(&g));
        assert_eq!(closeness(&csr, &par()), closeness_reference(&g));
        assert_eq!(eccentricity(&csr, NodeId(3)), eccentricity_reference(&g, NodeId(3)));
    }

    #[test]
    fn stats_and_histogram_match() {
        let g = social();
        let csr = CsrGraph::build(&g);
        assert_eq!(graph_stats(&g, &csr, &par()), graph_stats_reference(&g));
        assert_eq!(degree_histogram(&csr), degree_histogram_reference(&g));
    }

    #[test]
    fn dijkstra_matches_weighted_reference() {
        // Weighted diamond: the long way round is cheaper.
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "d", "-")
            .edge("a", "c", "-")
            .edge("c", "d", "-")
            .edge("a", "d", "-")
            .build();
        let weights = vec![1.0, 1.0, 2.0, 2.0, 10.0];
        let csr = CsrGraph::build(&g);
        let got = dijkstra(&csr, &weights, NodeId(0));
        let want = dijkstra_reference(&g, NodeId(0), |e| weights[e.index()]);
        assert_eq!(got, want);
        assert_eq!(got[3], Some(2.0), "a→b→d beats the direct weight-10 edge");
    }

    /// Degree-weighted boundaries change the cuts, never the bytes: every
    /// kernel output matches the fixed-chunk result at 1 and 4 workers.
    #[test]
    fn degree_weighted_strategy_is_bit_identical() {
        let g = social();
        let csr = CsrGraph::build(&g);
        let fixed = KernelPolicy::new(1, 8);
        for workers in [1, 4] {
            let dw = KernelPolicy::new(workers, 8).with_strategy(ChunkStrategy::DegreeWeighted);
            assert_eq!(pagerank(&csr, 0.85, 50, &dw), pagerank(&csr, 0.85, 50, &fixed));
            let (a, b) = (connected_components(&csr, &dw), connected_components(&csr, &fixed));
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(triangle_count(&csr, &dw), triangle_count(&csr, &fixed));
            assert_eq!(
                bfs_distances(&csr, NodeId(0), usize::MAX, &dw),
                bfs_distances(&csr, NodeId(0), usize::MAX, &fixed),
            );
        }
    }

    /// The cache-blocked pull changes the access pattern, not the bytes.
    #[test]
    fn blocked_pagerank_is_bit_exact() {
        let g = social();
        let csr = CsrGraph::build(&g);
        let oracle = pagerank_reference(&g, 0.85, 50);
        assert_eq!(pagerank_blocked(&csr, 0.85, 50, &KernelPolicy::sequential()), oracle);
        assert_eq!(pagerank_blocked(&csr, 0.85, 50, &par()), oracle);
    }

    /// Weighted bounds cover `0..len` contiguously with at most the fixed
    /// chunk count, whatever the weights.
    #[test]
    fn weighted_bounds_are_well_formed() {
        let cases: [(usize, usize, fn(usize) -> u64); 4] = [
            (8, 100, |_| 1),
            (8, 100, |i| (i as u64 % 7) * 100),
            (1, 5, |_| 0),
            (64, 3, |i| i as u64),
        ];
        for (chunk, len, w) in cases {
            let bounds = weighted_bounds(chunk, len, w);
            assert_eq!(bounds[0], 0);
            assert_eq!(*bounds.last().expect("non-empty"), len);
            assert!(bounds.windows(2).all(|p| p[0] < p[1]), "strictly increasing: {bounds:?}");
            assert!(bounds.len() <= fixed_bounds(chunk, len).len());
        }
    }

    #[test]
    fn cancelled_token_stops_kernels_and_yields_neutral_results() {
        let g = social();
        let csr = CsrGraph::build(&g);
        let cancel = CancelToken::new();
        cancel.cancel();
        let p = KernelPolicy::new(4, 8).with_cancel(cancel.clone());
        let polls = cancel.polls();
        assert_eq!(pagerank(&csr, 0.85, 50, &p), vec![0.0; csr.node_bound()]);
        assert_eq!(triangle_count(&csr, &p), 0);
        assert_eq!(diameter(&csr, &p), None);
        assert_eq!(connected_components(&csr, &p).count, 0);
        assert!(cancel.polls() > polls, "kernels must poll at chunk boundaries");
    }

    #[test]
    fn deadline_plus_injected_chunk_delay_cancels_mid_kernel() {
        let g = social();
        let csr = CsrGraph::build(&g);
        let cancel = CancelToken::with_deadline(Duration::from_millis(5));
        let p = KernelPolicy::new(1, 1)
            .with_cancel(cancel.clone())
            .with_chunk_delay(Duration::from_millis(2));
        // 45 sources at one per chunk would stall ~90ms; the 5ms deadline
        // must be observed at a chunk boundary long before that.
        assert_eq!(closeness(&csr, &p), vec![0.0; csr.node_bound()]);
        assert!(cancel.is_cancelled(), "delayed chunks must trip the deadline");
    }

    #[test]
    fn empty_graph_kernels_are_safe() {
        let csr = CsrGraph::build(&Graph::undirected());
        assert_eq!(pagerank(&csr, 0.85, 10, &par()), Vec::<f64>::new());
        assert_eq!(triangle_count(&csr, &par()), 0);
        assert_eq!(diameter(&csr, &par()), None);
        assert_eq!(connected_components(&csr, &par()).count, 0);
    }
}
