//! Graph (de)serialisation.
//!
//! Two formats are supported, matching what the paper's demo accepts from the
//! "upload graphs" panel:
//!
//! * **Edge list** — a forgiving line-based text format:
//!   ```text
//!   # comment
//!   graph my-molecule undirected
//!   node 0 C
//!   node 1 O
//!   edge 0 1 double
//!   ```
//!   Node lines are optional; edges referencing unseen numeric ids create
//!   unlabelled nodes on the fly.
//! * **JSON** — the [`Graph`] JSON representation (via
//!   `chatgraph_support::json`), for lossless round-trips including
//!   attributes.

use crate::graph::{Direction, Graph, GraphError, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Errors raised while parsing the edge-list format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line could not be interpreted; payload is `(line_number, line)`.
    BadLine(usize, String),
    /// A structural mutation failed (duplicate edge, self-loop, …).
    Graph(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadLine(n, l) => write!(f, "line {n}: cannot parse {l:?}"),
            ParseError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<GraphError> for ParseError {
    fn from(e: GraphError) -> Self {
        ParseError::Graph(e.to_string())
    }
}

/// Parses the edge-list text format.
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut g = Graph::undirected();
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut saw_header = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let Some(kind) = parts.next() else {
            continue; // unreachable: the line is non-empty after trimming
        };
        match kind {
            "graph" => {
                if saw_header {
                    return Err(ParseError::BadLine(lineno + 1, raw.to_owned()));
                }
                saw_header = true;
                let name = parts.next().unwrap_or("G").to_owned();
                let dir = match parts.next() {
                    Some("directed") => Direction::Directed,
                    Some("undirected") | None => Direction::Undirected,
                    Some(_) => return Err(ParseError::BadLine(lineno + 1, raw.to_owned())),
                };
                g = Graph::new(dir);
                g.set_name(name);
            }
            "node" => {
                let key = parts
                    .next()
                    .ok_or_else(|| ParseError::BadLine(lineno + 1, raw.to_owned()))?;
                let label = parts.next().unwrap_or(key);
                let id = g.add_node(label);
                ids.insert(key.to_owned(), id);
            }
            "edge" => {
                let a = parts
                    .next()
                    .ok_or_else(|| ParseError::BadLine(lineno + 1, raw.to_owned()))?;
                let b = parts
                    .next()
                    .ok_or_else(|| ParseError::BadLine(lineno + 1, raw.to_owned()))?;
                let label = parts.next().unwrap_or("-").to_owned();
                let sa = ensure(&mut g, &mut ids, a);
                let sb = ensure(&mut g, &mut ids, b);
                g.add_edge(sa, sb, label)?;
            }
            _ => return Err(ParseError::BadLine(lineno + 1, raw.to_owned())),
        }
    }
    Ok(g)
}

fn ensure(g: &mut Graph, ids: &mut HashMap<String, NodeId>, key: &str) -> NodeId {
    if let Some(&id) = ids.get(key) {
        id
    } else {
        let id = g.add_node(key);
        ids.insert(key.to_owned(), id);
        id
    }
}

/// Serialises a graph to the edge-list text format.
///
/// Attributes are not representable in this format and are dropped; use
/// [`to_json`] for a lossless round-trip.
pub fn to_edge_list(g: &Graph) -> Result<String, GraphError> {
    let mut out = String::new();
    let dir = if g.is_directed() {
        "directed"
    } else {
        "undirected"
    };
    out.push_str(&format!("graph {} {}\n", g.name(), dir));
    for id in g.node_ids() {
        out.push_str(&format!("node {} {}\n", id.0, g.node_label(id)?));
    }
    for eid in g.edge_ids() {
        let (s, d) = g.edge_endpoints(eid)?;
        out.push_str(&format!("edge {} {} {}\n", s.0, d.0, g.edge_label(eid)?));
    }
    Ok(out)
}

/// Serialises a graph to JSON (lossless, including attributes).
pub fn to_json(g: &Graph) -> String {
    chatgraph_support::json::to_string(g)
}

/// Parses a graph from its JSON representation.
pub fn from_json(text: &str) -> Result<Graph, chatgraph_support::json::JsonError> {
    chatgraph_support::json::from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\n# a molecule\ngraph mol undirected\nnode 0 C\nnode 1 O\nnode 2 H\nedge 0 1 double\nedge 0 2 single\n";

    #[test]
    fn parses_sample() {
        let g = parse_edge_list(SAMPLE).unwrap();
        assert_eq!(g.name(), "mol");
        assert!(!g.is_directed());
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(
            g.label_histogram(),
            vec![
                ("C".to_owned(), 1),
                ("H".to_owned(), 1),
                ("O".to_owned(), 1)
            ]
        );
    }

    #[test]
    fn edges_create_unseen_nodes() {
        let g = parse_edge_list("edge a b friend").unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn directed_header() {
        let g = parse_edge_list("graph kg directed\nedge a b r").unwrap();
        assert!(g.is_directed());
    }

    #[test]
    fn rejects_double_header() {
        let err = parse_edge_list("graph a\ngraph b").unwrap_err();
        assert!(matches!(err, ParseError::BadLine(2, _)));
    }

    #[test]
    fn rejects_garbage() {
        let err = parse_edge_list("wibble 1 2").unwrap_err();
        assert!(matches!(err, ParseError::BadLine(1, _)));
        assert!(err.to_string().contains("wibble"));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let err = parse_edge_list("edge a b x\nedge a b y").unwrap_err();
        assert!(matches!(err, ParseError::Graph(_)));
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = parse_edge_list(SAMPLE).unwrap();
        let text = to_edge_list(&g).unwrap();
        let g2 = parse_edge_list(&text).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.label_histogram(), g.label_histogram());
    }

    #[test]
    fn json_roundtrip_preserves_attrs() {
        let mut g = parse_edge_list(SAMPLE).unwrap();
        let v = g.node_ids().next().unwrap();
        g.set_node_attr(v, "charge", -1i64).unwrap();
        let g2 = from_json(&to_json(&g)).unwrap();
        assert_eq!(g2.node_attrs(v).unwrap()["charge"].as_int(), Some(-1));
    }

    /// Freezes the JSON wire format: field order, transparent ids,
    /// string direction variants, and untagged attribute scalars must
    /// stay byte-identical to what the pre-vendoring serde derives
    /// produced, so previously exported graphs keep loading.
    #[test]
    fn json_wire_format_is_stable() {
        let mut g = crate::Graph::undirected();
        g.set_name("G");
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.set_node_attr(a, "w", 1.5f64).unwrap();
        g.add_edge(a, b, "e").unwrap();
        let expected = concat!(
            r#"{"direction":"Undirected","name":"G","#,
            r#""nodes":[{"label":"A","attrs":{"w":1.5},"removed":false},"#,
            r#"{"label":"B","attrs":{},"removed":false}],"#,
            r#""edges":[{"src":0,"dst":1,"label":"e","attrs":{},"removed":false}],"#,
            r#""out_adj":[[[1,0]],[[0,0]]],"in_adj":[[],[]],"#,
            r#""live_nodes":2,"live_edges":1}"#
        );
        assert_eq!(to_json(&g), expected);
        assert_eq!(from_json(expected).unwrap(), g);
    }

    #[test]
    fn default_edge_label_is_dash() {
        let g = parse_edge_list("edge x y").unwrap();
        let e = g.edge_ids().next().unwrap();
        assert_eq!(g.edge_label(e).unwrap(), "-");
    }
}
