//! # chatgraph-graph
//!
//! Property-graph substrate for the ChatGraph reproduction.
//!
//! ChatGraph (ICDE 2024) lets users chat with graphs: prompts carry a graph
//! `G = (V, E)` alongside natural-language text. This crate provides the graph
//! data model every other crate builds on:
//!
//! * [`Graph`] — a labelled, attributed graph (directed or undirected) with
//!   stable node/edge ids and tombstone-based removal, so graph-edit APIs can
//!   mutate a graph without invalidating ids held by an executing API chain.
//! * [`builder::GraphBuilder`] — fluent construction.
//! * [`io`] — plain-text edge-list and JSON (de)serialisation; [`binary`] —
//!   a compact length-prefixed binary format for graph databases.
//! * [`generators`] — seeded generators for the graph families the paper's
//!   demo scenarios use: Erdős–Rényi / Barabási–Albert synthetic graphs,
//!   planted-partition *social networks*, valence-constrained *molecules*, and
//!   rule-based *knowledge graphs* with injected noise.
//! * [`algo`] — the graph algorithms backing the analysis APIs: traversal,
//!   components, shortest paths, statistics, community detection, centrality,
//!   k-core, triangles, subgraph isomorphism (VF2) and motif census.
//!
//! All randomised code takes an explicit seed and is deterministic.
//!
//! ```
//! use chatgraph_graph::prelude::*;
//!
//! let g = generators::social_network(&SocialParams::default(), 7);
//! let comms = algo::community::label_propagation(&g, 42);
//! assert!(comms.num_communities() >= 1);
//! ```

pub mod algo;
pub mod attr;
pub mod binary;
pub mod builder;
pub mod csr;
pub mod delta;
pub mod generators;
pub mod graph;
pub mod io;
pub mod kernels;
pub mod stats;

pub use attr::{AttrValue, Attrs};
pub use builder::GraphBuilder;
pub use csr::{CsrCache, CsrGraph};
pub use graph::{Direction, EdgeId, Graph, GraphError, NodeId};
pub use kernels::{ChunkStrategy, KernelPolicy};
pub use stats::{CatalogCache, StatsCatalog};

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::algo;
    pub use crate::attr::{AttrValue, Attrs};
    pub use crate::builder::GraphBuilder;
    pub use crate::csr::{CsrCache, CsrGraph};
    pub use crate::kernels::{self, ChunkStrategy, KernelPolicy};
    pub use crate::stats::{CatalogCache, StatsCatalog};
    pub use crate::generators::{
        self, BaParams, ErParams, KgParams, MoleculeParams, SocialParams,
    };
    pub use crate::graph::{Direction, EdgeId, Graph, GraphError, NodeId};
    pub use crate::io;
}
