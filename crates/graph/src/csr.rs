//! Compressed sparse row (CSR) snapshots of a [`Graph`].
//!
//! The mutable [`Graph`] stores adjacency as `Vec<Vec<(NodeId, EdgeId)>>`
//! with tombstoned slots — flexible for the edit APIs, but pointer-chasing
//! and tombstone-skipping on every analysis call. [`CsrGraph`] is an
//! immutable, cache-friendly snapshot of the *live* structure:
//!
//! * a dense remap of live nodes (`node_of` / `dense_of`), so kernels index
//!   flat arrays with no tombstone checks;
//! * out-adjacency as per-row `(start, len)` tables over contiguous target /
//!   edge-id slabs, sorted per node by ascending dense target (ties by edge
//!   id);
//! * for directed graphs, an in-CSR of the same shape plus a merged,
//!   deduplicated *undirected view* (the traversal algorithms in
//!   [`crate::algo`] treat directed graphs as undirected);
//! * a per-node degree array for O(1) stat scans.
//!
//! # Delta snapshots
//!
//! Each adjacency family is a row table over *two* slabs: an immutable
//! `Arc`'d **base** slab and a small owned **patch** slab. A fresh
//! [`CsrGraph::build`] puts every row in the base slab. A small edit (edge
//! add/remove, node append, relabel) goes through
//! [`CsrGraph::build_delta`], which re-splices only the touched rows into a
//! new patch while untouched rows keep pointing into the shared base slab —
//! no O(n + m) repack. Deltas chain across epochs (the patch is
//! consolidated each time); once the touched set or the accumulated patch
//! grows past a bloat threshold, `build_delta` declines and the caller
//! falls back to a full rebuild, which resets the slabs. Structural changes
//! the dense remap cannot absorb (node removal) always decline.
//!
//! A snapshot is built once per *mutation epoch* and cached in
//! [`CsrCache`]. The executor holds graphs behind copy-on-write
//! `Arc<Graph>`: any mutation goes through `Arc::make_mut`, which clones the
//! graph into a fresh allocation whenever a snapshot (or the cache) still
//! holds a reference. Keying the cache by `Arc` pointer identity while
//! retaining the `Arc` therefore *is* the epoch rule — a hit proves the
//! bytes are unchanged since the snapshot was built, equivalently to the
//! scheduler's per-epoch graph fingerprint (DESIGN.md §10). On a miss the
//! cache first tries `build_delta` against each resident entry (the cache
//! retains each entry's `Arc<Graph>`, so the pre-edit graph is still
//! readable), and only then pays for a full rebuild.

use crate::graph::{EdgeId, Graph, NodeId, StructEdit};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Dense id of a live node inside a [`CsrGraph`].
pub type DenseId = u32;

const NO_DENSE: u32 = u32::MAX;

/// Declining thresholds for [`CsrGraph::build_delta`]: a delta that would
/// re-splice more than `n/8 + 64` rows, or whose consolidated patch would
/// exceed half the base slab (plus slack), is worse than a rebuild.
const DELTA_TOUCH_DIVISOR: usize = 8;
const DELTA_TOUCH_SLACK: usize = 64;
const DELTA_PATCH_SLACK: usize = 1024;

/// One adjacency family (out / in / undirected view) in row-table form:
/// row `d` occupies `start[d] .. start[d] + len[d]` of either the shared
/// base slab or the owned patch slab, selected by `in_patch[d]`.
#[derive(Debug, Clone)]
struct Adjacency {
    start: Vec<u32>,
    len: Vec<u32>,
    in_patch: Vec<bool>,
    base_targets: Arc<Vec<u32>>,
    /// Parallel to `base_targets`; empty for the undirected view (which
    /// carries no edge ids).
    base_edges: Arc<Vec<EdgeId>>,
    patch_targets: Vec<u32>,
    patch_edges: Vec<EdgeId>,
}

impl Adjacency {
    fn empty() -> Adjacency {
        Adjacency {
            start: Vec::new(),
            len: Vec::new(),
            in_patch: Vec::new(),
            base_targets: Arc::new(Vec::new()),
            base_edges: Arc::new(Vec::new()),
            patch_targets: Vec::new(),
            patch_edges: Vec::new(),
        }
    }

    /// Converts a freshly packed `offsets`/`targets`/`edges` triple into
    /// row-table form with everything in the base slab.
    fn from_packed(offsets: &[u32], targets: Vec<u32>, edges: Vec<EdgeId>) -> Adjacency {
        let n = offsets.len().saturating_sub(1);
        let mut start = Vec::with_capacity(n);
        let mut len = Vec::with_capacity(n);
        for d in 0..n {
            start.push(offsets[d]);
            len.push(offsets[d + 1] - offsets[d]);
        }
        Adjacency {
            start,
            len,
            in_patch: vec![false; n],
            base_targets: Arc::new(targets),
            base_edges: Arc::new(edges),
            patch_targets: Vec::new(),
            patch_edges: Vec::new(),
        }
    }

    fn targets(&self, d: usize) -> &[u32] {
        let (s, l) = (self.start[d] as usize, self.len[d] as usize);
        if self.in_patch[d] {
            &self.patch_targets[s..s + l]
        } else {
            &self.base_targets[s..s + l]
        }
    }

    fn edge_ids(&self, d: usize) -> &[EdgeId] {
        let (s, l) = (self.start[d] as usize, self.len[d] as usize);
        if self.in_patch[d] {
            &self.patch_edges[s..s + l]
        } else {
            &self.base_edges[s..s + l]
        }
    }

    /// Re-splices this family for a new epoch: `touched` rows (sorted dense
    /// ids under the *new* numbering) are recomputed via `row`, rows already
    /// in this family's patch are consolidated into the new patch, and
    /// every other row keeps sharing the base slab. `with_edges` is false
    /// for the undirected view.
    fn splice(
        &self,
        n_new: usize,
        touched: &[u32],
        with_edges: bool,
        mut row: impl FnMut(u32, &mut Vec<u32>, &mut Vec<EdgeId>),
    ) -> Adjacency {
        let n_old = self.start.len();
        let mut start = self.start.clone();
        let mut len = self.len.clone();
        let mut in_patch = self.in_patch.clone();
        start.resize(n_new, 0);
        len.resize(n_new, 0);
        in_patch.resize(n_new, false);
        let mut patch_targets = Vec::new();
        let mut patch_edges = Vec::new();
        let (mut tbuf, mut ebuf) = (Vec::new(), Vec::new());
        let mut ti = 0;
        for d in 0..n_new {
            let is_touched = ti < touched.len() && touched[ti] as usize == d;
            if is_touched {
                ti += 1;
                tbuf.clear();
                ebuf.clear();
                row(d as u32, &mut tbuf, &mut ebuf);
                start[d] = patch_targets.len() as u32;
                len[d] = tbuf.len() as u32;
                in_patch[d] = true;
                patch_targets.extend_from_slice(&tbuf);
                if with_edges {
                    patch_edges.extend_from_slice(&ebuf);
                }
            } else if d < n_old && self.in_patch[d] {
                // Carried over from the previous epoch's patch: re-home so
                // the old patch slab can be dropped with the old snapshot.
                let (s, l) = (self.start[d] as usize, self.len[d] as usize);
                start[d] = patch_targets.len() as u32;
                patch_targets.extend_from_slice(&self.patch_targets[s..s + l]);
                if with_edges {
                    patch_edges.extend_from_slice(&self.patch_edges[s..s + l]);
                }
            }
            // Untouched base row: cloned start/len already point into the
            // shared base slab.
        }
        Adjacency {
            start,
            len,
            in_patch,
            base_targets: Arc::clone(&self.base_targets),
            base_edges: Arc::clone(&self.base_edges),
            patch_targets,
            patch_edges,
        }
    }

    /// Whether the consolidated patch has outgrown its keep: past this the
    /// per-epoch splice copies rival a rebuild and memory creeps.
    fn patch_bloated(&self) -> bool {
        self.patch_targets.len() * 2 > self.base_targets.len() + DELTA_PATCH_SLACK
    }
}

/// An immutable CSR snapshot of a graph's live structure.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    directed: bool,
    node_bound: usize,
    edge_bound: usize,
    /// Dense id → original node id, ascending.
    node_of: Vec<NodeId>,
    /// Original slot index → dense id (`u32::MAX` for removed slots).
    dense_of: Vec<u32>,
    out: Adjacency,
    /// Directed only; zero rows for undirected graphs (the out-CSR already
    /// stores each edge under both endpoints).
    inn: Adjacency,
    /// Undirected view: merged out ∪ in targets, sorted and deduplicated.
    /// For undirected graphs this aliases the out-CSR (no copy is kept).
    undv: Adjacency,
    live_edges: usize,
    /// True when this snapshot was produced by [`CsrGraph::build_delta`]
    /// (some rows live in a patch slab). Representation detail — excluded
    /// from equality.
    patched: bool,
}

/// Logical equality: two snapshots are equal when every accessor agrees,
/// regardless of how rows are split between base and patch slabs.
impl PartialEq for CsrGraph {
    fn eq(&self, other: &Self) -> bool {
        if self.directed != other.directed
            || self.node_bound != other.node_bound
            || self.edge_bound != other.edge_bound
            || self.live_edges != other.live_edges
            || self.node_of != other.node_of
            || self.dense_of != other.dense_of
        {
            return false;
        }
        (0..self.n() as u32).all(|d| {
            self.out(d) == other.out(d)
                && self.out_edge_ids(d) == other.out_edge_ids(d)
                && self.incoming(d) == other.incoming(d)
                && self.incoming_edge_ids(d) == other.incoming_edge_ids(d)
                && self.und(d) == other.und(d)
        })
    }
}

impl Eq for CsrGraph {}

impl CsrGraph {
    /// Builds a snapshot of `g`'s live nodes and edges.
    pub fn build(g: &Graph) -> CsrGraph {
        let node_of: Vec<NodeId> = g.node_ids().collect();
        let n = node_of.len();
        let mut dense_of = vec![NO_DENSE; g.node_bound()];
        for (d, v) in node_of.iter().enumerate() {
            dense_of[v.index()] = d as u32;
        }

        let mut scratch: Vec<(u32, EdgeId)> = Vec::new();
        let pack = |iter: &mut dyn Iterator<Item = (NodeId, EdgeId)>,
                    scratch: &mut Vec<(u32, EdgeId)>,
                    offsets: &mut Vec<u32>,
                    targets: &mut Vec<u32>,
                    edges: &mut Vec<EdgeId>,
                    dense_of: &[u32]| {
            scratch.clear();
            for (w, e) in iter {
                scratch.push((dense_of[w.index()], e));
            }
            scratch.sort_unstable_by_key(|&(t, e)| (t, e.0));
            for &(t, e) in scratch.iter() {
                targets.push(t);
                edges.push(e);
            }
            offsets.push(targets.len() as u32);
        };

        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_targets = Vec::new();
        let mut out_edges = Vec::new();
        out_offsets.push(0);
        for &v in &node_of {
            pack(
                &mut g.neighbors(v),
                &mut scratch,
                &mut out_offsets,
                &mut out_targets,
                &mut out_edges,
                &dense_of,
            );
        }
        let out = Adjacency::from_packed(&out_offsets, out_targets, out_edges);

        let (mut inn, mut undv) = (Adjacency::empty(), Adjacency::empty());
        if g.is_directed() {
            let mut in_offsets = Vec::with_capacity(n + 1);
            let mut in_targets = Vec::new();
            let mut in_edges = Vec::new();
            in_offsets.push(0);
            for &v in &node_of {
                pack(
                    &mut g.in_neighbors(v),
                    &mut scratch,
                    &mut in_offsets,
                    &mut in_targets,
                    &mut in_edges,
                    &dense_of,
                );
            }
            // Undirected view: merge the two sorted target runs and drop
            // duplicates (an a→b plus b→a pair is one undirected neighbour).
            let mut und_offsets = Vec::with_capacity(n + 1);
            let mut und_targets = Vec::new();
            und_offsets.push(0);
            let mut merged: Vec<u32> = Vec::new();
            for d in 0..n {
                merged.clear();
                let ob = out.targets(d);
                let ib = &in_targets[in_offsets[d] as usize..in_offsets[d + 1] as usize];
                merged.extend_from_slice(ob);
                merged.extend_from_slice(ib);
                merged.sort_unstable();
                merged.dedup();
                und_targets.extend_from_slice(&merged);
                und_offsets.push(und_targets.len() as u32);
            }
            inn = Adjacency::from_packed(&in_offsets, in_targets, in_edges);
            undv = Adjacency::from_packed(&und_offsets, und_targets, Vec::new());
        }

        CsrGraph {
            directed: g.is_directed(),
            node_bound: g.node_bound(),
            edge_bound: g.edge_bound(),
            node_of,
            dense_of,
            out,
            inn,
            undv,
            live_edges: g.edge_count(),
            patched: false,
        }
    }

    /// Builds a snapshot of `new` by re-splicing only the rows that changed
    /// relative to `base` (the cached snapshot of `old`). Untouched rows
    /// keep sharing `base`'s `Arc`'d slabs, so the cost is O(touched + n)
    /// bookkeeping instead of the full O(n + m) repack with per-row sorts.
    ///
    /// Returns `None` — meaning "do a full rebuild instead" — when the edit
    /// cannot be expressed as a row splice or is not worth one:
    /// * directedness differs, or `new` shrank a slot bound (unrelated
    ///   graphs);
    /// * a node was removed or a slot resurrected (the dense remap would
    ///   shift every row's targets);
    /// * a surviving edge changed endpoints (id reuse — not a delta);
    /// * the touched row set exceeds `n/8`, or the consolidated patch would
    ///   exceed half the base slab (delta no longer cheaper than rebuild).
    ///
    /// The caller guarantees `base == CsrGraph::build(old)` logically; the
    /// cache satisfies this by construction since it retains each entry's
    /// `Arc<Graph>`.
    ///
    /// The touched-row set normally comes straight from the graphs' edit
    /// journals in O(edits): when `old`'s journal tip is found in `new`'s
    /// journal, the entries after it are — provably, since journal stamps
    /// are globally unique and cloning preserves the journal — exactly the
    /// structural edits separating the two graphs. Only when lineage cannot
    /// be established that way (deserialised graphs, edits beyond the
    /// journal window) does it fall back to diffing the slot tables.
    pub fn build_delta(old: &Graph, base: &CsrGraph, new: &Graph) -> Option<CsrGraph> {
        if old.is_directed() != new.is_directed()
            || new.node_bound() < old.node_bound()
            || new.edge_bound() < old.edge_bound()
            || base.node_bound != old.node_bound()
        {
            return None;
        }
        if let Some(edits) = new.journal().edits_since(old.journal().tip()) {
            return Self::journal_delta(base, new, &edits);
        }
        Self::scan_delta(old, base, new)
    }

    /// Delta via the edit journal: walks the edits separating `base`'s
    /// graph from `new`, accumulating touched rows, without ever scanning
    /// the untouched structure.
    fn journal_delta(base: &CsrGraph, new: &Graph, edits: &[StructEdit]) -> Option<CsrGraph> {
        let mut node_of = base.node_of.clone();
        let mut dense_of = base.dense_of.clone();
        let mut touched: Vec<u32> = Vec::new();
        for &edit in edits {
            match edit {
                StructEdit::AddNode(v) => {
                    // Node ids are append-only, so each journaled add lands
                    // exactly at the then-current bound.
                    if v.index() != dense_of.len() {
                        return None;
                    }
                    dense_of.push(node_of.len() as u32);
                    touched.push(node_of.len() as u32);
                    node_of.push(v);
                }
                // A removal shifts the dense remap of every later node.
                StructEdit::RemoveNode => return None,
                StructEdit::AddEdge(s, d) | StructEdit::RemoveEdge(s, d) => {
                    let (ds, dd) = (dense_of[s.index()], dense_of[d.index()]);
                    if ds == NO_DENSE || dd == NO_DENSE {
                        return None;
                    }
                    touched.push(ds);
                    touched.push(dd);
                }
            }
        }
        if dense_of.len() != new.node_bound() {
            return None;
        }
        Self::splice_delta(base, new, node_of, dense_of, touched)
    }

    /// Delta by diffing the slot tables of `old` and `new` directly — the
    /// O(n + m) fallback for graphs whose journals cannot prove lineage.
    fn scan_delta(old: &Graph, base: &CsrGraph, new: &Graph) -> Option<CsrGraph> {
        // Node liveness over the common slot prefix must be unchanged: a
        // removal shifts the dense remap of every later node, a
        // resurrection breaks the id-monotonicity invariant. Appended live
        // slots extend the remap in slot order.
        let mut node_of = base.node_of.clone();
        let mut dense_of = base.dense_of.clone();
        for i in 0..old.node_bound() {
            if old.contains_node(NodeId(i as u32)) != new.contains_node(NodeId(i as u32)) {
                return None;
            }
        }
        dense_of.resize(new.node_bound(), NO_DENSE);
        let mut touched: Vec<u32> = Vec::new();
        for i in old.node_bound()..new.node_bound() {
            if new.contains_node(NodeId(i as u32)) {
                dense_of[i] = node_of.len() as u32;
                touched.push(node_of.len() as u32);
                node_of.push(NodeId(i as u32));
            }
        }

        // Edge liveness diff: removed/added edges touch their endpoint
        // rows. Surviving edges must keep their endpoints (labels and
        // attributes don't reach the CSR).
        let mut touch_endpoints = |src: NodeId, dst: NodeId, dense_of: &[u32]| {
            touched.push(dense_of[src.index()]);
            touched.push(dense_of[dst.index()]);
        };
        for i in 0..old.edge_bound() {
            let e = EdgeId(i as u32);
            match (old.contains_edge(e), new.contains_edge(e)) {
                (true, true) => {
                    let was = old.edge_endpoints(e).ok()?;
                    let is = new.edge_endpoints(e).ok()?;
                    if was != is {
                        return None;
                    }
                }
                (true, false) => {
                    let (s, d) = old.edge_endpoints(e).ok()?;
                    touch_endpoints(s, d, &dense_of);
                }
                (false, true) => return None,
                (false, false) => {}
            }
        }
        for i in old.edge_bound()..new.edge_bound() {
            let e = EdgeId(i as u32);
            if new.contains_edge(e) {
                let (s, d) = new.edge_endpoints(e).ok()?;
                touch_endpoints(s, d, &dense_of);
            }
        }
        Self::splice_delta(base, new, node_of, dense_of, touched)
    }

    /// Common delta tail: given the new dense remap and the touched-row
    /// set, re-splices the adjacency families (shared base slabs, fresh
    /// patch) — or declines when the delta is no longer cheaper than a
    /// rebuild.
    fn splice_delta(
        base: &CsrGraph,
        new: &Graph,
        node_of: Vec<NodeId>,
        dense_of: Vec<u32>,
        mut touched: Vec<u32>,
    ) -> Option<CsrGraph> {
        let n_new = node_of.len();
        touched.sort_unstable();
        touched.dedup();
        if touched.len() * DELTA_TOUCH_DIVISOR > n_new + DELTA_TOUCH_SLACK {
            return None;
        }

        let out = base.out.splice(n_new, &touched, true, |d, tbuf, ebuf| {
            packed_row(&mut new.neighbors(node_of[d as usize]), &dense_of, tbuf, ebuf)
        });
        let (inn, undv) = if new.is_directed() {
            let inn = base.inn.splice(n_new, &touched, true, |d, tbuf, ebuf| {
                packed_row(&mut new.in_neighbors(node_of[d as usize]), &dense_of, tbuf, ebuf)
            });
            let undv = base.undv.splice(n_new, &touched, false, |d, tbuf, _ebuf| {
                let v = node_of[d as usize];
                for (w, _) in new.neighbors(v) {
                    tbuf.push(dense_of[w.index()]);
                }
                for (w, _) in new.in_neighbors(v) {
                    tbuf.push(dense_of[w.index()]);
                }
                tbuf.sort_unstable();
                tbuf.dedup();
            });
            (inn, undv)
        } else {
            (Adjacency::empty(), Adjacency::empty())
        };
        if out.patch_bloated() || inn.patch_bloated() || undv.patch_bloated() {
            return None;
        }

        Some(CsrGraph {
            directed: new.is_directed(),
            node_bound: new.node_bound(),
            edge_bound: new.edge_bound(),
            node_of,
            dense_of,
            out,
            inn,
            undv,
            live_edges: new.edge_count(),
            patched: true,
        })
    }

    /// Number of live nodes.
    pub fn n(&self) -> usize {
        self.node_of.len()
    }

    /// Number of live edges.
    pub fn m(&self) -> usize {
        self.live_edges
    }

    /// Whether the snapshotted graph was directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Whether this snapshot was spliced by [`CsrGraph::build_delta`]
    /// (representation detail; excluded from equality).
    pub fn is_patched(&self) -> bool {
        self.patched
    }

    /// Node-slot bound of the snapshotted graph (for slot-indexed outputs).
    pub fn node_bound(&self) -> usize {
        self.node_bound
    }

    /// Edge-slot bound of the snapshotted graph (for slot-indexed weights).
    pub fn edge_bound(&self) -> usize {
        self.edge_bound
    }

    /// Original id of dense node `d`.
    pub fn node_of(&self, d: DenseId) -> NodeId {
        self.node_of[d as usize]
    }

    /// All original ids, ascending (dense order).
    pub fn nodes(&self) -> &[NodeId] {
        &self.node_of
    }

    /// Dense id of a live original node, `None` for removed/unknown slots.
    pub fn dense_of(&self, v: NodeId) -> Option<DenseId> {
        match self.dense_of.get(v.index()) {
            Some(&d) if d != NO_DENSE => Some(d),
            _ => None,
        }
    }

    /// Out-neighbour dense ids of `d`, sorted ascending.
    pub fn out(&self, d: DenseId) -> &[u32] {
        self.out.targets(d as usize)
    }

    /// Edge ids parallel to [`CsrGraph::out`].
    pub fn out_edge_ids(&self, d: DenseId) -> &[EdgeId] {
        self.out.edge_ids(d as usize)
    }

    /// In-neighbour dense ids of `d` (directed; empty for undirected).
    pub fn incoming(&self, d: DenseId) -> &[u32] {
        if !self.directed {
            return &[];
        }
        self.inn.targets(d as usize)
    }

    /// Edge ids parallel to [`CsrGraph::incoming`].
    pub fn incoming_edge_ids(&self, d: DenseId) -> &[EdgeId] {
        if !self.directed {
            return &[];
        }
        self.inn.edge_ids(d as usize)
    }

    /// Sources whose edges point *at* `d` under PageRank's mass-flow view:
    /// the in-CSR for directed graphs, the (symmetric) out-CSR otherwise.
    pub fn pull_sources(&self, d: DenseId) -> &[u32] {
        if self.directed {
            self.incoming(d)
        } else {
            self.out(d)
        }
    }

    /// Undirected-view neighbour dense ids of `d`: sorted, deduplicated
    /// union of out- and in-neighbours. For undirected graphs this is the
    /// out-CSR itself.
    pub fn und(&self, d: DenseId) -> &[u32] {
        if !self.directed {
            return self.out(d);
        }
        self.undv.targets(d as usize)
    }

    /// Out-degree of `d` (matches [`Graph::degree`]).
    pub fn degree(&self, d: DenseId) -> usize {
        self.out(d).len()
    }

    /// In-degree of `d` (matches [`Graph::in_degree`]).
    pub fn in_degree(&self, d: DenseId) -> usize {
        self.incoming(d).len()
    }

    /// Total degree of `d` (matches [`Graph::total_degree`]).
    pub fn total_degree(&self, d: DenseId) -> usize {
        self.degree(d) + self.in_degree(d)
    }
}

/// Packs one adjacency row: dense-mapped, sorted by (target, edge id).
fn packed_row(
    iter: &mut dyn Iterator<Item = (NodeId, EdgeId)>,
    dense_of: &[u32],
    tbuf: &mut Vec<u32>,
    ebuf: &mut Vec<EdgeId>,
) {
    let mut pairs: Vec<(u32, EdgeId)> = iter.map(|(w, e)| (dense_of[w.index()], e)).collect();
    pairs.sort_unstable_by_key(|&(t, e)| (t, e.0));
    for (t, e) in pairs {
        tbuf.push(t);
        ebuf.push(e);
    }
}

/// One recorded snapshot build, drained by the executor for monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrBuild {
    /// Live nodes in the snapshot.
    pub nodes: usize,
    /// Live edges in the snapshot.
    pub edges: usize,
    /// Wall-clock build time in microseconds.
    pub micros: u64,
    /// True when the snapshot was spliced from a cached predecessor
    /// ([`CsrGraph::build_delta`]) instead of fully rebuilt.
    pub delta: bool,
}

struct CacheEntry {
    graph: Arc<Graph>,
    csr: Arc<CsrGraph>,
}

struct CacheInner {
    entries: Vec<CacheEntry>,
    capacity: usize,
    builds: Vec<CsrBuild>,
    hits: u64,
    misses: u64,
}

/// An epoch cache of CSR snapshots, keyed by `Arc<Graph>` identity.
///
/// Entries retain their `Arc<Graph>`, so a pointer match guarantees the
/// graph content is unchanged (copy-on-write mutation allocates a new
/// `Arc`); see the module docs for why this is the epoch-invalidation rule.
/// The cache is small and most-recently-used-first: one entry per graph
/// epoch alive in a chain, plus headroom for database graphs. A miss first
/// tries [`CsrGraph::build_delta`] against each resident entry (most
/// recent first) — the common "small edit, new epoch" case then costs a
/// row splice instead of a full rebuild, transparently to every holder of
/// the cache, including the cross-session shared cache.
pub struct CsrCache {
    inner: Mutex<CacheInner>,
}

impl Default for CsrCache {
    fn default() -> Self {
        CsrCache::new(4)
    }
}

impl CsrCache {
    /// Creates a cache holding up to `capacity` snapshots (minimum 1).
    pub fn new(capacity: usize) -> CsrCache {
        CsrCache {
            inner: Mutex::new(CacheInner {
                entries: Vec::new(),
                capacity: capacity.max(1),
                builds: Vec::new(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Returns the snapshot for `g`, building (and recording) it on a miss.
    pub fn get_or_build(&self, g: &Arc<Graph>) -> Arc<CsrGraph> {
        let (csr, built) = self.get_or_build_tracked(g);
        if let Some(b) = built {
            // lockdoc: recover(cache holders never leave entries half-written; see get_or_build_tracked)
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.builds.push(b);
        }
        csr
    }

    /// Like [`CsrCache::get_or_build`], but hands the build record back to
    /// the caller instead of accumulating it in the cache. A cache shared
    /// across sessions uses this so each session logs (and drains) only its
    /// own builds — monitoring events must not leak across tenants, and an
    /// undrained global log must not grow without bound.
    pub fn get_or_build_tracked(&self, g: &Arc<Graph>) -> (Arc<CsrGraph>, Option<CsrBuild>) {
        // lockdoc: recover(entries are whole CacheEntry values inserted in one call; a panicked holder cannot leave one torn, and counters are advisory)
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = inner.entries.iter().position(|e| Arc::ptr_eq(&e.graph, g)) {
            inner.hits += 1;
            let entry = inner.entries.remove(pos);
            let csr = Arc::clone(&entry.csr);
            inner.entries.insert(0, entry);
            return (csr, None);
        }
        inner.misses += 1;
        let started = Instant::now();
        let spliced = inner
            .entries
            .iter()
            .find_map(|e| CsrGraph::build_delta(&e.graph, &e.csr, g));
        let delta = spliced.is_some();
        let csr = Arc::new(match spliced {
            Some(csr) => csr,
            None => CsrGraph::build(g),
        });
        let build = CsrBuild {
            nodes: csr.n(),
            edges: csr.m(),
            micros: started.elapsed().as_micros() as u64,
            delta,
        };
        inner.entries.insert(
            0,
            CacheEntry { graph: Arc::clone(g), csr: Arc::clone(&csr) },
        );
        let cap = inner.capacity;
        inner.entries.truncate(cap);
        (csr, Some(build))
    }

    /// Drops the snapshot cached for `g` (pointer identity), returning
    /// whether one was present. Sessions call this when they *replace*
    /// their graph: the entry would never be hit again (the new graph is a
    /// new `Arc`), but without eviction it pins the dead epoch's graph and
    /// snapshot in memory until capacity pushes them out — unacceptable in
    /// a shared, long-lived cache.
    pub fn invalidate(&self, g: &Arc<Graph>) -> bool {
        // lockdoc: recover(removing a dead epoch from a structurally valid cache is safe after poison)
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.entries.iter().position(|e| Arc::ptr_eq(&e.graph, g)) {
            Some(pos) => {
                inner.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Number of snapshots currently cached.
    pub fn len(&self) -> usize {
        // lockdoc: recover(read-only observation of a structurally valid cache)
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.entries.len()
    }

    /// Whether the cache holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the build records accumulated since the last drain.
    pub fn drain_builds(&self) -> Vec<CsrBuild> {
        // lockdoc: recover(draining a possibly-short build log after a panic loses only metrics)
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut inner.builds)
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        // lockdoc: recover(read-only observation of advisory counters)
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (inner.hits, inner.misses)
    }
}

impl std::fmt::Debug for CsrCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses) = self.stats();
        f.debug_struct("CsrCache").field("hits", &hits).field("misses", &misses).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Golden layout fixture: a small directed graph with a removed node,
    /// pinning the exact dense remap and all three adjacency families.
    #[test]
    fn golden_directed_layout_with_deletion() {
        // a→b (e0), a→c (e1), c→b (e2), b→a (e3), d→a (e4); then remove d.
        let mut g = GraphBuilder::directed()
            .edge("a", "b", "r")
            .edge("a", "c", "r")
            .edge("c", "b", "r")
            .edge("b", "a", "r")
            .edge("d", "a", "r")
            .build();
        let d = NodeId(3);
        g.remove_node(d).expect("d exists");
        let csr = CsrGraph::build(&g);

        assert!(csr.is_directed());
        assert!(!csr.is_patched());
        assert_eq!(csr.n(), 3);
        assert_eq!(csr.m(), 4);
        assert_eq!(csr.nodes(), &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(csr.dense_of(NodeId(0)), Some(0));
        assert_eq!(csr.dense_of(NodeId(3)), None, "removed slot has no dense id");

        // Out rows: a→{b,c}, b→{a}, c→{b}; targets sorted ascending.
        assert_eq!(csr.out(0), &[1, 2]);
        assert_eq!(csr.out(1), &[0]);
        assert_eq!(csr.out(2), &[1]);
        assert_eq!(csr.out_edge_ids(0), &[EdgeId(0), EdgeId(1)]);
        assert_eq!(csr.out_edge_ids(1), &[EdgeId(3)]);
        assert_eq!(csr.out_edge_ids(2), &[EdgeId(2)]);

        // In rows: a←{b}, b←{a,c}, c←{a}. (d→a died with d.)
        assert_eq!(csr.incoming(0), &[1]);
        assert_eq!(csr.incoming(1), &[0, 2]);
        assert_eq!(csr.incoming(2), &[0]);
        assert_eq!(csr.incoming_edge_ids(0), &[EdgeId(3)]);
        assert_eq!(csr.incoming_edge_ids(1), &[EdgeId(0), EdgeId(2)]);
        assert_eq!(csr.incoming_edge_ids(2), &[EdgeId(1)]);

        // Undirected view dedups the a↔b reciprocal pair.
        assert_eq!(csr.und(0), &[1, 2]);
        assert_eq!(csr.und(1), &[0, 2]);
        assert_eq!(csr.und(2), &[0, 1]);

        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.in_degree(1), 2);
        assert_eq!(csr.total_degree(1), 3);
    }

    #[test]
    fn undirected_und_view_aliases_out() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .build();
        let csr = CsrGraph::build(&g);
        assert_eq!(csr.n(), 3);
        assert_eq!(csr.m(), 2);
        assert_eq!(csr.und(1), csr.out(1));
        assert_eq!(csr.und(1), &[0, 2]);
        assert!(csr.incoming(1).is_empty());
        assert_eq!(csr.total_degree(1), 2, "undirected out-CSR is total degree");
    }

    /// A one-edge edit splices into a patched snapshot that is logically
    /// identical to a from-scratch rebuild.
    #[test]
    fn delta_single_edge_add_matches_rebuild() {
        let old = GraphBuilder::directed()
            .edge("a", "b", "r")
            .edge("b", "c", "r")
            .edge("c", "a", "r")
            .build();
        let base = CsrGraph::build(&old);
        let mut new = old.clone();
        new.add_edge(NodeId(0), NodeId(2), "r").expect("nodes exist");

        let delta = CsrGraph::build_delta(&old, &base, &new).expect("spliceable edit");
        assert!(delta.is_patched());
        assert_eq!(delta, CsrGraph::build(&new));
        // Untouched rows still share the base slab.
        assert_eq!(delta.out(1), base.out(1));
    }

    /// Edge removal, node append, and a follow-up chained delta all splice;
    /// each patched epoch equals its rebuild.
    #[test]
    fn delta_chains_across_epochs() {
        let g0 = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("c", "d", "-")
            .build();
        let c0 = CsrGraph::build(&g0);

        let mut g1 = g0.clone();
        let (_, e) = (g1.node_ids().next(), EdgeId(1));
        g1.remove_edge(e).expect("edge exists");
        let c1 = CsrGraph::build_delta(&g0, &c0, &g1).expect("edge removal splices");
        assert_eq!(c1, CsrGraph::build(&g1));

        let mut g2 = g1.clone();
        let v = g2.add_node("e");
        g2.add_edge(v, NodeId(0), "-").expect("nodes exist");
        let c2 = CsrGraph::build_delta(&g1, &c1, &g2).expect("append splices on a delta base");
        assert!(c2.is_patched());
        assert_eq!(c2, CsrGraph::build(&g2));
    }

    /// Node removal shifts the dense remap — `build_delta` must decline.
    #[test]
    fn delta_declines_node_removal() {
        let old = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .build();
        let base = CsrGraph::build(&old);
        let mut new = old.clone();
        new.remove_node(NodeId(0)).expect("node exists");
        assert!(CsrGraph::build_delta(&old, &base, &new).is_none());
    }

    /// An attribute/label-only edit touches zero rows: the delta shares
    /// every slab yet still compares equal to a rebuild.
    #[test]
    fn delta_relabel_touches_nothing() {
        let old = GraphBuilder::undirected().edge("a", "b", "-").build();
        let base = CsrGraph::build(&old);
        let mut new = old.clone();
        new.set_node_attr(NodeId(0), "k", 1i64).expect("node exists");
        let delta = CsrGraph::build_delta(&old, &base, &new).expect("attr edit splices");
        assert_eq!(delta, CsrGraph::build(&new));
        assert_eq!(delta.out(0), base.out(0));
    }

    /// The cache tries a delta before a full rebuild on each new epoch.
    #[test]
    fn cache_miss_uses_delta_when_possible() {
        let cache = CsrCache::default();
        let mut g = Arc::new(
            GraphBuilder::undirected().edge("a", "b", "-").edge("b", "c", "-").build(),
        );
        let (_, first) = cache.get_or_build_tracked(&g);
        assert_eq!(first.map(|b| b.delta), Some(false), "cold build is full");

        let m = Arc::make_mut(&mut g);
        let v = m.add_node("d");
        m.add_edge(v, NodeId(0), "-").expect("nodes exist");
        let (csr, second) = cache.get_or_build_tracked(&g);
        assert_eq!(second.map(|b| b.delta), Some(true), "edit epoch splices");
        assert!(csr.is_patched());
        assert_eq!(*csr, CsrGraph::build(&g));
    }

    #[test]
    fn cache_hits_on_same_arc_and_misses_after_cow_mutation() {
        let cache = CsrCache::default();
        let mut g = Arc::new(
            GraphBuilder::undirected().edge("a", "b", "-").build(),
        );
        let first = cache.get_or_build(&g);
        let again = cache.get_or_build(&g);
        assert!(Arc::ptr_eq(&first, &again), "same epoch: cached snapshot");
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.drain_builds().len(), 1);

        // Copy-on-write mutation: the cache pins the old Arc, so make_mut
        // clones → new pointer → new epoch → rebuild (here: a delta build).
        Arc::make_mut(&mut g).add_node("c");
        let rebuilt = cache.get_or_build(&g);
        assert!(!Arc::ptr_eq(&first, &rebuilt));
        assert_eq!(rebuilt.n(), 3);
        assert_eq!(*rebuilt, CsrGraph::build(&g));
        assert_eq!(cache.drain_builds().len(), 1, "one new build since drain");
    }

    #[test]
    fn cache_capacity_evicts_least_recently_used() {
        let cache = CsrCache::new(2);
        let graphs: Vec<Arc<Graph>> = (0..3)
            .map(|i| {
                let mut g = Graph::undirected();
                for _ in 0..=i {
                    g.add_node("x");
                }
                Arc::new(g)
            })
            .collect();
        for g in &graphs {
            cache.get_or_build(g);
        }
        // graphs[0] was evicted; re-fetch is a miss.
        cache.get_or_build(&graphs[0]);
        assert_eq!(cache.stats(), (0, 4));
        // graphs[2] is still resident.
        cache.get_or_build(&graphs[2]);
        assert_eq!(cache.stats(), (1, 4));
    }

    #[test]
    fn empty_graph_snapshot() {
        let csr = CsrGraph::build(&Graph::directed());
        assert_eq!(csr.n(), 0);
        assert_eq!(csr.m(), 0);
        assert!(csr.nodes().is_empty());
    }
}
