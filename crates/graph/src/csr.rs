//! Compressed sparse row (CSR) snapshots of a [`Graph`].
//!
//! The mutable [`Graph`] stores adjacency as `Vec<Vec<(NodeId, EdgeId)>>`
//! with tombstoned slots — flexible for the edit APIs, but pointer-chasing
//! and tombstone-skipping on every analysis call. [`CsrGraph`] is an
//! immutable, cache-friendly snapshot of the *live* structure:
//!
//! * a dense remap of live nodes (`node_of` / `dense_of`), so kernels index
//!   flat arrays with no tombstone checks;
//! * out-adjacency as `offsets`/`targets`/`edge id` arrays, sorted per node
//!   by ascending dense target (ties by edge id);
//! * for directed graphs, an in-CSR of the same shape plus a merged,
//!   deduplicated *undirected view* (the traversal algorithms in
//!   [`crate::algo`] treat directed graphs as undirected);
//! * a per-node degree array for O(1) stat scans.
//!
//! A snapshot is built once per *mutation epoch* and cached in
//! [`CsrCache`]. The executor holds graphs behind copy-on-write
//! `Arc<Graph>`: any mutation goes through `Arc::make_mut`, which clones the
//! graph into a fresh allocation whenever a snapshot (or the cache) still
//! holds a reference. Keying the cache by `Arc` pointer identity while
//! retaining the `Arc` therefore *is* the epoch rule — a hit proves the
//! bytes are unchanged since the snapshot was built, equivalently to the
//! scheduler's per-epoch graph fingerprint (DESIGN.md §10).

use crate::graph::{EdgeId, Graph, NodeId};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Dense id of a live node inside a [`CsrGraph`].
pub type DenseId = u32;

const NO_DENSE: u32 = u32::MAX;

/// An immutable CSR snapshot of a graph's live structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    directed: bool,
    node_bound: usize,
    edge_bound: usize,
    /// Dense id → original node id, ascending.
    node_of: Vec<NodeId>,
    /// Original slot index → dense id (`u32::MAX` for removed slots).
    dense_of: Vec<u32>,
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    out_edges: Vec<EdgeId>,
    /// Directed only; empty for undirected graphs (the out-CSR already
    /// stores each edge under both endpoints).
    in_offsets: Vec<u32>,
    in_targets: Vec<u32>,
    in_edges: Vec<EdgeId>,
    /// Undirected view: merged out ∪ in targets, sorted and deduplicated.
    /// For undirected graphs this aliases the out-CSR (no copy is kept).
    und_offsets: Vec<u32>,
    und_targets: Vec<u32>,
    live_edges: usize,
}

impl CsrGraph {
    /// Builds a snapshot of `g`'s live nodes and edges.
    pub fn build(g: &Graph) -> CsrGraph {
        let node_of: Vec<NodeId> = g.node_ids().collect();
        let n = node_of.len();
        let mut dense_of = vec![NO_DENSE; g.node_bound()];
        for (d, v) in node_of.iter().enumerate() {
            dense_of[v.index()] = d as u32;
        }

        let mut scratch: Vec<(u32, EdgeId)> = Vec::new();
        let pack = |iter: &mut dyn Iterator<Item = (NodeId, EdgeId)>,
                    scratch: &mut Vec<(u32, EdgeId)>,
                    offsets: &mut Vec<u32>,
                    targets: &mut Vec<u32>,
                    edges: &mut Vec<EdgeId>,
                    dense_of: &[u32]| {
            scratch.clear();
            for (w, e) in iter {
                scratch.push((dense_of[w.index()], e));
            }
            scratch.sort_unstable_by_key(|&(t, e)| (t, e.0));
            for &(t, e) in scratch.iter() {
                targets.push(t);
                edges.push(e);
            }
            offsets.push(targets.len() as u32);
        };

        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_targets = Vec::new();
        let mut out_edges = Vec::new();
        out_offsets.push(0);
        for &v in &node_of {
            pack(
                &mut g.neighbors(v),
                &mut scratch,
                &mut out_offsets,
                &mut out_targets,
                &mut out_edges,
                &dense_of,
            );
        }

        let (mut in_offsets, mut in_targets, mut in_edges) = (Vec::new(), Vec::new(), Vec::new());
        let (mut und_offsets, mut und_targets) = (Vec::new(), Vec::new());
        if g.is_directed() {
            in_offsets.reserve(n + 1);
            in_offsets.push(0);
            for &v in &node_of {
                pack(
                    &mut g.in_neighbors(v),
                    &mut scratch,
                    &mut in_offsets,
                    &mut in_targets,
                    &mut in_edges,
                    &dense_of,
                );
            }
            // Undirected view: merge the two sorted target runs and drop
            // duplicates (an a→b plus b→a pair is one undirected neighbour).
            und_offsets.reserve(n + 1);
            und_offsets.push(0);
            let mut merged: Vec<u32> = Vec::new();
            for d in 0..n {
                merged.clear();
                let o = &out_targets[out_offsets[d] as usize..out_offsets[d + 1] as usize];
                let i = &in_targets[in_offsets[d] as usize..in_offsets[d + 1] as usize];
                merged.extend_from_slice(o);
                merged.extend_from_slice(i);
                merged.sort_unstable();
                merged.dedup();
                und_targets.extend_from_slice(&merged);
                und_offsets.push(und_targets.len() as u32);
            }
        }

        CsrGraph {
            directed: g.is_directed(),
            node_bound: g.node_bound(),
            edge_bound: g.edge_bound(),
            node_of,
            dense_of,
            out_offsets,
            out_targets,
            out_edges,
            in_offsets,
            in_targets,
            in_edges,
            und_offsets,
            und_targets,
            live_edges: g.edge_count(),
        }
    }

    /// Number of live nodes.
    pub fn n(&self) -> usize {
        self.node_of.len()
    }

    /// Number of live edges.
    pub fn m(&self) -> usize {
        self.live_edges
    }

    /// Whether the snapshotted graph was directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Node-slot bound of the snapshotted graph (for slot-indexed outputs).
    pub fn node_bound(&self) -> usize {
        self.node_bound
    }

    /// Edge-slot bound of the snapshotted graph (for slot-indexed weights).
    pub fn edge_bound(&self) -> usize {
        self.edge_bound
    }

    /// Original id of dense node `d`.
    pub fn node_of(&self, d: DenseId) -> NodeId {
        self.node_of[d as usize]
    }

    /// All original ids, ascending (dense order).
    pub fn nodes(&self) -> &[NodeId] {
        &self.node_of
    }

    /// Dense id of a live original node, `None` for removed/unknown slots.
    pub fn dense_of(&self, v: NodeId) -> Option<DenseId> {
        match self.dense_of.get(v.index()) {
            Some(&d) if d != NO_DENSE => Some(d),
            _ => None,
        }
    }

    /// Out-neighbour dense ids of `d`, sorted ascending.
    pub fn out(&self, d: DenseId) -> &[u32] {
        let d = d as usize;
        &self.out_targets[self.out_offsets[d] as usize..self.out_offsets[d + 1] as usize]
    }

    /// Edge ids parallel to [`CsrGraph::out`].
    pub fn out_edge_ids(&self, d: DenseId) -> &[EdgeId] {
        let d = d as usize;
        &self.out_edges[self.out_offsets[d] as usize..self.out_offsets[d + 1] as usize]
    }

    /// In-neighbour dense ids of `d` (directed; empty for undirected).
    pub fn incoming(&self, d: DenseId) -> &[u32] {
        if !self.directed {
            return &[];
        }
        let d = d as usize;
        &self.in_targets[self.in_offsets[d] as usize..self.in_offsets[d + 1] as usize]
    }

    /// Edge ids parallel to [`CsrGraph::incoming`].
    pub fn incoming_edge_ids(&self, d: DenseId) -> &[EdgeId] {
        if !self.directed {
            return &[];
        }
        let d = d as usize;
        &self.in_edges[self.in_offsets[d] as usize..self.in_offsets[d + 1] as usize]
    }

    /// Sources whose edges point *at* `d` under PageRank's mass-flow view:
    /// the in-CSR for directed graphs, the (symmetric) out-CSR otherwise.
    pub fn pull_sources(&self, d: DenseId) -> &[u32] {
        if self.directed {
            self.incoming(d)
        } else {
            self.out(d)
        }
    }

    /// Undirected-view neighbour dense ids of `d`: sorted, deduplicated
    /// union of out- and in-neighbours. For undirected graphs this is the
    /// out-CSR itself.
    pub fn und(&self, d: DenseId) -> &[u32] {
        if !self.directed {
            return self.out(d);
        }
        let d = d as usize;
        &self.und_targets[self.und_offsets[d] as usize..self.und_offsets[d + 1] as usize]
    }

    /// Out-degree of `d` (matches [`Graph::degree`]).
    pub fn degree(&self, d: DenseId) -> usize {
        self.out(d).len()
    }

    /// In-degree of `d` (matches [`Graph::in_degree`]).
    pub fn in_degree(&self, d: DenseId) -> usize {
        self.incoming(d).len()
    }

    /// Total degree of `d` (matches [`Graph::total_degree`]).
    pub fn total_degree(&self, d: DenseId) -> usize {
        self.degree(d) + self.in_degree(d)
    }
}

/// One recorded snapshot build, drained by the executor for monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrBuild {
    /// Live nodes in the snapshot.
    pub nodes: usize,
    /// Live edges in the snapshot.
    pub edges: usize,
    /// Wall-clock build time in microseconds.
    pub micros: u64,
}

struct CacheEntry {
    graph: Arc<Graph>,
    csr: Arc<CsrGraph>,
}

struct CacheInner {
    entries: Vec<CacheEntry>,
    capacity: usize,
    builds: Vec<CsrBuild>,
    hits: u64,
    misses: u64,
}

/// An epoch cache of CSR snapshots, keyed by `Arc<Graph>` identity.
///
/// Entries retain their `Arc<Graph>`, so a pointer match guarantees the
/// graph content is unchanged (copy-on-write mutation allocates a new
/// `Arc`); see the module docs for why this is the epoch-invalidation rule.
/// The cache is small and most-recently-used-first: one entry per graph
/// epoch alive in a chain, plus headroom for database graphs.
pub struct CsrCache {
    inner: Mutex<CacheInner>,
}

impl Default for CsrCache {
    fn default() -> Self {
        CsrCache::new(4)
    }
}

impl CsrCache {
    /// Creates a cache holding up to `capacity` snapshots (minimum 1).
    pub fn new(capacity: usize) -> CsrCache {
        CsrCache {
            inner: Mutex::new(CacheInner {
                entries: Vec::new(),
                capacity: capacity.max(1),
                builds: Vec::new(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Returns the snapshot for `g`, building (and recording) it on a miss.
    pub fn get_or_build(&self, g: &Arc<Graph>) -> Arc<CsrGraph> {
        let (csr, built) = self.get_or_build_tracked(g);
        if let Some(b) = built {
            // lockdoc: recover(cache holders never leave entries half-written; see get_or_build_tracked)
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.builds.push(b);
        }
        csr
    }

    /// Like [`CsrCache::get_or_build`], but hands the build record back to
    /// the caller instead of accumulating it in the cache. A cache shared
    /// across sessions uses this so each session logs (and drains) only its
    /// own builds — monitoring events must not leak across tenants, and an
    /// undrained global log must not grow without bound.
    pub fn get_or_build_tracked(&self, g: &Arc<Graph>) -> (Arc<CsrGraph>, Option<CsrBuild>) {
        // lockdoc: recover(entries are whole CacheEntry values inserted in one call; a panicked holder cannot leave one torn, and counters are advisory)
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = inner.entries.iter().position(|e| Arc::ptr_eq(&e.graph, g)) {
            inner.hits += 1;
            let entry = inner.entries.remove(pos);
            let csr = Arc::clone(&entry.csr);
            inner.entries.insert(0, entry);
            return (csr, None);
        }
        inner.misses += 1;
        let started = Instant::now();
        let csr = Arc::new(CsrGraph::build(g));
        let build = CsrBuild {
            nodes: csr.n(),
            edges: csr.m(),
            micros: started.elapsed().as_micros() as u64,
        };
        inner.entries.insert(
            0,
            CacheEntry { graph: Arc::clone(g), csr: Arc::clone(&csr) },
        );
        let cap = inner.capacity;
        inner.entries.truncate(cap);
        (csr, Some(build))
    }

    /// Drops the snapshot cached for `g` (pointer identity), returning
    /// whether one was present. Sessions call this when they *replace*
    /// their graph: the entry would never be hit again (the new graph is a
    /// new `Arc`), but without eviction it pins the dead epoch's graph and
    /// snapshot in memory until capacity pushes them out — unacceptable in
    /// a shared, long-lived cache.
    pub fn invalidate(&self, g: &Arc<Graph>) -> bool {
        // lockdoc: recover(removing a dead epoch from a structurally valid cache is safe after poison)
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.entries.iter().position(|e| Arc::ptr_eq(&e.graph, g)) {
            Some(pos) => {
                inner.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Number of snapshots currently cached.
    pub fn len(&self) -> usize {
        // lockdoc: recover(read-only observation of a structurally valid cache)
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.entries.len()
    }

    /// Whether the cache holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the build records accumulated since the last drain.
    pub fn drain_builds(&self) -> Vec<CsrBuild> {
        // lockdoc: recover(draining a possibly-short build log after a panic loses only metrics)
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut inner.builds)
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        // lockdoc: recover(read-only observation of advisory counters)
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (inner.hits, inner.misses)
    }
}

impl std::fmt::Debug for CsrCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses) = self.stats();
        f.debug_struct("CsrCache").field("hits", &hits).field("misses", &misses).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Golden layout fixture: a small directed graph with a removed node,
    /// pinning the exact dense remap and all three CSR array families.
    #[test]
    fn golden_directed_layout_with_deletion() {
        // a→b (e0), a→c (e1), c→b (e2), b→a (e3), d→a (e4); then remove d.
        let mut g = GraphBuilder::directed()
            .edge("a", "b", "r")
            .edge("a", "c", "r")
            .edge("c", "b", "r")
            .edge("b", "a", "r")
            .edge("d", "a", "r")
            .build();
        let d = NodeId(3);
        g.remove_node(d).expect("d exists");
        let csr = CsrGraph::build(&g);

        assert!(csr.is_directed());
        assert_eq!(csr.n(), 3);
        assert_eq!(csr.m(), 4);
        assert_eq!(csr.nodes(), &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(csr.dense_of(NodeId(0)), Some(0));
        assert_eq!(csr.dense_of(NodeId(3)), None, "removed slot has no dense id");

        // Out-CSR: a→{b,c}, b→{a}, c→{b}; targets sorted ascending.
        assert_eq!(csr.out_offsets, vec![0, 2, 3, 4]);
        assert_eq!(csr.out_targets, vec![1, 2, 0, 1]);
        assert_eq!(csr.out_edges, vec![EdgeId(0), EdgeId(1), EdgeId(3), EdgeId(2)]);

        // In-CSR: a←{b}, b←{a,c}, c←{a}. (d→a died with d.)
        assert_eq!(csr.in_offsets, vec![0, 1, 3, 4]);
        assert_eq!(csr.in_targets, vec![1, 0, 2, 0]);
        assert_eq!(csr.in_edges, vec![EdgeId(3), EdgeId(0), EdgeId(2), EdgeId(1)]);

        // Undirected view dedups the a↔b reciprocal pair.
        assert_eq!(csr.und_offsets, vec![0, 2, 4, 6]);
        assert_eq!(csr.und_targets, vec![1, 2, 0, 2, 0, 1]);

        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.in_degree(1), 2);
        assert_eq!(csr.total_degree(1), 3);
    }

    #[test]
    fn undirected_und_view_aliases_out() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .build();
        let csr = CsrGraph::build(&g);
        assert_eq!(csr.n(), 3);
        assert_eq!(csr.m(), 2);
        assert_eq!(csr.und(1), csr.out(1));
        assert_eq!(csr.und(1), &[0, 2]);
        assert!(csr.incoming(1).is_empty());
        assert_eq!(csr.total_degree(1), 2, "undirected out-CSR is total degree");
    }

    #[test]
    fn cache_hits_on_same_arc_and_misses_after_cow_mutation() {
        let cache = CsrCache::default();
        let mut g = Arc::new(
            GraphBuilder::undirected().edge("a", "b", "-").build(),
        );
        let first = cache.get_or_build(&g);
        let again = cache.get_or_build(&g);
        assert!(Arc::ptr_eq(&first, &again), "same epoch: cached snapshot");
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.drain_builds().len(), 1);

        // Copy-on-write mutation: the cache pins the old Arc, so make_mut
        // clones → new pointer → new epoch → rebuild.
        Arc::make_mut(&mut g).add_node("c");
        let rebuilt = cache.get_or_build(&g);
        assert!(!Arc::ptr_eq(&first, &rebuilt));
        assert_eq!(rebuilt.n(), 3);
        assert_eq!(cache.drain_builds().len(), 1, "one new build since drain");
    }

    #[test]
    fn cache_capacity_evicts_least_recently_used() {
        let cache = CsrCache::new(2);
        let graphs: Vec<Arc<Graph>> = (0..3)
            .map(|i| {
                let mut g = Graph::undirected();
                for _ in 0..=i {
                    g.add_node("x");
                }
                Arc::new(g)
            })
            .collect();
        for g in &graphs {
            cache.get_or_build(g);
        }
        // graphs[0] was evicted; re-fetch is a miss.
        cache.get_or_build(&graphs[0]);
        assert_eq!(cache.stats(), (0, 4));
        // graphs[2] is still resident.
        cache.get_or_build(&graphs[2]);
        assert_eq!(cache.stats(), (1, 4));
    }

    #[test]
    fn empty_graph_snapshot() {
        let csr = CsrGraph::build(&Graph::directed());
        assert_eq!(csr.n(), 0);
        assert_eq!(csr.m(), 0);
        assert_eq!(csr.out_offsets, vec![0]);
    }
}
