//! Barabási–Albert preferential-attachment graphs.

use crate::graph::Graph;
use chatgraph_support::rng::RngExt;

/// Parameters for [`barabasi_albert`].
#[derive(Debug, Clone, PartialEq)]
pub struct BaParams {
    /// Total number of nodes (must be > `attach`).
    pub nodes: usize,
    /// Edges added per arriving node.
    pub attach: usize,
}

impl Default for BaParams {
    fn default() -> Self {
        BaParams {
            nodes: 100,
            attach: 2,
        }
    }
}

impl BaParams {
    /// Parameters for an `n`-node hub-heavy graph: 3 attachments per
    /// arrival keeps m ≈ 3n, so generation, snapshotting and kernels stay
    /// O(n) in memory at 10^5–10^6 nodes while the degree distribution
    /// still produces the hubs degree-aware chunking exists for.
    pub fn sized(n: usize) -> BaParams {
        BaParams { nodes: n.max(4), attach: 3 }
    }
}

/// Samples an undirected preferential-attachment graph.
///
/// Starts from a clique of `attach + 1` seed nodes; every arriving node
/// attaches to `attach` distinct existing nodes chosen proportionally to
/// degree (implemented with the standard repeated-endpoint trick).
pub fn barabasi_albert(params: &BaParams, seed: u64) -> Graph {
    let m = params.attach.max(1);
    let n = params.nodes.max(m + 1);
    let mut rng = super::rng(seed);
    let mut g = Graph::undirected();
    g.set_name(format!("ba-{}-{}", n, seed));
    let ids: Vec<_> = (0..n).map(|_| g.add_node("n")).collect();

    // `endpoints` holds every edge endpoint seen so far; uniform sampling from
    // it is degree-proportional sampling.
    let mut endpoints = Vec::with_capacity(2 * n * m);
    for i in 0..=m {
        for j in (i + 1)..=m {
            // Cannot fail: distinct freshly-added nodes, each pair once.
            let _ = g.add_edge(ids[i], ids[j], "-");
            endpoints.push(ids[i]);
            endpoints.push(ids[j]);
        }
    }

    for &new_node in ids.iter().take(n).skip(m + 1) {
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != new_node && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for t in chosen {
            // Cannot fail: `chosen` holds distinct live nodes != new_node.
            let _ = g.add_edge(new_node, t, "-");
            endpoints.push(new_node);
            endpoints.push(t);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_model() {
        let p = BaParams {
            nodes: 80,
            attach: 3,
        };
        let g = barabasi_albert(&p, 2);
        assert_eq!(g.node_count(), 80);
        // clique edges + m per arrival
        let expected = 3 * (3 + 1) / 2 + (80 - 4) * 3;
        assert_eq!(g.edge_count(), expected);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = barabasi_albert(
            &BaParams {
                nodes: 300,
                attach: 2,
            },
            7,
        );
        let mut degs: Vec<usize> = g.node_ids().map(|v| g.degree(v)).collect();
        degs.sort_unstable();
        let max = *degs.last().unwrap();
        let median = degs[degs.len() / 2];
        // Hubs emerge: max degree far exceeds the median.
        assert!(max >= 4 * median, "max {max}, median {median}");
    }

    /// The sized fast path generates 10^4 nodes in O(n): exact edge count,
    /// hubs present.
    #[test]
    fn sized_scales_linearly() {
        let g = barabasi_albert(&BaParams::sized(10_000), 9);
        assert_eq!(g.node_count(), 10_000);
        assert_eq!(g.edge_count(), 3 * 10_000 - 6);
        let max = g.node_ids().map(|v| g.degree(v)).max().unwrap();
        assert!(max > 50, "expected a hub, max degree {max}");
    }

    #[test]
    fn degenerate_params_are_clamped() {
        let g = barabasi_albert(
            &BaParams {
                nodes: 0,
                attach: 0,
            },
            1,
        );
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }
}
