//! Seeded graph generators.
//!
//! The paper demonstrates ChatGraph on real-world molecules, social networks
//! and knowledge graphs. Those datasets are not redistributable, so this
//! module provides deterministic generators producing graphs with the same
//! *structural signal* each scenario relies on:
//!
//! * [`erdos_renyi`] / [`barabasi_albert`] — reference random-graph models
//!   used by the sequentialiser and ANN scaling experiments.
//! * [`social_network`] — planted-partition graphs with visible communities
//!   (scenario 1: community/connectivity analysis).
//! * [`molecule`] — valence-constrained, ring-containing chemical graphs
//!   (scenarios 1–2: property prediction and similarity search).
//! * [`knowledge_graph`] / [`corrupt_kg`] — typed-relation graphs plus a
//!   noise injector returning ground truth (scenario 3: graph cleaning).
//!
//! Every generator takes an explicit `u64` seed and is reproducible.

mod ba;
mod er;
mod kg;
mod molecule;
mod social;

pub use ba::{barabasi_albert, BaParams};
pub use er::{erdos_renyi, ErParams};
pub use kg::{corrupt_kg, knowledge_graph, CorruptionReport, KgParams, RELATION_SCHEMA};
pub use molecule::{molecule, molecule_database, MoleculeParams};
pub use social::{social_network, SocialParams};

use chatgraph_support::rng::SeedableRng;
use chatgraph_support::rng::ChaCha12Rng;

/// The RNG used by every generator in this crate.
///
/// ChaCha12 is portable across platforms and rand versions, unlike `StdRng`,
/// so seeds recorded in EXPERIMENTS.md keep meaning the same graphs.
pub(crate) fn rng(seed: u64) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io;

    #[test]
    fn all_generators_are_deterministic() {
        let spec = |seed| {
            let e = erdos_renyi(&ErParams::default(), seed);
            let b = barabasi_albert(&BaParams::default(), seed);
            let s = social_network(&SocialParams::default(), seed);
            let m = molecule(&MoleculeParams::default(), seed);
            let k = knowledge_graph(&KgParams::default(), seed);
            [e, b, s, m, k].map(|g| io::to_edge_list(&g).unwrap())
        };
        assert_eq!(spec(5), spec(5));
        assert_ne!(spec(5), spec(6));
    }
}
