//! Valence-constrained molecule-like graphs.
//!
//! Scenarios 1 and 2 of the paper analyse chemical molecules (property
//! prediction, similarity search against a molecule database). This generator
//! produces heavy-atom graphs (hydrogens implicit, as in most cheminformatics
//! toolkits) that respect per-element valence limits and contain rings, so the
//! structural descriptors the molecule APIs compute (ring count, branching,
//! heteroatom fraction) carry real signal.

use crate::graph::{Graph, NodeId};
use chatgraph_support::rng::RngExt;

/// Heavy-atom elements and their maximum valences.
const ELEMENTS: &[(&str, u32, f64)] = &[
    // (symbol, valence, sampling weight)
    ("C", 4, 0.62),
    ("N", 3, 0.14),
    ("O", 2, 0.16),
    ("S", 2, 0.05),
    ("P", 3, 0.03),
];

/// Parameters for [`molecule`].
#[derive(Debug, Clone, PartialEq)]
pub struct MoleculeParams {
    /// Number of heavy atoms.
    pub atoms: usize,
    /// Expected number of ring-closing edges added after the spanning tree.
    pub rings: usize,
    /// Probability that a bond with available valence becomes a double bond.
    pub double_bond_prob: f64,
}

impl Default for MoleculeParams {
    fn default() -> Self {
        MoleculeParams {
            atoms: 24,
            rings: 2,
            double_bond_prob: 0.15,
        }
    }
}

fn sample_element<R: RngExt>(rng: &mut R) -> (&'static str, u32) {
    let total: f64 = ELEMENTS.iter().map(|e| e.2).sum();
    let mut x = rng.random::<f64>() * total;
    for &(sym, val, w) in ELEMENTS {
        if x < w {
            return (sym, val);
        }
        x -= w;
    }
    let last = ELEMENTS[ELEMENTS.len() - 1];
    (last.0, last.1)
}

/// Samples a connected, valence-respecting molecular graph.
///
/// Nodes are labelled with element symbols and carry a `valence` attribute;
/// edges are labelled `single` or `double`. A double bond consumes two units
/// of valence at each endpoint.
pub fn molecule(params: &MoleculeParams, seed: u64) -> Graph {
    let mut rng = super::rng(seed);
    let n = params.atoms.max(1);
    let mut g = Graph::undirected();
    g.set_name(format!("mol-{}-{}", n, seed));

    let mut ids: Vec<NodeId> = Vec::with_capacity(n);
    let mut free: Vec<u32> = Vec::with_capacity(n); // remaining valence
    for _ in 0..n {
        let (sym, val) = sample_element(&mut rng);
        let id = g.add_node(sym);
        g.set_node_attr(id, "valence", val as i64).expect("node exists");
        ids.push(id);
        free.push(val);
    }

    // Random spanning tree under valence constraints: attach atom i to a
    // uniformly chosen earlier atom that still has free valence.
    for i in 1..n {
        let candidates: Vec<usize> = (0..i).filter(|&j| free[j] > 0).collect();
        let j = if candidates.is_empty() {
            // All earlier valences exhausted (possible with many O/S atoms):
            // fall back to the previous atom; chemically this over-saturates
            // one atom but keeps the graph connected.
            i - 1
        } else {
            candidates[rng.random_range(0..candidates.len())]
        };
        let double = free[i] >= 2 && free[j] >= 2 && rng.random_bool(params.double_bond_prob);
        let (label, units) = if double { ("double", 2) } else { ("single", 1) };
        g.add_edge(ids[i], ids[j], label).expect("tree edges unique");
        free[i] = free[i].saturating_sub(units);
        free[j] = free[j].saturating_sub(units);
    }

    // Ring closures: connect random non-adjacent pairs that both have free
    // valence. Each closure creates exactly one new cycle.
    let mut closures = 0;
    let mut attempts = 0;
    while closures < params.rings && attempts < 50 * params.rings.max(1) {
        attempts += 1;
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i == j || free[i] == 0 || free[j] == 0 || g.has_edge(ids[i], ids[j]) {
            continue;
        }
        g.add_edge(ids[i], ids[j], "single").expect("checked");
        free[i] -= 1;
        free[j] -= 1;
        closures += 1;
    }
    g
}

/// Generates a database of `count` molecules with varied sizes, as the
/// similarity-search scenario's corpus. Molecule `k` uses seed `seed + k`.
pub fn molecule_database(count: usize, base: &MoleculeParams, seed: u64) -> Vec<Graph> {
    (0..count)
        .map(|k| {
            let mut p = base.clone();
            // Vary sizes ±40% deterministically so the database is not uniform.
            let jitter = ((k * 2654435761) % 81) as i64 - 40;
            let atoms = (base.atoms as i64 + base.atoms as i64 * jitter / 100).max(3);
            p.atoms = atoms as usize;
            let mut g = molecule(&p, seed.wrapping_add(k as u64));
            g.set_name(format!("db-mol-{k}"));
            g
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::components::connected_components;

    fn bond_units(g: &Graph, v: NodeId) -> i64 {
        g.neighbors(v)
            .map(|(_, e)| if g.edge_label(e).unwrap() == "double" { 2 } else { 1 })
            .sum()
    }

    #[test]
    fn molecule_is_connected() {
        for seed in 0..10 {
            let g = molecule(&MoleculeParams::default(), seed);
            let cc = connected_components(&g);
            assert_eq!(cc.count, 1, "seed {seed}");
        }
    }

    #[test]
    fn valences_respected() {
        for seed in 0..10 {
            let g = molecule(&MoleculeParams::default(), seed);
            for v in g.node_ids() {
                let val = g.node_attrs(v).unwrap()["valence"].as_int().unwrap();
                assert!(
                    bond_units(&g, v) <= val,
                    "seed {seed}: node {v} exceeds valence"
                );
            }
        }
    }

    #[test]
    fn ring_closures_add_cycles() {
        let p = MoleculeParams {
            atoms: 30,
            rings: 3,
            double_bond_prob: 0.0,
        };
        let g = molecule(&p, 42);
        // cyclomatic number = E - V + components
        let cyclomatic = g.edge_count() as i64 - g.node_count() as i64 + 1;
        assert!(cyclomatic >= 1, "expected at least one ring");
        assert!(cyclomatic <= 3);
    }

    #[test]
    fn database_varies_sizes() {
        let db = molecule_database(20, &MoleculeParams::default(), 9);
        assert_eq!(db.len(), 20);
        let sizes: std::collections::BTreeSet<_> = db.iter().map(|g| g.node_count()).collect();
        assert!(sizes.len() > 3, "sizes should vary: {sizes:?}");
        assert_eq!(db[3].name(), "db-mol-3");
    }

    #[test]
    fn only_known_elements() {
        let g = molecule(&MoleculeParams::default(), 5);
        for v in g.node_ids() {
            let l = g.node_label(v).unwrap();
            assert!(ELEMENTS.iter().any(|e| e.0 == l), "unknown element {l}");
        }
    }
}
