//! Planted-partition social networks.
//!
//! Scenario 1 of the paper analyses a social network's communities and
//! connectivity. The planted-partition model produces graphs whose community
//! structure is known by construction, so community-detection output can be
//! validated against ground truth.
//!
//! Small graphs sample every node pair directly. From
//! [`STREAM_NODES_MIN`] nodes up, the generator switches to geometric
//! skip-sampling: it draws only the gaps between *present* edges, so a
//! 10^6-node graph costs O(n + m) instead of O(n²) and never materialises
//! per-pair state. The small-graph path is kept verbatim so existing seeds
//! keep producing byte-identical graphs.

use crate::graph::{Graph, NodeId};
use chatgraph_support::rng::{RngExt, StdRng};

/// Node count at which [`social_network`] switches from the O(n²) pair
/// loop to O(n + m) geometric skip-sampling. Far above every pre-existing
/// fixture size, so historical seeds are unaffected.
const STREAM_NODES_MIN: usize = 4096;

/// Parameters for [`social_network`].
#[derive(Debug, Clone, PartialEq)]
pub struct SocialParams {
    /// Number of planted communities.
    pub communities: usize,
    /// Nodes per community.
    pub community_size: usize,
    /// Edge probability inside a community.
    pub p_intra: f64,
    /// Edge probability across communities.
    pub p_inter: f64,
}

impl Default for SocialParams {
    fn default() -> Self {
        SocialParams {
            communities: 4,
            community_size: 30,
            p_intra: 0.30,
            p_inter: 0.01,
        }
    }
}

impl SocialParams {
    /// Parameters for a planted-partition graph of at least `n` nodes that
    /// stays *sparse* as it scales: 50-node communities with expected
    /// degree ≈ 8 intra + 2 inter per node (m ≈ 5n), so 10^5–10^6-node
    /// graphs are generated and snapshotted in O(n) memory.
    pub fn sized(n: usize) -> SocialParams {
        let community_size = 50usize.min(n.max(1));
        let communities = n.div_ceil(community_size).max(1);
        let total = communities * community_size;
        let p_intra = (8.0 / community_size.saturating_sub(1).max(1) as f64).min(1.0);
        let p_inter = if total > community_size {
            (2.0 / (total - community_size) as f64).min(1.0)
        } else {
            0.0
        };
        SocialParams { communities, community_size, p_intra, p_inter }
    }
}

/// Samples an undirected social network with planted communities.
///
/// Nodes are labelled `Person` and carry `name` (e.g. `"user17"`) and
/// `community` (the planted ground-truth id) attributes; edges are labelled
/// `friend`. The `community` attribute is ground truth for evaluation — the
/// analysis APIs never read it.
pub fn social_network(params: &SocialParams, seed: u64) -> Graph {
    let mut rng = super::rng(seed);
    let mut g = Graph::undirected();
    let n = params.communities * params.community_size;
    g.set_name(format!("social-{}-{}", n, seed));
    let mut ids = Vec::with_capacity(n);
    for c in 0..params.communities {
        for i in 0..params.community_size {
            let idx = c * params.community_size + i;
            let id = g.add_node("Person");
            // Cannot fail: `id` was just added and is never removed here.
            let _ = g.set_node_attr(id, "name", format!("user{idx}"));
            let _ = g.set_node_attr(id, "community", c as i64);
            ids.push((id, c));
        }
    }
    if n >= STREAM_NODES_MIN {
        stream_edges(&mut g, &mut rng, &ids, params);
        return g;
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let p = if ids[i].1 == ids[j].1 {
                params.p_intra
            } else {
                params.p_inter
            };
            if rng.random_bool(p.clamp(0.0, 1.0)) {
                // Cannot fail: endpoints are distinct live nodes and each
                // unordered pair is visited exactly once.
                let _ = g.add_edge(ids[i].0, ids[j].0, "friend");
            }
        }
    }
    g
}

/// Draws the upper-triangle Bernoulli edges by geometric skip-sampling.
/// For each source `i` the candidate targets `j > i` fall into exactly two
/// probability classes — the rest of `i`'s (contiguous) community at
/// `p_intra`, then every later community at `p_inter` — and each class is
/// sampled by jumping straight between present edges.
fn stream_edges(g: &mut Graph, rng: &mut StdRng, ids: &[(NodeId, usize)], params: &SocialParams) {
    let n = ids.len();
    let s = params.community_size.max(1);
    for i in 0..n {
        let block_end = ((i / s) + 1) * s;
        sample_span(g, rng, ids, i, i + 1, block_end.min(n), params.p_intra);
        sample_span(g, rng, ids, i, block_end.min(n), n, params.p_inter);
    }
}

/// Adds each edge `(i, j)` for `j` in `start..end` independently with
/// probability `p`, visiting only the successes: the gap to the next
/// present edge is geometric, `floor(ln(1-u) / ln(1-p))`.
fn sample_span(
    g: &mut Graph,
    rng: &mut StdRng,
    ids: &[(NodeId, usize)],
    i: usize,
    start: usize,
    end: usize,
    p: f64,
) {
    let p = p.clamp(0.0, 1.0);
    if p <= 0.0 || start >= end {
        return;
    }
    if p >= 1.0 {
        for j in start..end {
            // Cannot fail: distinct live endpoints, each pair visited once.
            let _ = g.add_edge(ids[i].0, ids[j].0, "friend");
        }
        return;
    }
    let ln_q = (1.0 - p).ln();
    let mut j = start;
    loop {
        let u: f64 = rng.random();
        j += ((1.0 - u).ln() / ln_q) as usize;
        if j >= end {
            return;
        }
        // Cannot fail: distinct live endpoints, each pair visited once.
        let _ = g.add_edge(ids[i].0, ids[j].0, "friend");
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_structure_dominates() {
        let p = SocialParams::default();
        let g = social_network(&p, 11);
        assert_eq!(g.node_count(), 120);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for e in g.edge_ids() {
            let (a, b) = g.edge_endpoints(e).unwrap();
            let ca = g.node_attrs(a).unwrap()["community"].as_int().unwrap();
            let cb = g.node_attrs(b).unwrap()["community"].as_int().unwrap();
            if ca == cb {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 2 * inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn labels_and_attrs_present() {
        let g = social_network(&SocialParams::default(), 3);
        let v = g.node_ids().next().unwrap();
        assert_eq!(g.node_label(v).unwrap(), "Person");
        assert_eq!(g.node_attrs(v).unwrap()["name"].as_text(), Some("user0"));
        let e = g.edge_ids().next().unwrap();
        assert_eq!(g.edge_label(e).unwrap(), "friend");
    }

    /// The streaming path (n ≥ STREAM_NODES_MIN) produces a sparse graph of
    /// the sized expected degree, deterministically per seed, with the same
    /// attribute schema as the small-graph path.
    #[test]
    fn sized_streaming_path_is_sparse_and_deterministic() {
        let params = SocialParams::sized(5_000);
        assert!(params.communities * params.community_size >= STREAM_NODES_MIN);
        let g = social_network(&params, 42);
        let n = g.node_count();
        assert_eq!(n, params.communities * params.community_size);
        let avg_degree = 2.0 * g.edge_count() as f64 / n as f64;
        assert!(
            (6.0..14.0).contains(&avg_degree),
            "expected degree ≈ 10, got {avg_degree}"
        );
        let v = g.node_ids().next().unwrap();
        assert_eq!(g.node_label(v).unwrap(), "Person");
        assert!(g.node_attrs(v).unwrap()["community"].as_int().is_some());

        let h = social_network(&params, 42);
        assert_eq!(g, h, "same seed must reproduce the same graph");
        let other = social_network(&params, 43);
        assert_ne!(g.edge_count(), 0);
        assert_ne!(g, other, "different seeds should differ");
    }

    /// Exhaustive and streaming sampling agree on expected density: with
    /// the same p's, edge counts land within a few σ of each other.
    #[test]
    fn streaming_density_matches_pair_loop_statistics() {
        // 4 communities × 30 at p_intra=.3/p_inter=.01: E[m] ≈ 4·435·0.3 +
        // (7140−1740)·0.01 = 522 + 54 = 576, σ ≈ 21.
        let p = SocialParams::default();
        let small = social_network(&p, 11);
        let mut big = Graph::undirected();
        let ids: Vec<(NodeId, usize)> = (0..120)
            .map(|i| (big.add_node("Person"), i / 30))
            .collect();
        let mut rng = crate::generators::rng(11);
        stream_edges(&mut big, &mut rng, &ids, &p);
        let (a, b) = (small.edge_count() as f64, big.edge_count() as f64);
        assert!((a - 576.0).abs() < 130.0, "pair loop count {a} implausible");
        assert!((b - 576.0).abs() < 130.0, "streaming count {b} implausible");
    }
}
