//! Planted-partition social networks.
//!
//! Scenario 1 of the paper analyses a social network's communities and
//! connectivity. The planted-partition model produces graphs whose community
//! structure is known by construction, so community-detection output can be
//! validated against ground truth.

use crate::graph::Graph;
use chatgraph_support::rng::RngExt;

/// Parameters for [`social_network`].
#[derive(Debug, Clone, PartialEq)]
pub struct SocialParams {
    /// Number of planted communities.
    pub communities: usize,
    /// Nodes per community.
    pub community_size: usize,
    /// Edge probability inside a community.
    pub p_intra: f64,
    /// Edge probability across communities.
    pub p_inter: f64,
}

impl Default for SocialParams {
    fn default() -> Self {
        SocialParams {
            communities: 4,
            community_size: 30,
            p_intra: 0.30,
            p_inter: 0.01,
        }
    }
}

/// Samples an undirected social network with planted communities.
///
/// Nodes are labelled `Person` and carry `name` (e.g. `"user17"`) and
/// `community` (the planted ground-truth id) attributes; edges are labelled
/// `friend`. The `community` attribute is ground truth for evaluation — the
/// analysis APIs never read it.
pub fn social_network(params: &SocialParams, seed: u64) -> Graph {
    let mut rng = super::rng(seed);
    let mut g = Graph::undirected();
    let n = params.communities * params.community_size;
    g.set_name(format!("social-{}-{}", n, seed));
    let mut ids = Vec::with_capacity(n);
    for c in 0..params.communities {
        for i in 0..params.community_size {
            let idx = c * params.community_size + i;
            let id = g.add_node("Person");
            g.set_node_attr(id, "name", format!("user{idx}"))
                .expect("node exists");
            g.set_node_attr(id, "community", c as i64).expect("node exists");
            ids.push((id, c));
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let p = if ids[i].1 == ids[j].1 {
                params.p_intra
            } else {
                params.p_inter
            };
            if rng.random_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(ids[i].0, ids[j].0, "friend")
                    .expect("unique pair");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_structure_dominates() {
        let p = SocialParams::default();
        let g = social_network(&p, 11);
        assert_eq!(g.node_count(), 120);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for e in g.edge_ids() {
            let (a, b) = g.edge_endpoints(e).unwrap();
            let ca = g.node_attrs(a).unwrap()["community"].as_int().unwrap();
            let cb = g.node_attrs(b).unwrap()["community"].as_int().unwrap();
            if ca == cb {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 2 * inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn labels_and_attrs_present() {
        let g = social_network(&SocialParams::default(), 3);
        let v = g.node_ids().next().unwrap();
        assert_eq!(g.node_label(v).unwrap(), "Person");
        assert_eq!(g.node_attrs(v).unwrap()["name"].as_text(), Some("user0"));
        let e = g.edge_ids().next().unwrap();
        assert_eq!(g.edge_label(e).unwrap(), "friend");
    }
}
