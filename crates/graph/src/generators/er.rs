//! Erdős–Rényi `G(n, p)` random graphs.

use crate::graph::Graph;
use chatgraph_support::rng::RngExt;

/// Parameters for [`erdos_renyi`].
#[derive(Debug, Clone, PartialEq)]
pub struct ErParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Independent probability of each possible edge.
    pub edge_prob: f64,
}

impl Default for ErParams {
    fn default() -> Self {
        ErParams {
            nodes: 100,
            edge_prob: 0.05,
        }
    }
}

/// Samples an undirected `G(n, p)` graph. Nodes are labelled `"n"`.
pub fn erdos_renyi(params: &ErParams, seed: u64) -> Graph {
    let mut rng = super::rng(seed);
    let mut g = Graph::undirected();
    g.set_name(format!("er-{}-{}", params.nodes, seed));
    let ids: Vec<_> = (0..params.nodes).map(|_| g.add_node("n")).collect();
    for i in 0..params.nodes {
        for j in (i + 1)..params.nodes {
            if rng.random_bool(params.edge_prob.clamp(0.0, 1.0)) {
                // i < j pairs are unique and both endpoints exist, so this
                // cannot fail; ignore rather than panic in a generator.
                let _ = g.add_edge(ids[i], ids[j], "-");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_matches() {
        let g = erdos_renyi(
            &ErParams {
                nodes: 50,
                edge_prob: 0.1,
            },
            1,
        );
        assert_eq!(g.node_count(), 50);
    }

    #[test]
    fn p_zero_yields_no_edges_p_one_yields_complete() {
        let empty = erdos_renyi(
            &ErParams {
                nodes: 10,
                edge_prob: 0.0,
            },
            1,
        );
        assert_eq!(empty.edge_count(), 0);
        let complete = erdos_renyi(
            &ErParams {
                nodes: 10,
                edge_prob: 1.0,
            },
            1,
        );
        assert_eq!(complete.edge_count(), 45);
    }

    #[test]
    fn edge_count_near_expectation() {
        let p = 0.08;
        let n = 200usize;
        let g = erdos_renyi(
            &ErParams {
                nodes: n,
                edge_prob: p,
            },
            99,
        );
        let expected = p * (n * (n - 1) / 2) as f64;
        let actual = g.edge_count() as f64;
        assert!(
            (actual - expected).abs() < 0.2 * expected,
            "actual {actual} vs expected {expected}"
        );
    }
}
