//! Rule-based knowledge graphs with controllable corruption.
//!
//! Scenario 3 of the paper ("Chat-based Graph Cleaning") detects *incorrect*
//! and *missing* edges in a knowledge graph. To evaluate a cleaner one needs
//! ground truth, so this generator builds a KG that satisfies a fixed relation
//! schema exactly, and [`corrupt_kg`] then injects violations while recording
//! what it broke.
//!
//! ## Schema
//!
//! Entity types: `Person`, `City`, `Country`, `Company`.
//!
//! | relation | domain → range | cardinality |
//! |---|---|---|
//! | `lives_in` | Person → City | exactly 1 per person |
//! | `located_in` | City → Country | exactly 1 per city |
//! | `works_at` | Person → Company | at most 1 per person |
//! | `based_in` | Company → City | exactly 1 per company |
//! | `nationality` | Person → Country | derived: `lives_in ∘ located_in` |
//! | `knows` | Person → Person | arbitrary |
//!
//! The composition rule `nationality(p) = located_in(lives_in(p))` is what the
//! knowledge-inference APIs exploit to find wrong and missing facts.

use crate::graph::{Graph, NodeId};
use chatgraph_support::rng::RngExt;

/// `(relation, domain type, range type)` triples of the fixed schema.
pub const RELATION_SCHEMA: &[(&str, &str, &str)] = &[
    ("lives_in", "Person", "City"),
    ("located_in", "City", "Country"),
    ("works_at", "Person", "Company"),
    ("based_in", "Company", "City"),
    ("nationality", "Person", "Country"),
    ("knows", "Person", "Person"),
];

/// Parameters for [`knowledge_graph`].
#[derive(Debug, Clone, PartialEq)]
pub struct KgParams {
    /// Number of `Person` entities.
    pub persons: usize,
    /// Number of `City` entities.
    pub cities: usize,
    /// Number of `Country` entities.
    pub countries: usize,
    /// Number of `Company` entities.
    pub companies: usize,
    /// Probability a person works at some company.
    pub employment_rate: f64,
    /// Expected `knows` edges per person.
    pub knows_per_person: f64,
}

impl Default for KgParams {
    fn default() -> Self {
        KgParams {
            persons: 100,
            cities: 15,
            countries: 5,
            companies: 12,
            employment_rate: 0.7,
            knows_per_person: 2.0,
        }
    }
}

impl KgParams {
    /// Parameters for a KG of roughly `n` entities, keeping the default
    /// schema's proportions: entity counts scale linearly (persons
    /// dominate), per-person relations stay constant, so generation is
    /// O(n) time and memory at 10^5–10^6 entities. Cities, countries and
    /// companies are high-in-degree hubs by construction — the skew the
    /// degree-aware kernels care about.
    pub fn sized(n: usize) -> KgParams {
        let n = n.max(8);
        let cities = (n / 100).clamp(1, 20_000);
        let countries = (n / 2_000).clamp(1, 500);
        let companies = (n / 50).clamp(1, 50_000);
        let persons = n.saturating_sub(cities + countries + companies).max(1);
        KgParams {
            persons,
            cities,
            countries,
            companies,
            employment_rate: 0.7,
            knows_per_person: 2.0,
        }
    }
}

/// Samples a schema-consistent directed knowledge graph.
///
/// Node labels are entity types; each node carries a `name` attribute.
pub fn knowledge_graph(params: &KgParams, seed: u64) -> Graph {
    let mut rng = super::rng(seed);
    let mut g = Graph::directed();
    g.set_name(format!("kg-{}-{}", params.persons, seed));

    let mk = |g: &mut Graph, ty: &str, name: String| -> NodeId {
        let id = g.add_node(ty);
        // Cannot fail: `id` was just added and is live.
        let _ = g.set_node_attr(id, "name", name);
        id
    };
    let countries: Vec<_> = (0..params.countries.max(1))
        .map(|i| mk(&mut g, "Country", format!("country{i}")))
        .collect();
    let cities: Vec<_> = (0..params.cities.max(1))
        .map(|i| mk(&mut g, "City", format!("city{i}")))
        .collect();
    let companies: Vec<_> = (0..params.companies)
        .map(|i| mk(&mut g, "Company", format!("company{i}")))
        .collect();
    let persons: Vec<_> = (0..params.persons)
        .map(|i| mk(&mut g, "Person", format!("person{i}")))
        .collect();

    // Every city sits in exactly one country. These add_edge calls cannot
    // fail: both endpoints were just created and each source gets exactly
    // one edge of its relation.
    let mut city_country = Vec::with_capacity(cities.len());
    for &c in &cities {
        let u = countries[rng.random_range(0..countries.len())];
        let _ = g.add_edge(c, u, "located_in");
        city_country.push(u);
    }
    // Every company is based in one city.
    for &o in &companies {
        let c = rng.random_range(0..cities.len());
        let _ = g.add_edge(o, cities[c], "based_in");
    }
    // Persons: lives_in (1), derived nationality, optional works_at, knows.
    for &p in &persons {
        let c = rng.random_range(0..cities.len());
        let _ = g.add_edge(p, cities[c], "lives_in");
        let _ = g.add_edge(p, city_country[c], "nationality");
        if !companies.is_empty() && rng.random_bool(params.employment_rate) {
            let o = companies[rng.random_range(0..companies.len())];
            let _ = g.add_edge(p, o, "works_at");
        }
    }
    let know_edges = (params.persons as f64 * params.knows_per_person) as usize;
    let mut added = 0;
    let mut attempts = 0;
    while added < know_edges && attempts < know_edges * 20 && persons.len() > 1 {
        attempts += 1;
        let a = persons[rng.random_range(0..persons.len())];
        let b = persons[rng.random_range(0..persons.len())];
        if a != b && !g.has_edge(a, b) {
            // Cannot fail: both endpoints are live and the edge was absent.
            let _ = g.add_edge(a, b, "knows");
            added += 1;
        }
    }
    g
}

/// A record of the corruption injected by [`corrupt_kg`], i.e. the cleaning
/// ground truth.
#[derive(Debug, Clone, Default)]
pub struct CorruptionReport {
    /// Edges that were rewired to a wrong target (now incorrect facts),
    /// as `(src, wrong_dst, relation)`.
    pub injected_wrong: Vec<(NodeId, NodeId, String)>,
    /// Correct facts that were deleted (now missing), as
    /// `(src, dst, relation)`.
    pub removed: Vec<(NodeId, NodeId, String)>,
}

chatgraph_support::impl_json_struct!(CorruptionReport { injected_wrong, removed });

/// Corrupts a clean KG in place: rewires a fraction `wrong_rate` of
/// `nationality` edges to a wrong country and deletes a fraction
/// `missing_rate` of them outright. Returns the ground truth.
///
/// Only `nationality` is touched because it is the relation the composition
/// rule can both *verify* and *re-derive* — exactly the paper's "detect the
/// incorrect edges and the missing edges" workflow.
pub fn corrupt_kg(g: &mut Graph, wrong_rate: f64, missing_rate: f64, seed: u64) -> CorruptionReport {
    let mut rng = super::rng(seed ^ 0x5eed_c0de);
    let mut report = CorruptionReport::default();

    let countries: Vec<NodeId> = g
        .node_ids()
        .filter(|&v| g.node_label(v).is_ok_and(|l| l == "Country"))
        .collect();
    let nationality_edges: Vec<_> = g
        .edge_ids()
        .filter(|&e| g.edge_label(e).is_ok_and(|l| l == "nationality"))
        .collect();

    for e in nationality_edges {
        // Each edge is touched at most once, so it is still live here; the
        // non-panicking forms keep the report consistent with the graph even
        // if that invariant ever slips.
        let Ok((src, dst)) = g.edge_endpoints(e) else { continue };
        let roll = rng.random::<f64>();
        if roll < wrong_rate && countries.len() > 1 {
            // Rewire to a different country.
            let mut wrong = dst;
            while wrong == dst {
                wrong = countries[rng.random_range(0..countries.len())];
            }
            if g.remove_edge(e).is_err() {
                continue;
            }
            if g.add_edge(src, wrong, "nationality").is_ok() {
                report.injected_wrong.push((src, wrong, "nationality".into()));
            }
            report.removed.push((src, dst, "nationality".into()));
        } else if roll < wrong_rate + missing_rate {
            if g.remove_edge(e).is_err() {
                continue;
            }
            report.removed.push((src, dst, "nationality".into()));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_rel(g: &Graph, rel: &str) -> usize {
        g.edge_ids()
            .filter(|&e| g.edge_label(e).unwrap() == rel)
            .count()
    }

    #[test]
    fn schema_cardinalities_hold() {
        let p = KgParams::default();
        let g = knowledge_graph(&p, 4);
        assert_eq!(count_rel(&g, "lives_in"), p.persons);
        assert_eq!(count_rel(&g, "located_in"), p.cities);
        assert_eq!(count_rel(&g, "based_in"), p.companies);
        assert_eq!(count_rel(&g, "nationality"), p.persons);
    }

    /// The sized fast path keeps the schema at 2·10^4 entities in O(n).
    #[test]
    fn sized_scales_linearly_with_schema_intact() {
        let p = KgParams::sized(20_000);
        let g = knowledge_graph(&p, 6);
        let total = p.persons + p.cities + p.countries + p.companies;
        assert_eq!(g.node_count(), total);
        assert!((19_000..=20_000).contains(&total), "total {total}");
        assert_eq!(count_rel(&g, "lives_in"), p.persons);
        assert_eq!(count_rel(&g, "nationality"), p.persons);
        assert_eq!(count_rel(&g, "located_in"), p.cities);
    }

    #[test]
    fn nationality_follows_composition() {
        let g = knowledge_graph(&KgParams::default(), 8);
        for p in g.node_ids().filter(|&v| g.node_label(v).unwrap() == "Person") {
            let city = g
                .neighbors(p)
                .find(|&(_, e)| g.edge_label(e).unwrap() == "lives_in")
                .map(|(v, _)| v)
                .expect("everyone lives somewhere");
            let country = g
                .neighbors(city)
                .find(|&(_, e)| g.edge_label(e).unwrap() == "located_in")
                .map(|(v, _)| v)
                .expect("every city is in a country");
            let nat = g
                .neighbors(p)
                .find(|&(_, e)| g.edge_label(e).unwrap() == "nationality")
                .map(|(v, _)| v)
                .expect("everyone has a nationality");
            assert_eq!(nat, country);
        }
    }

    #[test]
    fn relation_types_respect_schema() {
        let g = knowledge_graph(&KgParams::default(), 2);
        for e in g.edge_ids() {
            let (s, d) = g.edge_endpoints(e).unwrap();
            let rel = g.edge_label(e).unwrap();
            let (_, dom, rng_ty) = RELATION_SCHEMA
                .iter()
                .find(|r| r.0 == rel)
                .unwrap_or_else(|| panic!("unknown relation {rel}"));
            assert_eq!(g.node_label(s).unwrap(), *dom);
            assert_eq!(g.node_label(d).unwrap(), *rng_ty);
        }
    }

    #[test]
    fn corruption_report_matches_mutation() {
        let mut g = knowledge_graph(&KgParams::default(), 3);
        let before = count_rel(&g, "nationality");
        let report = corrupt_kg(&mut g, 0.10, 0.05, 3);
        let after = count_rel(&g, "nationality");
        // Every removal not offset by a rewire reduces the count.
        let pure_removals = report.removed.len() - report.injected_wrong.len();
        assert_eq!(after, before - pure_removals);
        assert!(!report.injected_wrong.is_empty());
        // Each injected wrong edge exists with the wrong target.
        for (s, d, rel) in &report.injected_wrong {
            let found = g
                .neighbors(*s)
                .any(|(v, e)| v == *d && g.edge_label(e).unwrap() == rel);
            assert!(found);
        }
    }

    #[test]
    fn zero_rates_are_noop() {
        let mut g = knowledge_graph(&KgParams::default(), 5);
        let before = g.edge_count();
        let report = corrupt_kg(&mut g, 0.0, 0.0, 5);
        assert_eq!(g.edge_count(), before);
        assert!(report.injected_wrong.is_empty() && report.removed.is_empty());
    }
}
