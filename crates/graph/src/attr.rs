//! Node/edge attribute values.
//!
//! Attributes are small typed values attached to nodes and edges. They carry
//! domain payloads the analysis APIs read (e.g. an atom's `element`, a social
//! user's `age`, a knowledge-graph relation's `confidence`). A [`BTreeMap`] is
//! used so iteration order — and therefore serialised output and sequentialised
//! token streams — is deterministic.

use chatgraph_support::json::{FromJson, Json, JsonError, ToJson};
use std::collections::BTreeMap;
use std::fmt;

/// A dynamically typed attribute value.
///
/// Serialised *untagged*: each variant is the bare JSON scalar
/// (`true`, `31`, `0.93`, `"alice"`), matching the previous
/// `#[serde(untagged)]` wire format.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Boolean flag, e.g. `verified = true`.
    Bool(bool),
    /// 64-bit integer, e.g. `age = 31`.
    Int(i64),
    /// 64-bit float, e.g. `confidence = 0.93`.
    Float(f64),
    /// UTF-8 text, e.g. `name = "alice"`.
    Text(String),
}

impl AttrValue {
    /// Returns the integer payload, if this is an [`AttrValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload; integers are widened to `f64`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            AttrValue::Float(v) => Some(*v),
            AttrValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the text payload, if this is an [`AttrValue::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Text(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is an [`AttrValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Name of the contained type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            AttrValue::Bool(_) => "bool",
            AttrValue::Int(_) => "int",
            AttrValue::Float(_) => "float",
            AttrValue::Text(_) => "text",
        }
    }
}

impl ToJson for AttrValue {
    fn to_json(&self) -> Json {
        match self {
            AttrValue::Bool(v) => Json::Bool(*v),
            AttrValue::Int(v) => Json::Int(*v),
            AttrValue::Float(v) => Json::Float(*v),
            AttrValue::Text(v) => Json::Str(v.clone()),
        }
    }
}

impl FromJson for AttrValue {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(AttrValue::Bool(*b)),
            Json::Int(i) => Ok(AttrValue::Int(*i)),
            // Integers beyond i64 only fit the float variant (what the
            // untagged serde derive also fell back to).
            Json::UInt(u) => Ok(AttrValue::Float(*u as f64)),
            Json::Float(f) => Ok(AttrValue::Float(*f)),
            Json::Str(s) => Ok(AttrValue::Text(s.clone())),
            other => Err(JsonError::expected("attribute scalar", other)),
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Bool(v) => write!(f, "{v}"),
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Text(v) => write!(f, "{v}"),
        }
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Text(v.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Text(v)
    }
}

/// An ordered attribute map.
///
/// Deterministic iteration order matters: the sequentialiser turns attributes
/// into LLM tokens and the tests assert byte-identical output across runs.
pub type Attrs = BTreeMap<String, AttrValue>;

/// Builds an [`Attrs`] map from `(key, value)` pairs.
///
/// ```
/// use chatgraph_graph::attr::{attrs, AttrValue};
/// let a = attrs([("age", AttrValue::Int(30)), ("name", "bob".into())]);
/// assert_eq!(a["age"].as_int(), Some(30));
/// ```
pub fn attrs<I, K>(pairs: I) -> Attrs
where
    I: IntoIterator<Item = (K, AttrValue)>,
    K: Into<String>,
{
    pairs.into_iter().map(|(k, v)| (k.into(), v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_matching_variant_only() {
        assert_eq!(AttrValue::Int(3).as_int(), Some(3));
        assert_eq!(AttrValue::Int(3).as_text(), None);
        assert_eq!(AttrValue::Text("x".into()).as_text(), Some("x"));
        assert_eq!(AttrValue::Bool(true).as_bool(), Some(true));
        assert_eq!(AttrValue::Float(1.5).as_float(), Some(1.5));
    }

    #[test]
    fn int_widens_to_float() {
        assert_eq!(AttrValue::Int(2).as_float(), Some(2.0));
    }

    #[test]
    fn display_is_plain() {
        assert_eq!(AttrValue::Text("hi".into()).to_string(), "hi");
        assert_eq!(AttrValue::Int(-4).to_string(), "-4");
        assert_eq!(AttrValue::Bool(false).to_string(), "false");
    }

    #[test]
    fn from_impls_build_expected_variants() {
        assert_eq!(AttrValue::from(1i64), AttrValue::Int(1));
        assert_eq!(AttrValue::from(1i32), AttrValue::Int(1));
        assert_eq!(AttrValue::from(true), AttrValue::Bool(true));
        assert_eq!(AttrValue::from(0.5), AttrValue::Float(0.5));
        assert_eq!(AttrValue::from("a"), AttrValue::Text("a".into()));
    }

    #[test]
    fn attrs_helper_builds_sorted_map() {
        let a = attrs([("z", AttrValue::Int(1)), ("a", AttrValue::Int(2))]);
        let keys: Vec<_> = a.keys().cloned().collect();
        assert_eq!(keys, vec!["a", "z"]);
    }

    #[test]
    fn type_names() {
        assert_eq!(AttrValue::Bool(true).type_name(), "bool");
        assert_eq!(AttrValue::Int(1).type_name(), "int");
        assert_eq!(AttrValue::Float(1.0).type_name(), "float");
        assert_eq!(AttrValue::Text(String::new()).type_name(), "text");
    }

    #[test]
    fn json_roundtrip() {
        let a = attrs([("k", AttrValue::Float(2.5)), ("n", "x".into())]);
        let s = chatgraph_support::json::to_string(&a);
        let back: Attrs = chatgraph_support::json::from_str(&s).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn json_values_are_untagged_scalars() {
        let a = attrs([
            ("b", AttrValue::Bool(true)),
            ("f", AttrValue::Float(0.5)),
            ("i", AttrValue::Int(-3)),
            ("t", "x".into()),
        ]);
        assert_eq!(
            chatgraph_support::json::to_string(&a),
            r#"{"b":true,"f":0.5,"i":-3,"t":"x"}"#
        );
    }
}
