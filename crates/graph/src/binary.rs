//! Compact binary graph serialisation.
//!
//! JSON round-trips are lossless but verbose; the similarity-search database
//! (hundreds of molecules) and cleaned-graph exports benefit from a compact
//! format. The encoding is a simple length-prefixed layout over plain byte
//! vectors:
//!
//! ```text
//! magic "CGRB" | version u8 | directed u8 | name | n_nodes u32 | nodes… |
//! n_edges u32 | edges… | crc32 u32
//! node  := label | n_attrs u16 | (key, value)…
//! edge  := src u32 | dst u32 | label | n_attrs u16 | (key, value)…
//! value := tag u8 (0 bool, 1 int, 2 float, 3 text) | payload
//! string := len u32 | utf8 bytes
//! ```
//!
//! Only live elements are written; ids are re-densified on decode (the
//! encoding of a tombstoned graph equals the encoding of its
//! [`Graph::compact`]).
//!
//! Version 2 appends a trailing CRC-32 over everything before it, verified
//! *before* any structural parsing: a bit-flipped or truncated payload is
//! rejected outright instead of mis-parsing into a plausible-looking graph.
//! Section counts are additionally validated against the bytes actually
//! remaining, so a corrupt count can never drive an over-allocation.

use crate::attr::{AttrValue, Attrs};
use crate::graph::{Direction, Graph, GraphError, NodeId};
use chatgraph_support::hash::crc32;
use std::fmt;

const MAGIC: &[u8; 4] = b"CGRB";
const VERSION: u8 = 2;

/// Smallest possible encoded node: empty label (4) + attr count (2).
const MIN_NODE_BYTES: usize = 6;
/// Smallest possible encoded edge: src (4) + dst (4) + empty label (4) +
/// attr count (2).
const MIN_EDGE_BYTES: usize = 14;
/// Smallest possible encoded attribute: empty key (4) + tag (1) + bool (1).
const MIN_ATTR_BYTES: usize = 6;

/// Binary decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryError {
    /// Missing or wrong magic/version header.
    BadHeader,
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A string was not valid UTF-8.
    BadUtf8,
    /// An attribute value had an unknown tag.
    BadTag(u8),
    /// An edge referenced an out-of-range node.
    BadEdge,
    /// The trailing CRC-32 did not match the payload (corruption).
    BadChecksum,
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryError::BadHeader => write!(f, "missing CGRB header or wrong version"),
            BinaryError::Truncated => write!(f, "buffer truncated"),
            BinaryError::BadUtf8 => write!(f, "invalid utf-8 string"),
            BinaryError::BadTag(t) => write!(f, "unknown attribute tag {t}"),
            BinaryError::BadEdge => write!(f, "edge references unknown node"),
            BinaryError::BadChecksum => write!(f, "payload checksum mismatch"),
        }
    }
}

impl std::error::Error for BinaryError {}

pub(crate) fn put_string(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_attrs(buf: &mut Vec<u8>, attrs: &Attrs) {
    buf.extend_from_slice(&(attrs.len() as u16).to_le_bytes());
    for (k, v) in attrs {
        put_string(buf, k);
        match v {
            AttrValue::Bool(b) => {
                buf.push(0);
                buf.push(*b as u8);
            }
            AttrValue::Int(i) => {
                buf.push(1);
                buf.extend_from_slice(&i.to_le_bytes());
            }
            AttrValue::Float(x) => {
                buf.push(2);
                buf.extend_from_slice(&x.to_le_bytes());
            }
            AttrValue::Text(t) => {
                buf.push(3);
                put_string(buf, t);
            }
        }
    }
}

/// Serialises a graph to the compact binary format.
pub fn to_bytes(g: &Graph) -> Result<Vec<u8>, GraphError> {
    let mut buf = Vec::with_capacity(64 + 32 * g.node_count() + 24 * g.edge_count());
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION);
    buf.push(g.is_directed() as u8);
    put_string(&mut buf, g.name());
    // Dense re-numbering of live nodes.
    let ids: Vec<NodeId> = g.node_ids().collect();
    let mut dense = vec![u32::MAX; g.node_bound()];
    for (i, &v) in ids.iter().enumerate() {
        dense[v.index()] = i as u32;
    }
    buf.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for &v in &ids {
        put_string(&mut buf, g.node_label(v)?);
        put_attrs(&mut buf, g.node_attrs(v)?);
    }
    let edges: Vec<_> = g.edge_ids().collect();
    buf.extend_from_slice(&(edges.len() as u32).to_le_bytes());
    for e in edges {
        let (s, d) = g.edge_endpoints(e)?;
        buf.extend_from_slice(&dense[s.index()].to_le_bytes());
        buf.extend_from_slice(&dense[d.index()].to_le_bytes());
        put_string(&mut buf, g.edge_label(e)?);
        put_attrs(&mut buf, g.edge_attrs(e)?);
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    Ok(buf)
}

/// Splits `n` bytes off the front of the cursor, or reports truncation.
pub(crate) fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], BinaryError> {
    if buf.len() < n {
        return Err(BinaryError::Truncated);
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

pub(crate) fn get_u8(buf: &mut &[u8]) -> Result<u8, BinaryError> {
    Ok(take(buf, 1)?[0])
}

pub(crate) fn get_u16_le(buf: &mut &[u8]) -> Result<u16, BinaryError> {
    match take(buf, 2)?.try_into() {
        Ok(bytes) => Ok(u16::from_le_bytes(bytes)),
        Err(_) => Err(BinaryError::Truncated),
    }
}

pub(crate) fn get_u32_le(buf: &mut &[u8]) -> Result<u32, BinaryError> {
    match take(buf, 4)?.try_into() {
        Ok(bytes) => Ok(u32::from_le_bytes(bytes)),
        Err(_) => Err(BinaryError::Truncated),
    }
}

pub(crate) fn get_i64_le(buf: &mut &[u8]) -> Result<i64, BinaryError> {
    match take(buf, 8)?.try_into() {
        Ok(bytes) => Ok(i64::from_le_bytes(bytes)),
        Err(_) => Err(BinaryError::Truncated),
    }
}

pub(crate) fn get_f64_le(buf: &mut &[u8]) -> Result<f64, BinaryError> {
    match take(buf, 8)?.try_into() {
        Ok(bytes) => Ok(f64::from_le_bytes(bytes)),
        Err(_) => Err(BinaryError::Truncated),
    }
}

pub(crate) fn get_string(buf: &mut &[u8]) -> Result<String, BinaryError> {
    let len = get_u32_le(buf)? as usize;
    let raw = take(buf, len)?.to_vec();
    String::from_utf8(raw).map_err(|_| BinaryError::BadUtf8)
}

pub(crate) fn get_attrs(buf: &mut &[u8]) -> Result<Attrs, BinaryError> {
    let n = get_u16_le(buf)? as usize;
    if n > buf.len() / MIN_ATTR_BYTES {
        return Err(BinaryError::Truncated);
    }
    let mut attrs = Attrs::new();
    for _ in 0..n {
        let key = get_string(buf)?;
        let tag = get_u8(buf)?;
        let value = match tag {
            0 => AttrValue::Bool(get_u8(buf)? != 0),
            1 => AttrValue::Int(get_i64_le(buf)?),
            2 => AttrValue::Float(get_f64_le(buf)?),
            3 => AttrValue::Text(get_string(buf)?),
            other => return Err(BinaryError::BadTag(other)),
        };
        attrs.insert(key, value);
    }
    Ok(attrs)
}

/// Deserialises a graph from the compact binary format.
///
/// The trailing CRC-32 is verified before any structural parsing, so a
/// corrupted payload fails with [`BinaryError::BadChecksum`] instead of
/// mis-parsing; section counts are then still validated against the bytes
/// remaining, so even a checksummed-but-hostile buffer cannot drive an
/// over-allocation.
pub fn from_bytes(data: &[u8]) -> Result<Graph, BinaryError> {
    let mut buf = data;
    let header = take(&mut buf, 6).map_err(|_| BinaryError::BadHeader)?;
    if &header[..4] != MAGIC || header[4] != VERSION {
        return Err(BinaryError::BadHeader);
    }
    // Split off and verify the trailing checksum before parsing anything.
    if buf.len() < 4 {
        return Err(BinaryError::Truncated);
    }
    let (body, tail) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    if crc32(&data[..data.len() - 4]) != stored {
        return Err(BinaryError::BadChecksum);
    }
    let mut buf = body;
    let directed = header[5] != 0;
    let mut g = Graph::new(if directed {
        Direction::Directed
    } else {
        Direction::Undirected
    });
    g.set_name(get_string(&mut buf)?);
    let n_nodes = get_u32_le(&mut buf)? as usize;
    if n_nodes > buf.len() / MIN_NODE_BYTES {
        return Err(BinaryError::Truncated);
    }
    let mut ids = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let label = get_string(&mut buf)?;
        let attrs = get_attrs(&mut buf)?;
        ids.push(g.add_node_with_attrs(label, attrs));
    }
    let n_edges = get_u32_le(&mut buf)? as usize;
    if n_edges > buf.len() / MIN_EDGE_BYTES {
        return Err(BinaryError::Truncated);
    }
    for _ in 0..n_edges {
        let s = get_u32_le(&mut buf)? as usize;
        let d = get_u32_le(&mut buf)? as usize;
        let label = get_string(&mut buf)?;
        let attrs = get_attrs(&mut buf)?;
        let (&sid, &did) = (
            ids.get(s).ok_or(BinaryError::BadEdge)?,
            ids.get(d).ok_or(BinaryError::BadEdge)?,
        );
        g.add_edge_with_attrs(sid, did, label, attrs)
            .map_err(|_| BinaryError::BadEdge)?;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attrs;
    use crate::generators::{knowledge_graph, molecule, KgParams, MoleculeParams};
    use crate::io;

    #[test]
    fn roundtrip_preserves_everything() {
        let mut g = molecule(&MoleculeParams::default(), 3);
        let v = g.node_ids().next().unwrap();
        g.node_attrs_mut(v).unwrap().extend(attrs([
            ("flag", AttrValue::Bool(true)),
            ("charge", AttrValue::Int(-1)),
            ("mass", AttrValue::Float(12.011)),
            ("note", "aromatic".into()),
        ]));
        let bytes = to_bytes(&g).unwrap();
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.name(), g.name());
        assert_eq!(back.label_histogram(), g.label_histogram());
        assert_eq!(back.node_attrs(v).unwrap(), g.node_attrs(v).unwrap());
    }

    #[test]
    fn directed_graphs_keep_orientation() {
        let g = knowledge_graph(&KgParams { persons: 5, ..KgParams::default() }, 2);
        let back = from_bytes(&to_bytes(&g).unwrap()).unwrap();
        assert!(back.is_directed());
        assert_eq!(back.edge_count(), g.edge_count());
    }

    #[test]
    fn tombstoned_graph_encodes_as_its_compaction() {
        let mut g = molecule(&MoleculeParams::default(), 4);
        let victim = g.node_ids().nth(3).unwrap();
        g.remove_node(victim).unwrap();
        let direct = to_bytes(&g).unwrap();
        let (compacted, _) = g.compact();
        assert_eq!(direct, to_bytes(&compacted).unwrap());
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let g = molecule(&MoleculeParams::default(), 5);
        let bin = to_bytes(&g).unwrap();
        let json = io::to_json(&g);
        assert!(
            bin.len() * 2 < json.len(),
            "binary {} vs json {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn corrupt_inputs_are_rejected_not_panicking() {
        assert_eq!(from_bytes(b""), Err(BinaryError::BadHeader));
        assert_eq!(from_bytes(b"XXXX\x02\x00"), Err(BinaryError::BadHeader));
        let good = to_bytes(&molecule(&MoleculeParams::default(), 1)).unwrap();
        // Truncate at every prefix length: must error, never panic.
        for cut in 0..good.len() {
            assert!(from_bytes(&good[..cut]).is_err(), "accepted truncation at {cut}");
        }
        // Flip the version byte.
        let mut bad = good.to_vec();
        bad[4] = 99;
        assert_eq!(from_bytes(&bad), Err(BinaryError::BadHeader));
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let good = to_bytes(&molecule(&MoleculeParams::default(), 2)).unwrap();
        // Any single-bit flip past the header must fail the checksum (or
        // the header check, for the first six bytes) — a flipped label
        // byte must not decode into a silently different graph.
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    from_bytes(&bad).is_err(),
                    "accepted bit flip at {byte}:{bit}"
                );
            }
        }
    }

    #[test]
    fn oversized_counts_cannot_over_allocate() {
        // A node count of u32::MAX in a tiny buffer must be rejected by the
        // remaining-bytes bound (after re-stamping a valid checksum so the
        // count check itself is what fires), not attempted as an allocation.
        let mut bad = to_bytes(&Graph::undirected()).unwrap();
        bad.truncate(bad.len() - 4);
        let name_end = 6 + 4 + 1; // header + name len + "G"
        bad[name_end..name_end + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let crc = chatgraph_support::hash::crc32(&bad);
        bad.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(from_bytes(&bad), Err(BinaryError::Truncated));
    }

    #[test]
    fn version_one_payloads_are_rejected() {
        // v1 had no checksum; accepting it would reopen the silent
        // mis-parse hole. The format is internal (no persisted v1 data).
        let mut old = to_bytes(&Graph::undirected()).unwrap();
        old.truncate(old.len() - 4);
        old[4] = 1;
        assert_eq!(from_bytes(&old), Err(BinaryError::BadHeader));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Graph::undirected();
        let back = from_bytes(&to_bytes(&g).unwrap()).unwrap();
        assert_eq!(back.node_count(), 0);
        assert_eq!(back.edge_count(), 0);
    }
}
