//! Fluent graph construction.
//!
//! [`GraphBuilder`] lets tests, examples and generators build graphs from
//! string keys without tracking [`NodeId`]s by hand:
//!
//! ```
//! use chatgraph_graph::GraphBuilder;
//!
//! let g = GraphBuilder::undirected()
//!     .node("a", "Person")
//!     .node("b", "Person")
//!     .edge("a", "b", "knows")
//!     .build();
//! assert_eq!(g.node_count(), 2);
//! ```

use crate::attr::Attrs;
use crate::graph::{Direction, Graph, NodeId};
use std::collections::HashMap;

/// Incremental builder keyed by caller-chosen string names.
#[derive(Debug)]
pub struct GraphBuilder {
    graph: Graph,
    by_key: HashMap<String, NodeId>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with the given direction.
    pub fn new(direction: Direction) -> Self {
        GraphBuilder {
            graph: Graph::new(direction),
            by_key: HashMap::new(),
        }
    }

    /// Starts an undirected-graph builder.
    pub fn undirected() -> Self {
        Self::new(Direction::Undirected)
    }

    /// Starts a directed-graph builder.
    pub fn directed() -> Self {
        Self::new(Direction::Directed)
    }

    /// Sets the graph name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.graph.set_name(name);
        self
    }

    /// Adds (or re-labels) a node identified by `key`.
    pub fn node(self, key: impl Into<String>, label: impl Into<String>) -> Self {
        self.node_attrs(key, label, Attrs::new())
    }

    /// Adds a node with attributes, identified by `key`.
    pub fn node_attrs(
        mut self,
        key: impl Into<String>,
        label: impl Into<String>,
        attrs: Attrs,
    ) -> Self {
        let key = key.into();
        match self.by_key.get(&key) {
            Some(&id) => {
                // Builder nodes are never removed, so neither lookup can
                // fail; degrade silently rather than panic in a builder.
                let _ = self.graph.set_node_label(id, label);
                if let Ok(slot) = self.graph.node_attrs_mut(id) {
                    *slot = attrs;
                }
            }
            None => {
                let id = self.graph.add_node_with_attrs(label, attrs);
                self.by_key.insert(key, id);
            }
        }
        self
    }

    /// Adds an edge between two keyed nodes; the nodes are created with the
    /// empty label if they do not exist yet. Duplicate edges are ignored.
    pub fn edge(
        self,
        src: impl Into<String>,
        dst: impl Into<String>,
        label: impl Into<String>,
    ) -> Self {
        self.edge_attrs(src, dst, label, Attrs::new())
    }

    /// Adds an edge with attributes. Duplicate edges are ignored.
    pub fn edge_attrs(
        mut self,
        src: impl Into<String>,
        dst: impl Into<String>,
        label: impl Into<String>,
        attrs: Attrs,
    ) -> Self {
        let s = self.ensure(src.into());
        let d = self.ensure(dst.into());
        // A self-edge or duplicate is a caller mistake in fluent usage; the
        // builder swallows duplicates to make idempotent construction easy.
        let _ = self.graph.add_edge_with_attrs(s, d, label, attrs);
        self
    }

    fn ensure(&mut self, key: String) -> NodeId {
        if let Some(&id) = self.by_key.get(&key) {
            id
        } else {
            let id = self.graph.add_node(key.clone());
            self.by_key.insert(key, id);
            id
        }
    }

    /// Looks up the node id for a key added earlier.
    pub fn id_of(&self, key: &str) -> Option<NodeId> {
        self.by_key.get(key).copied()
    }

    /// Finishes construction.
    pub fn build(self) -> Graph {
        self.graph
    }

    /// Finishes construction and also returns the key → id map.
    pub fn build_with_keys(self) -> (Graph, HashMap<String, NodeId>) {
        (self.graph, self.by_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attrs;

    #[test]
    fn builds_triangle() {
        let g = GraphBuilder::undirected()
            .node("a", "X")
            .node("b", "X")
            .node("c", "Y")
            .edge("a", "b", "e")
            .edge("b", "c", "e")
            .edge("c", "a", "e")
            .build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn edge_creates_missing_nodes_with_key_as_label() {
        let (g, keys) = GraphBuilder::directed()
            .edge("u", "v", "r")
            .build_with_keys();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.node_label(keys["u"]).unwrap(), "u");
    }

    #[test]
    fn duplicate_edges_ignored() {
        let g = GraphBuilder::undirected()
            .edge("a", "b", "e")
            .edge("b", "a", "e")
            .build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn re_adding_node_relabels() {
        let g = GraphBuilder::undirected()
            .node("a", "Old")
            .node_attrs("a", "New", attrs([("k", 1i64.into())]))
            .build();
        let id = g.node_ids().next().unwrap();
        assert_eq!(g.node_label(id).unwrap(), "New");
        assert_eq!(g.node_attrs(id).unwrap()["k"].as_int(), Some(1));
    }

    #[test]
    fn id_of_reports_known_keys() {
        let b = GraphBuilder::undirected().node("a", "A");
        assert!(b.id_of("a").is_some());
        assert!(b.id_of("zz").is_none());
    }

    #[test]
    fn name_is_set() {
        let g = GraphBuilder::undirected().name("mol-1").build();
        assert_eq!(g.name(), "mol-1");
    }
}
