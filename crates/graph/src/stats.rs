//! Per-label statistics catalog feeding the planner's cost model.
//!
//! RGL-style graph-centric planning (PAPERS.md) chooses operators from
//! catalog statistics rather than live scans. [`StatsCatalog`] is the
//! ChatGraph equivalent: one O(n + m) pass over a [`Graph`] records node
//! counts per label, edge counts per relation, and the degree moments that
//! predict kernel work (`Σ deg` for linear kernels, `Σ deg²` for
//! triangle-style kernels, `max deg` for skew). The planner's cost model
//! (`chatgraph-apis::cost`) turns these into per-step work estimates; it
//! never needs the graph itself.
//!
//! Catalogs are maintained *across mutation epochs* the same way CSR
//! snapshots are: [`CatalogCache`] keys by `Arc<Graph>` pointer identity,
//! which under copy-on-write mutation is exactly the epoch rule (see
//! [`crate::csr`]) — a hit proves the statistics are still current, a
//! mutation produces a new `Arc` and a fresh one-pass rebuild.

use crate::graph::Graph;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One epoch's statistics: label/relation histograms plus degree moments.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsCatalog {
    /// Live node count.
    pub nodes: usize,
    /// Live edge count.
    pub edges: usize,
    /// Whether the graph is directed.
    pub directed: bool,
    /// `(label, count)` over live nodes, sorted by label.
    pub node_labels: Vec<(String, usize)>,
    /// `(relation, count)` over live edges, sorted by relation.
    pub edge_labels: Vec<(String, usize)>,
    /// `Σ total_degree` over live nodes (= 2m undirected, 2m directed).
    pub degree_sum: u64,
    /// `Σ total_degree²` — the second moment driving triangle/clustering
    /// cost and parallel-imbalance risk.
    pub degree_sum_sq: u64,
    /// Maximum total degree (hub size).
    pub max_degree: usize,
}

impl StatsCatalog {
    /// One pass over `g`'s live nodes and edges.
    pub fn build(g: &Graph) -> StatsCatalog {
        let mut node_labels: BTreeMap<String, usize> = BTreeMap::new();
        let (mut degree_sum, mut degree_sum_sq, mut max_degree) = (0u64, 0u64, 0usize);
        for v in g.node_ids() {
            if let Ok(l) = g.node_label(v) {
                *node_labels.entry(l.to_owned()).or_default() += 1;
            }
            let d = g.total_degree(v);
            degree_sum += d as u64;
            degree_sum_sq += (d as u64) * (d as u64);
            max_degree = max_degree.max(d);
        }
        let mut edge_labels: BTreeMap<String, usize> = BTreeMap::new();
        for e in g.edge_ids() {
            if let Ok(l) = g.edge_label(e) {
                *edge_labels.entry(l.to_owned()).or_default() += 1;
            }
        }
        StatsCatalog {
            nodes: g.node_count(),
            edges: g.edge_count(),
            directed: g.is_directed(),
            node_labels: node_labels.into_iter().collect(),
            edge_labels: edge_labels.into_iter().collect(),
            degree_sum,
            degree_sum_sq,
            max_degree,
        }
    }

    /// Live nodes carrying `label`.
    pub fn node_count(&self, label: &str) -> usize {
        match self.node_labels.binary_search_by(|(l, _)| l.as_str().cmp(label)) {
            Ok(i) => self.node_labels[i].1,
            Err(_) => 0,
        }
    }

    /// Live edges carrying relation `label`.
    pub fn edge_count(&self, label: &str) -> usize {
        match self.edge_labels.binary_search_by(|(l, _)| l.as_str().cmp(label)) {
            Ok(i) => self.edge_labels[i].1,
            Err(_) => 0,
        }
    }

    /// Mean total degree.
    pub fn avg_degree(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.degree_sum as f64 / self.nodes as f64
        }
    }

    /// `Σ deg² / n` — large relative to `avg_degree²` means hubs.
    pub fn degree_second_moment(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.degree_sum_sq as f64 / self.nodes as f64
        }
    }
}

struct CatEntry {
    graph: Arc<Graph>,
    catalog: Arc<StatsCatalog>,
}

struct CatInner {
    entries: Vec<CatEntry>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

/// An epoch cache of [`StatsCatalog`]s, keyed by `Arc<Graph>` identity —
/// the same most-recently-used-first epoch rule as [`crate::csr::CsrCache`].
pub struct CatalogCache {
    inner: Mutex<CatInner>,
}

impl Default for CatalogCache {
    fn default() -> Self {
        CatalogCache::new(4)
    }
}

impl CatalogCache {
    /// Creates a cache holding up to `capacity` catalogs (minimum 1).
    pub fn new(capacity: usize) -> CatalogCache {
        CatalogCache {
            inner: Mutex::new(CatInner {
                entries: Vec::new(),
                capacity: capacity.max(1),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Returns the catalog for `g`'s epoch, building it on a miss.
    pub fn get_or_build(&self, g: &Arc<Graph>) -> Arc<StatsCatalog> {
        // lockdoc: recover(entries are whole CatEntry values inserted in one call; a panicked holder cannot leave one torn, and counters are advisory)
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = inner.entries.iter().position(|e| Arc::ptr_eq(&e.graph, g)) {
            inner.hits += 1;
            let entry = inner.entries.remove(pos);
            let catalog = Arc::clone(&entry.catalog);
            inner.entries.insert(0, entry);
            return catalog;
        }
        inner.misses += 1;
        let catalog = Arc::new(StatsCatalog::build(g));
        inner.entries.insert(
            0,
            CatEntry { graph: Arc::clone(g), catalog: Arc::clone(&catalog) },
        );
        let cap = inner.capacity;
        inner.entries.truncate(cap);
        catalog
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        // lockdoc: recover(read-only observation of advisory counters)
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (inner.hits, inner.misses)
    }
}

impl std::fmt::Debug for CatalogCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses) = self.stats();
        f.debug_struct("CatalogCache").field("hits", &hits).field("misses", &misses).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{knowledge_graph, KgParams};
    use crate::GraphBuilder;

    #[test]
    fn catalog_counts_labels_relations_and_moments() {
        let mut g = GraphBuilder::directed()
            .edge("a", "b", "knows")
            .edge("a", "c", "knows")
            .edge("b", "c", "likes")
            .build();
        g.set_node_label(crate::graph::NodeId(0), "Person").expect("live node");
        let cat = StatsCatalog::build(&g);
        assert_eq!(cat.nodes, 3);
        assert_eq!(cat.edges, 3);
        assert_eq!(cat.node_count("Person"), 1);
        assert_eq!(cat.edge_count("knows"), 2);
        assert_eq!(cat.edge_count("likes"), 1);
        assert_eq!(cat.edge_count("absent"), 0);
        // degrees (out+in): a=2, b=2, c=2 → sum 6, sum² 12, max 2.
        assert_eq!(cat.degree_sum, 6);
        assert_eq!(cat.degree_sum_sq, 12);
        assert_eq!(cat.max_degree, 2);
        assert_eq!(cat.avg_degree(), 2.0);
    }

    #[test]
    fn kg_catalog_matches_schema_counts() {
        let p = KgParams::default();
        let g = knowledge_graph(&p, 4);
        let cat = StatsCatalog::build(&g);
        assert_eq!(cat.node_count("Person"), p.persons);
        assert_eq!(cat.node_count("City"), p.cities);
        assert_eq!(cat.edge_count("lives_in"), p.persons);
        assert_eq!(cat.edge_count("nationality"), p.persons);
        assert!(cat.max_degree as f64 > cat.avg_degree(), "cities/countries are hubs");
    }

    #[test]
    fn cache_hits_same_epoch_and_rebuilds_after_cow() {
        let cache = CatalogCache::default();
        let mut g = Arc::new(GraphBuilder::undirected().edge("a", "b", "-").build());
        let first = cache.get_or_build(&g);
        let again = cache.get_or_build(&g);
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(cache.stats(), (1, 1));

        Arc::make_mut(&mut g).add_node("c");
        let rebuilt = cache.get_or_build(&g);
        assert_eq!(rebuilt.nodes, 3);
        assert_eq!(cache.stats(), (1, 2));
    }
}
