//! Differential properties of delta-CSR snapshots.
//!
//! The delta path (`CsrGraph::build_delta`, and the same path implicitly
//! inside `CsrCache`) must be *indistinguishable* from a from-scratch
//! rebuild: after any sequence of random adds, deletes and relabels the
//! patched snapshot is logically equal to `CsrGraph::build`, and every
//! kernel returns bit-identical results on both at any worker count and
//! either chunking strategy. Edits the delta path declines (node removal,
//! too many touched rows) must fall back to a rebuild transparently.

use chatgraph_graph::csr::{CsrCache, CsrGraph};
use chatgraph_graph::generators::{knowledge_graph, social_network, KgParams, SocialParams};
use chatgraph_graph::kernels::{self, ChunkStrategy, KernelPolicy};
use chatgraph_graph::{EdgeId, Graph, NodeId};
use chatgraph_support::rng::{RngExt, SeedableRng, StdRng};
use std::sync::Arc;

fn live_nodes(g: &Graph) -> Vec<NodeId> {
    g.node_ids().collect()
}

fn live_edges(g: &Graph) -> Vec<EdgeId> {
    g.edge_ids().collect()
}

/// Applies one random mutation epoch: a handful of edge adds, edge
/// removals, and label edits; every `node_removal_period`-th epoch also
/// removes a node — an edit the delta path declines, exercising the
/// fallback to a full rebuild.
fn mutate_epoch(g: &mut Graph, rng: &mut StdRng, epoch: usize, node_removal_period: usize) {
    let ops = 1 + rng.random_range(0..4);
    for _ in 0..ops {
        match rng.random_range(0..4u32) {
            0 => {
                let nodes = live_nodes(g);
                if nodes.len() >= 2 {
                    let a = nodes[rng.random_range(0..nodes.len())];
                    let b = nodes[rng.random_range(0..nodes.len())];
                    if a != b && !g.has_edge(a, b) {
                        let _ = g.add_edge(a, b, "patched");
                    }
                }
            }
            1 => {
                let edges = live_edges(g);
                if !edges.is_empty() {
                    let _ = g.remove_edge(edges[rng.random_range(0..edges.len())]);
                }
            }
            2 => {
                let edges = live_edges(g);
                if !edges.is_empty() {
                    let e = edges[rng.random_range(0..edges.len())];
                    let _ = g.set_edge_label(e, "relabeled");
                }
            }
            _ => {
                let nodes = live_nodes(g);
                if !nodes.is_empty() {
                    let v = nodes[rng.random_range(0..nodes.len())];
                    let _ = g.set_node_label(v, "Touched");
                }
            }
        }
    }
    if node_removal_period > 0 && epoch % node_removal_period == node_removal_period - 1 {
        let nodes = live_nodes(g);
        if nodes.len() > 4 {
            let _ = g.remove_node(nodes[rng.random_range(0..nodes.len())]);
        }
    }
}

/// Asserts that the kernels see no difference between `patched` and a
/// rebuilt snapshot, bit-for-bit, across worker counts and strategies.
fn assert_kernels_agree(patched: &CsrGraph, rebuilt: &CsrGraph, seed_node: NodeId) {
    for workers in [1usize, 2, 4] {
        for strategy in [ChunkStrategy::Fixed, ChunkStrategy::DegreeWeighted] {
            let policy = KernelPolicy::new(workers, 64).with_strategy(strategy);
            let pr_a = kernels::pagerank(patched, 0.85, 12, &policy);
            let pr_b = kernels::pagerank(rebuilt, 0.85, 12, &policy);
            assert_eq!(pr_a, pr_b, "pagerank differs at {workers}w {strategy:?}");
            assert_eq!(
                kernels::connected_components(patched, &policy).assignment,
                kernels::connected_components(rebuilt, &policy).assignment,
                "components differ at {workers}w {strategy:?}"
            );
            assert_eq!(
                kernels::triangle_count(patched, &policy),
                kernels::triangle_count(rebuilt, &policy),
                "triangles differ at {workers}w {strategy:?}"
            );
            if patched.dense_of(seed_node).is_some() {
                assert_eq!(
                    kernels::bfs_distances(patched, seed_node, usize::MAX, &policy),
                    kernels::bfs_distances(rebuilt, seed_node, usize::MAX, &policy),
                    "bfs differs at {workers}w {strategy:?}"
                );
            }
        }
    }
}

/// The core differential loop: `epochs` rounds of random edits against a
/// shared cache; every epoch's cached snapshot must equal a from-scratch
/// rebuild, and kernels must agree on both.
fn run_differential(mut graph: Arc<Graph>, seed: u64, epochs: usize, node_removal_period: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cache = CsrCache::new(3);
    let mut deltas = 0usize;
    for epoch in 0..epochs {
        mutate_epoch(Arc::make_mut(&mut graph), &mut rng, epoch, node_removal_period);
        let (snapshot, built) = cache.get_or_build_tracked(&graph);
        let rebuilt = CsrGraph::build(&graph);
        assert_eq!(
            *snapshot, rebuilt,
            "epoch {epoch}: cached snapshot (patched={}) != rebuild",
            snapshot.is_patched()
        );
        if built.is_some_and(|b| b.delta) {
            deltas += 1;
            assert!(snapshot.is_patched());
        }
        let probe = graph.node_ids().next().unwrap();
        assert_kernels_agree(&snapshot, &rebuilt, probe);
    }
    assert!(
        deltas >= epochs / 4,
        "only {deltas}/{epochs} epochs took the delta path — edits this small should patch"
    );
}

#[test]
fn social_edit_sequences_patch_identically() {
    let g = Arc::new(social_network(&SocialParams::default(), 7));
    run_differential(g, 0xD1FF, 24, 0);
}

#[test]
fn kg_edit_sequences_patch_identically_directed() {
    let g = Arc::new(knowledge_graph(&KgParams::default(), 9));
    run_differential(g, 0xD2FF, 24, 0);
}

#[test]
fn node_removals_fall_back_to_rebuild_and_stay_identical() {
    let g = Arc::new(social_network(&SocialParams::default(), 3));
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    let cache = CsrCache::new(3);
    let mut graph = g;
    let mut fallbacks = 0usize;
    for epoch in 0..12 {
        mutate_epoch(Arc::make_mut(&mut graph), &mut rng, epoch, 2);
        let (snapshot, built) = cache.get_or_build_tracked(&graph);
        let rebuilt = CsrGraph::build(&graph);
        assert_eq!(*snapshot, rebuilt, "epoch {epoch} diverged");
        if built.is_some_and(|b| !b.delta) {
            fallbacks += 1;
        }
    }
    assert!(fallbacks > 0, "node removals must force full rebuilds");
}

/// A patched snapshot served through a *shared* cache is the same object
/// for every consumer — and equal to a rebuild — so cross-session sharing
/// (the serving layer's global CSR cache) transparently benefits.
#[test]
fn shared_cache_serves_one_patched_snapshot_to_all_consumers() {
    let cache = Arc::new(CsrCache::new(4));
    let mut graph = Arc::new(social_network(&SocialParams::default(), 5));
    cache.get_or_build(&graph);
    // One cheap edit → the next epoch should be served as a delta.
    let nodes: Vec<NodeId> = graph.node_ids().collect();
    Arc::make_mut(&mut graph)
        .add_edge(nodes[0], nodes[nodes.len() - 1], "patched")
        .ok();
    let (a, built) = cache.get_or_build_tracked(&graph);
    assert!(built.is_some_and(|b| b.delta), "single edit must patch, not rebuild");
    let b = cache.get_or_build(&graph);
    assert!(Arc::ptr_eq(&a, &b), "both consumers share the same snapshot");
    assert_eq!(*a, CsrGraph::build(&graph));
}
