//! Property-based tests on the graph data structure itself: arbitrary
//! interleavings of mutations must never violate the structural invariants.

use chatgraph_graph::{io, Graph, NodeId};
use chatgraph_support::prop::{check, Config};
use chatgraph_support::rng::{RngExt, StdRng};
use chatgraph_support::{prop_assert, prop_assert_eq};

/// A random mutation script.
#[derive(Debug, Clone)]
enum Op {
    AddNode(u8),
    AddEdge(u8, u8),
    RemoveNode(u8),
    RemoveEdge(u8, u8),
    Relabel(u8, u8),
}

fn random_op(rng: &mut StdRng) -> Op {
    match rng.random_range(0u8..5) {
        0 => Op::AddNode(rng.random()),
        1 => Op::AddEdge(rng.random(), rng.random()),
        2 => Op::RemoveNode(rng.random()),
        3 => Op::RemoveEdge(rng.random(), rng.random()),
        _ => Op::Relabel(rng.random(), rng.random()),
    }
}

/// A script of up to `max` ops, scaled down by the harness `size`.
fn random_ops(rng: &mut StdRng, size: usize, max: usize) -> Vec<Op> {
    let cap = max.min(1 + 3 * size);
    let len = rng.random_range(0..=cap);
    (0..len).map(|_| random_op(rng)).collect()
}

fn nth_live(g: &Graph, k: u8) -> Option<NodeId> {
    let n = g.node_count();
    if n == 0 {
        None
    } else {
        g.node_ids().nth(k as usize % n)
    }
}

/// Checks every internal invariant reachable through the public API.
fn check_invariants(g: &Graph) {
    // Counts agree with iterator lengths.
    assert_eq!(g.node_ids().count(), g.node_count());
    assert_eq!(g.edge_ids().count(), g.edge_count());
    // Every live edge has live endpoints, and appears in its endpoints'
    // adjacency in the right multiplicity.
    for e in g.edge_ids() {
        let (a, b) = g.edge_endpoints(e).unwrap();
        assert!(g.contains_node(a) && g.contains_node(b));
        assert!(g.neighbors(a).any(|(v, ee)| v == b && ee == e));
        if !g.is_directed() {
            assert!(g.neighbors(b).any(|(v, ee)| v == a && ee == e));
        } else {
            assert!(g.in_neighbors(b).any(|(v, ee)| v == a && ee == e));
        }
    }
    // Degree sums: undirected Σdeg = 2m; directed Σout = Σin = m.
    let out_sum: usize = g.node_ids().map(|v| g.degree(v)).sum();
    if g.is_directed() {
        let in_sum: usize = g.node_ids().map(|v| g.in_degree(v)).sum();
        assert_eq!(out_sum, g.edge_count());
        assert_eq!(in_sum, g.edge_count());
    } else {
        assert_eq!(out_sum, 2 * g.edge_count());
    }
    // No adjacency entry references a removed edge or node.
    for v in g.node_ids() {
        for (w, e) in g.undirected_neighbors(v) {
            assert!(g.contains_node(w));
            assert!(g.contains_edge(e));
        }
    }
}

#[test]
fn mutation_scripts_preserve_invariants() {
    check(
        "mutation_scripts_preserve_invariants",
        Config::default().with_cases(128),
        |rng, size| (rng.random_bool(0.5), random_ops(rng, size, 60)),
        |(directed, ops)| {
            let mut g = if *directed {
                Graph::directed()
            } else {
                Graph::undirected()
            };
            for op in ops {
                match *op {
                    Op::AddNode(l) => {
                        g.add_node(format!("L{}", l % 4));
                    }
                    Op::AddEdge(a, b) => {
                        if let (Some(a), Some(b)) = (nth_live(&g, a), nth_live(&g, b)) {
                            let _ = g.add_edge(a, b, "e");
                        }
                    }
                    Op::RemoveNode(a) => {
                        if let Some(a) = nth_live(&g, a) {
                            g.remove_node(a).unwrap();
                        }
                    }
                    Op::RemoveEdge(a, b) => {
                        if let (Some(a), Some(b)) = (nth_live(&g, a), nth_live(&g, b)) {
                            if let Some(e) = g.find_edge(a, b) {
                                g.remove_edge(e).unwrap();
                            }
                        }
                    }
                    Op::Relabel(a, l) => {
                        if let Some(a) = nth_live(&g, a) {
                            g.set_node_label(a, format!("R{}", l % 4)).unwrap();
                        }
                    }
                }
                check_invariants(&g);
            }
            // Compaction preserves everything observable.
            let (dense, _) = g.compact();
            check_invariants(&dense);
            prop_assert_eq!(dense.node_count(), g.node_count());
            prop_assert_eq!(dense.edge_count(), g.edge_count());
            prop_assert_eq!(dense.label_histogram(), g.label_histogram());
            Ok(())
        },
    );
}

#[test]
fn edge_list_roundtrip_is_lossless_structurally() {
    check(
        "edge_list_roundtrip_is_lossless_structurally",
        Config::default().with_cases(128),
        |rng, size| random_ops(rng, size, 40),
        |ops| {
            let mut g = Graph::undirected();
            for op in ops {
                match *op {
                    Op::AddNode(l) => {
                        g.add_node(format!("L{}", l % 4));
                    }
                    Op::AddEdge(a, b) => {
                        if let (Some(a), Some(b)) = (nth_live(&g, a), nth_live(&g, b)) {
                            let _ = g.add_edge(a, b, "x");
                        }
                    }
                    _ => {}
                }
            }
            let text = io::to_edge_list(&g).unwrap();
            let back = io::parse_edge_list(&text).unwrap();
            prop_assert_eq!(back.node_count(), g.node_count());
            prop_assert_eq!(back.edge_count(), g.edge_count());
            prop_assert_eq!(back.label_histogram(), g.label_histogram());
            // And JSON is fully lossless.
            let j = io::from_json(&io::to_json(&g)).unwrap();
            prop_assert_eq!(j, g);
            Ok(())
        },
    );
}

#[test]
fn induced_subgraph_is_contained() {
    check(
        "induced_subgraph_is_contained",
        Config::default().with_cases(128),
        |rng, _size| {
            let n = rng.random_range(1usize..15);
            let edges: Vec<(usize, usize)> = (0..rng.random_range(0usize..40))
                .map(|_| (rng.random_range(0usize..15), rng.random_range(0usize..15)))
                .collect();
            let picks: Vec<usize> = (0..rng.random_range(0usize..10))
                .map(|_| rng.random_range(0usize..15))
                .collect();
            (n, edges, picks)
        },
        |(n, edges, picks)| {
            let n = *n;
            let mut g = Graph::undirected();
            let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("L{}", i % 3))).collect();
            for &(a, b) in edges {
                if a < n && b < n && a != b {
                    let _ = g.add_edge(ids[a], ids[b], "e");
                }
            }
            let chosen: Vec<NodeId> = picks.iter().filter(|&&p| p < n).map(|&p| ids[p]).collect();
            let (sub, mapping) = g.induced_subgraph(&chosen);
            // Every subgraph edge corresponds to an original edge between chosen nodes.
            prop_assert!(sub.node_count() <= chosen.len());
            for e in sub.edge_ids() {
                let (a, b) = sub.edge_endpoints(e).unwrap();
                // find preimages via mapping
                let pa = mapping.iter().position(|m| *m == Some(a)).unwrap();
                let pb = mapping.iter().position(|m| *m == Some(b)).unwrap();
                prop_assert!(
                    g.has_edge(NodeId(pa as u32), NodeId(pb as u32))
                        || g.has_edge(NodeId(pb as u32), NodeId(pa as u32))
                );
            }
            Ok(())
        },
    );
}
