//! Property-based tests on the graph data structure itself: arbitrary
//! interleavings of mutations must never violate the structural invariants.

use chatgraph_graph::{io, Graph, NodeId};
use proptest::prelude::*;

/// A random mutation script.
#[derive(Debug, Clone)]
enum Op {
    AddNode(u8),
    AddEdge(u8, u8),
    RemoveNode(u8),
    RemoveEdge(u8, u8),
    Relabel(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::AddNode),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::AddEdge(a, b)),
        any::<u8>().prop_map(Op::RemoveNode),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::RemoveEdge(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Relabel(a, b)),
    ]
}

fn nth_live(g: &Graph, k: u8) -> Option<NodeId> {
    let n = g.node_count();
    if n == 0 {
        None
    } else {
        g.node_ids().nth(k as usize % n)
    }
}

/// Checks every internal invariant reachable through the public API.
fn check_invariants(g: &Graph) {
    // Counts agree with iterator lengths.
    assert_eq!(g.node_ids().count(), g.node_count());
    assert_eq!(g.edge_ids().count(), g.edge_count());
    // Every live edge has live endpoints, and appears in its endpoints'
    // adjacency in the right multiplicity.
    for e in g.edge_ids() {
        let (a, b) = g.edge_endpoints(e).unwrap();
        assert!(g.contains_node(a) && g.contains_node(b));
        assert!(g.neighbors(a).any(|(v, ee)| v == b && ee == e));
        if !g.is_directed() {
            assert!(g.neighbors(b).any(|(v, ee)| v == a && ee == e));
        } else {
            assert!(g.in_neighbors(b).any(|(v, ee)| v == a && ee == e));
        }
    }
    // Degree sums: undirected Σdeg = 2m; directed Σout = Σin = m.
    let out_sum: usize = g.node_ids().map(|v| g.degree(v)).sum();
    if g.is_directed() {
        let in_sum: usize = g.node_ids().map(|v| g.in_degree(v)).sum();
        assert_eq!(out_sum, g.edge_count());
        assert_eq!(in_sum, g.edge_count());
    } else {
        assert_eq!(out_sum, 2 * g.edge_count());
    }
    // No adjacency entry references a removed edge or node.
    for v in g.node_ids() {
        for (w, e) in g.undirected_neighbors(v) {
            assert!(g.contains_node(w));
            assert!(g.contains_edge(e));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mutation_scripts_preserve_invariants(
        directed in any::<bool>(),
        ops in prop::collection::vec(op_strategy(), 0..60),
    ) {
        let mut g = if directed { Graph::directed() } else { Graph::undirected() };
        for op in ops {
            match op {
                Op::AddNode(l) => {
                    g.add_node(format!("L{}", l % 4));
                }
                Op::AddEdge(a, b) => {
                    if let (Some(a), Some(b)) = (nth_live(&g, a), nth_live(&g, b)) {
                        let _ = g.add_edge(a, b, "e");
                    }
                }
                Op::RemoveNode(a) => {
                    if let Some(a) = nth_live(&g, a) {
                        g.remove_node(a).unwrap();
                    }
                }
                Op::RemoveEdge(a, b) => {
                    if let (Some(a), Some(b)) = (nth_live(&g, a), nth_live(&g, b)) {
                        if let Some(e) = g.find_edge(a, b) {
                            g.remove_edge(e).unwrap();
                        }
                    }
                }
                Op::Relabel(a, l) => {
                    if let Some(a) = nth_live(&g, a) {
                        g.set_node_label(a, format!("R{}", l % 4)).unwrap();
                    }
                }
            }
            check_invariants(&g);
        }
        // Compaction preserves everything observable.
        let (dense, _) = g.compact();
        check_invariants(&dense);
        prop_assert_eq!(dense.node_count(), g.node_count());
        prop_assert_eq!(dense.edge_count(), g.edge_count());
        prop_assert_eq!(dense.label_histogram(), g.label_histogram());
    }

    #[test]
    fn edge_list_roundtrip_is_lossless_structurally(
        ops in prop::collection::vec(op_strategy(), 0..40),
    ) {
        let mut g = Graph::undirected();
        for op in ops {
            match op {
                Op::AddNode(l) => { g.add_node(format!("L{}", l % 4)); }
                Op::AddEdge(a, b) => {
                    if let (Some(a), Some(b)) = (nth_live(&g, a), nth_live(&g, b)) {
                        let _ = g.add_edge(a, b, "x");
                    }
                }
                _ => {}
            }
        }
        let text = io::to_edge_list(&g);
        let back = io::parse_edge_list(&text).unwrap();
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        prop_assert_eq!(back.label_histogram(), g.label_histogram());
        // And JSON is fully lossless.
        let j = io::from_json(&io::to_json(&g)).unwrap();
        prop_assert_eq!(j, g);
    }

    #[test]
    fn induced_subgraph_is_contained(
        n in 1usize..15,
        edges in prop::collection::vec((0usize..15, 0usize..15), 0..40),
        picks in prop::collection::vec(0usize..15, 0..10),
    ) {
        let mut g = Graph::undirected();
        let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("L{}", i % 3))).collect();
        for (a, b) in edges {
            if a < n && b < n && a != b {
                let _ = g.add_edge(ids[a], ids[b], "e");
            }
        }
        let chosen: Vec<NodeId> = picks.into_iter().filter(|&p| p < n).map(|p| ids[p]).collect();
        let (sub, mapping) = g.induced_subgraph(&chosen);
        // Every subgraph edge corresponds to an original edge between chosen nodes.
        prop_assert!(sub.node_count() <= chosen.len());
        for e in sub.edge_ids() {
            let (a, b) = sub.edge_endpoints(e).unwrap();
            // find preimages via mapping
            let pa = mapping.iter().position(|m| *m == Some(a)).unwrap();
            let pb = mapping.iter().position(|m| *m == Some(b)).unwrap();
            prop_assert!(g.has_edge(NodeId(pa as u32), NodeId(pb as u32))
                || g.has_edge(NodeId(pb as u32), NodeId(pa as u32)));
        }
    }
}
