//! Differential properties for the CSR kernels: on random directed and
//! undirected graphs with deletions, every kernel must be element-wise
//! equal (bit-for-bit for floats) to its adjacency-walking `*_reference`
//! oracle, with 1 worker and with 4 workers (tiny chunks force real
//! multi-chunk scheduling).

use chatgraph_graph::csr::CsrGraph;
use chatgraph_graph::kernels::{self, reference, KernelPolicy};
use chatgraph_graph::{EdgeId, Graph, NodeId};
use chatgraph_support::prop::{check, Config};
use chatgraph_support::prop_assert_eq;
use chatgraph_support::rng::{RngExt, StdRng};

#[derive(Debug)]
struct Case {
    g: Graph,
    /// Slot-indexed Dijkstra edge weights.
    weights: Vec<f64>,
    /// BFS/Dijkstra sources, including removed and out-of-range slots.
    starts: Vec<NodeId>,
}

fn random_case(rng: &mut StdRng, size: usize) -> Case {
    let directed: bool = rng.random();
    let mut g = if directed { Graph::directed() } else { Graph::undirected() };
    let n = rng.random_range(0..=(2 + 2 * size));
    for i in 0..n {
        g.add_node(["A", "B", "C"][i % 3]);
    }
    let attempts = rng.random_range(0..=3 * n.max(1));
    for _ in 0..attempts {
        let a = NodeId(rng.random_range(0..n.max(1)) as u32);
        let b = NodeId(rng.random_range(0..n.max(1)) as u32);
        // Self-loops / duplicates are rejected by the graph; that's fine.
        let _ = g.add_edge(a, b, "e");
    }
    // Deletions: tombstoned slots are what the dense remap exists for.
    for _ in 0..rng.random_range(0..=(n / 4 + 1)) {
        let _ = g.remove_node(NodeId(rng.random_range(0..n.max(1)) as u32));
    }
    for _ in 0..rng.random_range(0..=2) {
        let eb = g.edge_bound().max(1);
        let _ = g.remove_edge(EdgeId(rng.random_range(0..eb) as u32));
    }
    let weights = (0..g.edge_bound()).map(|_| rng.random_range(0..100) as f64 / 10.0).collect();
    let starts = (0..4).map(|_| NodeId(rng.random_range(0..(n + 2).max(1)) as u32)).collect();
    Case { g, weights, starts }
}

fn check_case(case: &Case) -> Result<(), String> {
    let g = &case.g;
    let csr = CsrGraph::build(g);
    for policy in [KernelPolicy::new(1, 7), KernelPolicy::new(4, 7)] {
        prop_assert_eq!(
            kernels::pagerank(&csr, 0.85, 30, &policy),
            reference::pagerank_reference(g, 0.85, 30)
        );
        let cc = kernels::connected_components(&csr, &policy);
        let cc_ref = reference::connected_components_reference(g);
        prop_assert_eq!(&cc.assignment, &cc_ref.assignment);
        prop_assert_eq!(cc.count, cc_ref.count);
        prop_assert_eq!(
            kernels::is_connected(&csr, &policy),
            reference::is_connected_reference(g)
        );
        prop_assert_eq!(
            kernels::triangle_count(&csr, &policy),
            reference::triangle_count_reference(g)
        );
        prop_assert_eq!(
            kernels::global_clustering_coefficient(&csr, &policy),
            reference::global_clustering_coefficient_reference(g)
        );
        prop_assert_eq!(kernels::diameter(&csr, &policy), reference::diameter_reference(g));
        prop_assert_eq!(
            kernels::average_path_length(&csr, &policy),
            reference::average_path_length_reference(g)
        );
        prop_assert_eq!(kernels::closeness(&csr, &policy), reference::closeness_reference(g));
        prop_assert_eq!(
            kernels::graph_stats(g, &csr, &policy),
            reference::graph_stats_reference(g)
        );
        for &start in &case.starts {
            for hops in [0usize, 2, usize::MAX] {
                prop_assert_eq!(
                    kernels::bfs_distances(&csr, start, hops, &policy),
                    reference::bfs_distances_reference(g, start, hops)
                );
            }
        }
    }
    prop_assert_eq!(kernels::degree_histogram(&csr), reference::degree_histogram_reference(g));
    for &start in &case.starts {
        prop_assert_eq!(
            kernels::dijkstra(&csr, &case.weights, start),
            reference::dijkstra_reference(g, start, |e| {
                case.weights.get(e.index()).copied().unwrap_or(1.0)
            })
        );
        prop_assert_eq!(kernels::eccentricity(&csr, start), reference::eccentricity_reference(g, start));
    }
    Ok(())
}

#[test]
fn csr_kernels_match_reference_oracles() {
    check(
        "csr_kernels_match_reference_oracles",
        Config::default().with_seed(11).with_cases(60).with_max_size(24),
        random_case,
        check_case,
    );
}
