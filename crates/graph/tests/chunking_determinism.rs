//! Chunking determinism: kernel results are a function of the graph only.
//!
//! The scheduler is free to pick any worker count, chunk size, or chunking
//! strategy ([`ChunkStrategy::Fixed`] vs degree-aware
//! [`ChunkStrategy::DegreeWeighted`]) — none of them may change a single
//! bit of any kernel's output. This pins the property the cost model's
//! sequential-vs-parallel decision relies on: flipping `par_kernel` is a
//! pure performance knob, never a semantics knob. It also pins the
//! cache-blocked pagerank pull against the plain pull.

use chatgraph_graph::csr::CsrGraph;
use chatgraph_graph::generators::{
    knowledge_graph, social_network, KgParams, SocialParams,
};
use chatgraph_graph::kernels::{self, ChunkStrategy, KernelPolicy};
use chatgraph_graph::Graph;

fn variants() -> Vec<KernelPolicy> {
    let mut out = Vec::new();
    for workers in [1usize, 2, 4, 7] {
        for chunk in [1usize, 64, 1024] {
            for strategy in [ChunkStrategy::Fixed, ChunkStrategy::DegreeWeighted] {
                out.push(KernelPolicy::new(workers, chunk).with_strategy(strategy));
            }
        }
    }
    out
}

fn assert_all_variants_agree(g: &Graph) {
    let csr = CsrGraph::build(g);
    let baseline = KernelPolicy::sequential();
    let pr = kernels::pagerank(&csr, 0.85, 15, &baseline);
    let cc = kernels::connected_components(&csr, &baseline);
    let tri = kernels::triangle_count(&csr, &baseline);
    let clu = kernels::global_clustering_coefficient(&csr, &baseline);
    let start = g.node_ids().next().unwrap();
    let bfs = kernels::bfs_distances(&csr, start, usize::MAX, &baseline);
    for policy in variants() {
        let tag = format!(
            "{}w chunk={} {:?}",
            policy.workers, policy.chunk, policy.strategy
        );
        assert_eq!(kernels::pagerank(&csr, 0.85, 15, &policy), pr, "pagerank @ {tag}");
        assert_eq!(
            kernels::pagerank_blocked(&csr, 0.85, 15, &policy),
            pr,
            "blocked pagerank @ {tag}"
        );
        assert_eq!(
            kernels::connected_components(&csr, &policy).assignment,
            cc.assignment,
            "components @ {tag}"
        );
        assert_eq!(kernels::triangle_count(&csr, &policy), tri, "triangles @ {tag}");
        assert_eq!(
            kernels::global_clustering_coefficient(&csr, &policy).to_bits(),
            clu.to_bits(),
            "clustering @ {tag}"
        );
        assert_eq!(
            kernels::bfs_distances(&csr, start, usize::MAX, &policy),
            bfs,
            "bfs @ {tag}"
        );
    }
}

#[test]
fn social_kernels_are_chunking_invariant() {
    assert_all_variants_agree(&social_network(&SocialParams::default(), 11));
}

#[test]
fn sized_social_kernels_are_chunking_invariant() {
    // Large enough that every variant actually splits into many chunks and
    // the degree-weighted planner produces uneven ranges.
    assert_all_variants_agree(&social_network(&SocialParams::sized(4_000), 11));
}

#[test]
fn kg_kernels_are_chunking_invariant_directed() {
    assert_all_variants_agree(&knowledge_graph(&KgParams::default(), 13));
}

#[test]
fn blocked_pull_matches_plain_pull_past_the_auto_threshold() {
    // `pagerank` flips to the blocked pull automatically on large dense
    // graphs; on small ones the two code paths are distinct — pin their
    // bit-identity explicitly at a size where blocking spans several
    // source blocks per chunk.
    let g = social_network(&SocialParams::sized(8_000), 3);
    let csr = CsrGraph::build(&g);
    for workers in [1usize, 4] {
        let policy = KernelPolicy::new(workers, 256).with_strategy(ChunkStrategy::DegreeWeighted);
        let plain = kernels::pagerank(&csr, 0.9, 10, &policy);
        let blocked = kernels::pagerank_blocked(&csr, 0.9, 10, &policy);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&plain), bits(&blocked), "{workers}w");
    }
}
