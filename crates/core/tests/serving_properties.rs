//! Differential and isolation properties of the multi-tenant session
//! server (DESIGN.md §12).
//!
//! * **Serving determinism** — N concurrent tenants on a shared worker
//!   pool with shared cross-session caches produce bit-identical replies
//!   to the same N sessions run solo, at every pool width and regardless
//!   of cache warmth.
//! * **Tenant isolation** — a panicked tenant poisons only itself;
//!   degraded findings from one tenant's fault plan never appear in
//!   another tenant's replies.

use chatgraph_apis::{
    ApiChain, ChainEvent, CollectingMonitor, FailurePolicy, FaultPlan, Value,
};
use chatgraph_core::prompt::Prompt;
use chatgraph_core::serve::{Reply, Request, ServeConfig, ServeError, SessionServer};
use chatgraph_core::session::{ChatSession, SessionCore};
use chatgraph_core::ChatGraphConfig;
use chatgraph_graph::generators::{social_network, SocialParams};
use chatgraph_graph::Graph;
use std::sync::{Arc, OnceLock};

/// One finetuned core per test binary — bootstrap is the expensive part.
fn shared_core() -> Arc<SessionCore> {
    static CORE: OnceLock<Arc<SessionCore>> = OnceLock::new();
    Arc::clone(CORE.get_or_init(|| {
        let (core, _) = SessionCore::bootstrap(ChatGraphConfig::default(), 192)
            .expect("default config is valid");
        core
    }))
}

fn tenant_graph(i: usize) -> Graph {
    // Tenants i and i+3 share a generator seed, so their graphs are
    // identical by content: exactly the cross-tenant cache-sharing case.
    social_network(&SocialParams::default(), (i % 3) as u64 + 7)
}

fn tenant_requests() -> Vec<Request> {
    vec![
        Request::ChatAndRun(Prompt::text(
            "detect the communities of this social network",
        )),
        Request::Execute(ApiChain::from_names(["largest_component", "node_count"])),
        Request::Chat(Prompt::text("write a brief report for G")),
    ]
}

/// A reply, normalized for comparison: everything user-visible plus the
/// core monitor events. Non-core events (timings, memo lookups, CSR
/// builds) legitimately differ with cache warmth and are excluded.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    Chat {
        message: String,
        chain: String,
    },
    Exec {
        chain: String,
        result: Result<Value, String>,
        core_events: Vec<ChainEvent>,
    },
}

fn exec_outcome(
    chain: &ApiChain,
    result: &Result<Value, chatgraph_apis::ChainError>,
    events: &[ChainEvent],
) -> Outcome {
    Outcome::Exec {
        chain: chain.to_string(),
        result: result.clone().map_err(|e| e.to_string()),
        core_events: events.iter().filter(|e| e.is_core()).cloned().collect(),
    }
}

fn reply_outcomes(reply: &Reply) -> Vec<Outcome> {
    match reply {
        Reply::Chat(r) => vec![Outcome::Chat {
            message: r.message.clone(),
            chain: r.chain.to_string(),
        }],
        Reply::Execution(e) => vec![exec_outcome(&e.chain, &e.result, &e.events)],
        Reply::ChatAndRun(r, e) => {
            let mut out = vec![Outcome::Chat {
                message: r.message.clone(),
                chain: r.chain.to_string(),
            }];
            if let Some(e) = e {
                out.push(exec_outcome(&e.chain, &e.result, &e.events));
            }
            out
        }
    }
}

/// Runs one request directly on a solo session, mirroring the server's
/// request semantics.
fn run_solo(session: &mut ChatSession, request: &Request) -> Vec<Outcome> {
    let exec = |session: &mut ChatSession, chain: &ApiChain| {
        let mut mon = CollectingMonitor::new();
        let result = session.run_chain(chain, &mut mon);
        exec_outcome(chain, &result, &mon.events)
    };
    match request {
        Request::Chat(p) => {
            let r = session.send(p.clone());
            vec![Outcome::Chat {
                message: r.message.clone(),
                chain: r.chain.to_string(),
            }]
        }
        Request::Execute(chain) => vec![exec(session, chain)],
        Request::ChatAndRun(p) => {
            let r = session.send(p.clone());
            let mut out = vec![Outcome::Chat {
                message: r.message.clone(),
                chain: r.chain.to_string(),
            }];
            if !r.chain.is_empty() {
                let chain = r.chain.clone();
                out.push(exec(session, &chain));
            }
            out
        }
    }
}

/// The solo reference: each tenant on its own fresh session, fully
/// sequential, private caches — run `passes` times like the server is.
fn solo_reference(n: usize, passes: usize) -> Vec<Vec<Outcome>> {
    (0..n)
        .map(|i| {
            let mut session = ChatSession::from_core(shared_core());
            session.set_graph(tenant_graph(i));
            let mut outcomes = Vec::new();
            for _ in 0..passes {
                for req in tenant_requests() {
                    outcomes.extend(run_solo(&mut session, &req));
                }
            }
            outcomes
        })
        .collect()
}

/// N tenants on one shared server, `passes` rounds of the workload; the
/// second round hits a warm shared memo.
fn serve_shared(n: usize, pool_workers: usize, passes: usize) -> (Vec<Vec<Outcome>>, u64) {
    let server = SessionServer::from_core(
        shared_core(),
        ServeConfig {
            pool_workers,
            ..ServeConfig::default()
        },
    )
    .expect("valid serve config");
    let tenants: Vec<_> = (0..n)
        .map(|i| {
            let t = server.open_session().expect("capacity");
            server
                .with_session(t, |s| s.set_graph(tenant_graph(i)))
                .expect("fresh tenant");
            t
        })
        .collect();
    let mut outcomes: Vec<Vec<Outcome>> = vec![Vec::new(); n];
    for _ in 0..passes {
        for t in &tenants {
            for req in tenant_requests() {
                server.submit(*t, req).expect("queue has room");
            }
        }
        for done in server.drain() {
            let reply = done.reply.expect("no serving errors in this workload");
            let idx = tenants
                .iter()
                .position(|t| *t == done.tenant)
                .expect("known tenant");
            outcomes[idx].extend(reply_outcomes(&reply));
        }
    }
    (outcomes, server.memo_stats().hits)
}

#[test]
fn shared_pool_replies_match_solo_sessions_at_every_width() {
    const N: usize = 6;
    // Two passes: pass 1 runs against a cold shared memo, pass 2 against a
    // warm one. The solo reference runs the same two passes on private
    // caches; replies must be identical either way.
    let solo = solo_reference(N, 2);
    for workers in [1, 2, 4] {
        let (shared, _) = serve_shared(N, workers, 2);
        for i in 0..N {
            assert_eq!(
                shared[i], solo[i],
                "tenant {i} diverged from its solo run at pool_workers={workers}"
            );
        }
    }
}

#[test]
fn identical_tenants_hit_the_shared_memo_cross_session() {
    // Tenants 0..3 and 3..6 carry content-identical graphs and submit
    // identical chains with no within-chain or cross-pass repetition in
    // pass 1, so first-pass hits can only come from another tenant.
    let (_, hits) = serve_shared(6, 2, 1);
    assert!(hits > 0, "expected cross-session memo hits, got none");
}

#[test]
fn poisoned_tenant_stays_poisoned_and_others_keep_serving() {
    let server = Arc::new(
        SessionServer::from_core(shared_core(), ServeConfig::default()).expect("valid config"),
    );
    let poisoned = server.open_session().unwrap();
    let healthy = server.open_session().unwrap();
    for (i, t) in [(0, poisoned), (1, healthy)] {
        server.with_session(t, |s| s.set_graph(tenant_graph(i))).unwrap();
    }
    // Panic while holding the poisoned tenant's session lock, on another
    // thread so the panic is contained by the thread boundary.
    let crashed = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = server.with_session(poisoned, |s| {
                s.set_graph(Graph::undirected());
                panic!("tenant crashed mid-mutation");
            });
        })
        .join()
    };
    assert!(crashed.is_err(), "the thread must have panicked");
    // The poisoned tenant reports SessionPoisoned forever after — its
    // half-mutated session is never recovered (the old global singleton
    // called `into_inner` here and leaked the mutation).
    assert_eq!(
        server.with_session(poisoned, |_| ()).unwrap_err(),
        ServeError::SessionPoisoned
    );
    server
        .submit(poisoned, Request::Execute(ApiChain::from_names(["node_count"])))
        .expect("submission is queue-level, poisoning surfaces at drain");
    server
        .submit(healthy, Request::Execute(ApiChain::from_names(["node_count"])))
        .unwrap();
    let completed = server.drain();
    assert_eq!(completed.len(), 2);
    for c in completed {
        if c.tenant == poisoned {
            assert_eq!(c.reply.unwrap_err(), ServeError::SessionPoisoned);
        } else {
            let Ok(Reply::Execution(e)) = c.reply else {
                panic!("healthy tenant must execute")
            };
            let nodes = e.result.unwrap().as_number().unwrap();
            assert_eq!(nodes as usize, tenant_graph(1).node_count());
        }
    }
}

#[test]
fn degraded_findings_never_cross_tenants() {
    let server =
        SessionServer::from_core(shared_core(), ServeConfig::default()).expect("valid config");
    let faulty = server.open_session().unwrap();
    let clean = server.open_session().unwrap();
    // Distinct generator seeds => distinct graph fingerprints, so the
    // faulty tenant cannot dodge its injected faults via memo hits on the
    // clean tenant's results.
    server.with_session(faulty, |s| {
        s.set_graph(tenant_graph(0));
        s.set_fault_plan(Some(FaultPlan::new(5).with_error_rate(1.0)));
        s.set_failure_policy(FailurePolicy::SkipDegraded);
    })
    .unwrap();
    server.with_session(clean, |s| s.set_graph(tenant_graph(1))).unwrap();
    // Step 0's output is dead (node_count's number feeds nothing), so the
    // faulty tenant degrades it; the final load-bearing step aborts.
    let chain = ApiChain::from_names(["node_count", "triangle_count"]);
    server.submit(faulty, Request::Execute(chain.clone())).unwrap();
    server.submit(clean, Request::Execute(chain.clone())).unwrap();
    let completed = server.drain();
    assert_eq!(completed.len(), 2);
    for c in completed {
        let Ok(Reply::Execution(e)) = &c.reply else {
            panic!("both tenants reach execution: {:?}", c.reply)
        };
        let degraded = e
            .events
            .iter()
            .any(|ev| matches!(ev, ChainEvent::DegradedResult { .. }));
        if c.tenant == faulty {
            assert!(degraded, "fault plan must degrade the dead step");
            assert!(e.result.is_err(), "the load-bearing step must abort");
        } else {
            assert!(!degraded, "degraded findings leaked into the clean tenant");
            assert!(e.result.is_ok(), "the clean tenant must be unaffected");
            // And its report-visible finding stream carries no degraded
            // markers either.
            for ev in &e.events {
                if let ChainEvent::StepFinished { summary, .. } = ev {
                    assert!(!summary.contains("degraded:"), "{summary}");
                }
            }
        }
    }
}
