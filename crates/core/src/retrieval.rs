//! The API retrieval module (paper §II-A + §II-D).
//!
//! API descriptions are embedded once; prompts are embedded per query, and
//! the τ-MG proximity graph returns the most similar APIs. A brute-force
//! path is kept alongside for the E9 accuracy/efficiency comparison.

use crate::config::RetrievalConfig;
use chatgraph_ann::{AnnIndex, FlatIndex, SearchStats, TauMg};
use chatgraph_apis::ApiRegistry;
use chatgraph_embed::{Embedder, Metric, Vector};

/// One retrieval hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrieved {
    /// API name.
    pub name: String,
    /// Cosine distance of its description to the prompt.
    pub distance: f32,
}

/// Embeds and indexes the API catalogue.
#[derive(Debug)]
pub struct ApiRetriever {
    embedder: Embedder,
    index: TauMg,
    flat: FlatIndex,
    names: Vec<String>,
    top_k: usize,
}

impl ApiRetriever {
    /// Builds the retriever over a registry.
    pub fn build(registry: &ApiRegistry, config: &RetrievalConfig) -> Self {
        let mut embedder = Embedder::new(config.embedder.clone());
        let texts: Vec<String> = registry
            .descriptors()
            .iter()
            .map(|d| d.retrieval_text())
            .collect();
        embedder.fit(texts.iter());
        let vectors: Vec<Vector> = texts.iter().map(|t| embedder.embed(t)).collect();
        let names: Vec<String> = registry
            .descriptors()
            .iter()
            .map(|d| d.name.clone())
            .collect();
        let index = TauMg::build(vectors.clone(), config.taumg_params());
        let flat = FlatIndex::build(vectors, Metric::Cosine);
        ApiRetriever {
            embedder,
            index,
            flat,
            names,
            top_k: config.top_k,
        }
    }

    /// Number of indexed APIs.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no APIs are indexed.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The default `k` used by [`ApiRetriever::retrieve`].
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Embeds a prompt text.
    pub fn embed(&self, text: &str) -> Vector {
        self.embedder.embed(text)
    }

    /// Retrieves the `k` most relevant APIs via the τ-MG index.
    pub fn retrieve_k(&self, text: &str, k: usize, stats: &mut SearchStats) -> Vec<Retrieved> {
        let q = self.embedder.embed(text);
        self.index
            .search(&q, k, stats)
            .into_iter()
            .map(|(i, d)| Retrieved {
                name: self.names[i].clone(),
                distance: d,
            })
            .collect()
    }

    /// Retrieves with the configured default `k`.
    pub fn retrieve(&self, text: &str) -> Vec<Retrieved> {
        let mut stats = SearchStats::default();
        self.retrieve_k(text, self.top_k, &mut stats)
    }

    /// Exact (brute-force) retrieval, for accuracy comparisons.
    pub fn retrieve_exact(&self, text: &str, k: usize, stats: &mut SearchStats) -> Vec<Retrieved> {
        let q = self.embedder.embed(text);
        self.flat
            .search(&q, k, stats)
            .into_iter()
            .map(|(i, d)| Retrieved {
                name: self.names[i].clone(),
                distance: d,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RetrievalConfig;
    use chatgraph_apis::registry;

    fn retriever() -> ApiRetriever {
        ApiRetriever::build(&registry::standard(), &RetrievalConfig::default())
    }

    #[test]
    fn indexes_every_api() {
        let r = retriever();
        assert_eq!(r.len(), registry::standard().len());
    }

    #[test]
    fn community_question_retrieves_community_api() {
        let r = retriever();
        let hits = r.retrieve("what communities are in this social network");
        let names: Vec<&str> = hits.iter().map(|h| h.name.as_str()).collect();
        assert!(
            names.contains(&"detect_communities") || names.contains(&"community_count"),
            "hits: {names:?}"
        );
    }

    #[test]
    fn toxicity_question_retrieves_toxicity_api() {
        let r = retriever();
        let hits = r.retrieve("predict how toxic this chemical molecule is");
        assert!(
            hits.iter().take(3).any(|h| h.name == "predict_toxicity"),
            "hits: {:?}",
            hits.iter().map(|h| &h.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ann_matches_exact_retrieval_closely() {
        let r = retriever();
        let queries = [
            "find similar molecules in the database",
            "clean the knowledge graph",
            "how many nodes does the graph have",
            "who are the influencers",
        ];
        for q in queries {
            let mut s1 = SearchStats::default();
            let mut s2 = SearchStats::default();
            let ann: Vec<String> = r.retrieve_k(q, 5, &mut s1).into_iter().map(|h| h.name).collect();
            let exact: Vec<String> = r.retrieve_exact(q, 5, &mut s2).into_iter().map(|h| h.name).collect();
            let overlap = ann.iter().filter(|n| exact.contains(n)).count();
            assert!(overlap >= 4, "query {q:?}: ann {ann:?} vs exact {exact:?}");
        }
    }

    #[test]
    fn results_sorted_by_distance() {
        let r = retriever();
        let hits = r.retrieve("report about the graph");
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        assert_eq!(hits.len(), r.top_k());
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use crate::config::RetrievalConfig;
    use chatgraph_apis::registry;

    #[test]
    fn search_stats_are_populated() {
        let r = ApiRetriever::build(&registry::standard(), &RetrievalConfig::default());
        let mut stats = SearchStats::default();
        let hits = r.retrieve_k("count the rings of the molecule", 3, &mut stats);
        assert_eq!(hits.len(), 3);
        assert!(stats.distance_computations > 0);
        let mut exact_stats = SearchStats::default();
        let exact = r.retrieve_exact("count the rings of the molecule", 3, &mut exact_stats);
        assert_eq!(exact_stats.distance_computations, r.len());
        assert_eq!(exact.len(), 3);
    }

    #[test]
    fn embed_is_consistent_with_retrieval_geometry() {
        let r = ApiRetriever::build(&registry::standard(), &RetrievalConfig::default());
        let v = r.embed("detect communities");
        assert!((v.norm() - 1.0).abs() < 1e-4);
    }
}
