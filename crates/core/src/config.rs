//! Framework configuration — the runtime knobs of the paper's Fig. 3.

use chatgraph_ann::TauMgParams;
use chatgraph_apis::supervisor::{FailurePolicy, SupervisorConfig};
use chatgraph_embed::EmbedderConfig;
use chatgraph_llm::{FeatureConfig, SamplingConfig, TrainConfig};
use chatgraph_sequencer::CoverParams;

/// Retrieval-module settings (§II-A, §II-D).
#[derive(Debug, Clone, PartialEq)]
pub struct RetrievalConfig {
    /// Embedding settings for API descriptions and prompts.
    pub embedder: EmbedderConfig,
    /// τ of the τ-MG index.
    pub tau: f32,
    /// Max out-degree of the τ-MG.
    pub max_degree: usize,
    /// Construction beam width.
    pub ef_construction: usize,
    /// Query beam width.
    pub ef_search: usize,
    /// Number of APIs retrieved per prompt.
    pub top_k: usize,
}

chatgraph_support::impl_json_struct!(RetrievalConfig {
    embedder,
    tau,
    max_degree,
    ef_construction,
    ef_search,
    top_k,
});

impl Default for RetrievalConfig {
    fn default() -> Self {
        RetrievalConfig {
            embedder: EmbedderConfig::default(),
            tau: 0.01,
            max_degree: 8,
            ef_construction: 32,
            ef_search: 24,
            top_k: 10,
        }
    }
}

impl RetrievalConfig {
    /// The τ-MG parameters implied by this config (cosine metric — the
    /// embeddings are unit-norm).
    pub fn taumg_params(&self) -> TauMgParams {
        TauMgParams {
            tau: self.tau,
            max_degree: self.max_degree,
            ef_construction: self.ef_construction,
            ef_search: self.ef_search,
            metric: chatgraph_embed::Metric::Cosine,
        }
    }
}

/// Finetuning-module settings (§II-C).
#[derive(Debug, Clone, PartialEq)]
pub struct FinetuneConfig {
    /// α of the node matching-based loss (Definition 1).
    pub alpha: f64,
    /// Random rollouts `r` per candidate during search-based prediction
    /// (0 = plain teacher forcing).
    pub rollouts: usize,
    /// Maximum chain length during rollouts and decoding.
    pub max_chain_len: usize,
    /// SGD settings.
    pub train: TrainConfig,
}

chatgraph_support::impl_json_struct!(FinetuneConfig {
    alpha,
    rollouts,
    max_chain_len,
    train,
});

impl Default for FinetuneConfig {
    fn default() -> Self {
        FinetuneConfig {
            alpha: 0.5,
            rollouts: 3,
            max_chain_len: 6,
            train: TrainConfig {
                epochs: 14,
                ..TrainConfig::default()
            },
        }
    }
}

/// Plan-execution settings: how [`chatgraph_apis::Scheduler`] runs a
/// confirmed chain (DESIGN.md §9, §11).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads for parallel plan segments. 1 reproduces the
    /// sequential executor exactly; more workers never change the result
    /// (the determinism contract), only the wall-clock time.
    pub workers: usize,
    /// Capacity of the bounded pure-step memo cache (0 disables caching).
    pub memo_capacity: usize,
    /// Work-chunk size (nodes or edges) for the parallel CSR graph kernels
    /// (DESIGN.md §10). Chunk boundaries are fixed, so results never depend
    /// on the worker count.
    pub kernel_chunk: usize,
    /// Per-step deadline in milliseconds (DESIGN.md §11); 0 disables
    /// deadlines. Kernels observe the deadline cooperatively at chunk
    /// boundaries.
    pub step_deadline_ms: u64,
    /// Supervisor retries for transient failures of retryable steps.
    pub max_retries: usize,
    /// What the supervisor does when a step exhausts its attempts.
    pub failure_policy: FailurePolicy,
}

chatgraph_support::impl_json_struct!(ExecConfig {
    workers,
    memo_capacity,
    kernel_chunk,
    step_deadline_ms,
    max_retries,
    failure_policy,
});

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            workers: 1,
            memo_capacity: 64,
            kernel_chunk: 1024,
            step_deadline_ms: 0,
            max_retries: 2,
            failure_policy: FailurePolicy::Abort,
        }
    }
}

impl ExecConfig {
    /// The supervisor configuration implied by this config (no fault plan —
    /// fault injection is armed separately, by tests and the REPL).
    pub fn supervisor_config(&self) -> SupervisorConfig {
        SupervisorConfig {
            step_deadline_ms: self.step_deadline_ms,
            max_retries: self.max_retries,
            failure_policy: self.failure_policy,
            ..SupervisorConfig::default()
        }
    }

    /// The scheduler profile implied by this config — the single path every
    /// [`chatgraph_apis::Scheduler`] construction goes through
    /// (`Scheduler::from_exec_config`), so a new exec knob added here is
    /// picked up by bootstrap, saved-model restore, and the session server
    /// alike.
    pub fn profile(&self) -> chatgraph_apis::ExecProfile {
        chatgraph_apis::ExecProfile {
            workers: self.workers,
            memo_capacity: self.memo_capacity,
            kernel_chunk: self.kernel_chunk,
            supervisor: self.supervisor_config(),
        }
    }
}

/// Durable-store settings: whether (and where) the session's graph is
/// persisted through the single-file WAL store (DESIGN.md §16).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Store file path. Empty disables durability (the default): the
    /// session stays purely in-memory.
    pub path: String,
    /// Checkpoint (compact the WAL) after this many durable commits.
    /// 0 disables automatic checkpointing.
    pub checkpoint_every: u64,
}

chatgraph_support::impl_json_struct!(StoreConfig { path, checkpoint_every });

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            path: String::new(),
            checkpoint_every: 64,
        }
    }
}

impl StoreConfig {
    /// Whether durability is enabled.
    pub fn enabled(&self) -> bool {
        !self.path.is_empty()
    }
}

/// The complete ChatGraph configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ChatGraphConfig {
    /// Graph sequentialiser settings (path length ℓ, multi-level flag).
    pub cover: SequencerConfig,
    /// Retrieval module.
    pub retrieval: RetrievalConfig,
    /// LLM feature space.
    pub features: FeatureConfig,
    /// Decoding settings (temperature, top-k).
    pub sampling: SamplingConfig,
    /// Finetuning module.
    pub finetune: FinetuneConfig,
    /// Chain-execution scheduler.
    pub exec: ExecConfig,
    /// Durable graph store.
    pub store: StoreConfig,
    /// Global seed.
    pub seed: u64,
}

chatgraph_support::impl_json_struct!(ChatGraphConfig {
    cover,
    retrieval,
    features,
    sampling,
    finetune,
    exec,
    store,
    seed,
});

/// Serialisable mirror of [`CoverParams`] plus the multi-level switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequencerConfig {
    /// Maximum path length ℓ.
    pub max_length: usize,
    /// Sequentialise the motif super-graph as well.
    pub multi_level: bool,
}

chatgraph_support::impl_json_struct!(SequencerConfig { max_length, multi_level });

impl Default for SequencerConfig {
    fn default() -> Self {
        SequencerConfig {
            max_length: 2,
            multi_level: true,
        }
    }
}

impl SequencerConfig {
    /// The path-cover parameters implied by this config.
    pub fn cover_params(&self) -> CoverParams {
        CoverParams {
            max_length: self.max_length,
            dedup_singletons: true,
        }
    }
}

impl Default for ChatGraphConfig {
    fn default() -> Self {
        ChatGraphConfig {
            cover: SequencerConfig::default(),
            retrieval: RetrievalConfig::default(),
            features: FeatureConfig::default(),
            sampling: SamplingConfig::default(),
            finetune: FinetuneConfig::default(),
            exec: ExecConfig::default(),
            store: StoreConfig::default(),
            seed: 42,
        }
    }
}

impl ChatGraphConfig {
    /// Validates every knob, returning human-readable problems.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        if self.retrieval.tau < 0.0 {
            problems.push("retrieval.tau must be >= 0".to_owned());
        }
        if self.retrieval.max_degree == 0 {
            problems.push("retrieval.max_degree must be >= 1".to_owned());
        }
        if self.retrieval.top_k == 0 {
            problems.push("retrieval.top_k must be >= 1".to_owned());
        }
        if self.retrieval.embedder.dim == 0 {
            problems.push("retrieval.embedder.dim must be >= 1".to_owned());
        }
        if self.features.dim == 0 {
            problems.push("features.dim must be >= 1".to_owned());
        }
        if self.finetune.alpha < 0.0 {
            problems.push("finetune.alpha must be >= 0".to_owned());
        }
        if self.finetune.max_chain_len == 0 {
            problems.push("finetune.max_chain_len must be >= 1".to_owned());
        }
        if self.finetune.train.learning_rate <= 0.0 || self.finetune.train.learning_rate.is_nan() {
            problems.push("finetune.train.learning_rate must be > 0".to_owned());
        }
        if self.sampling.temperature < 0.0 {
            problems.push("sampling.temperature must be >= 0".to_owned());
        }
        if self.exec.workers == 0 {
            problems.push("exec.workers must be >= 1".to_owned());
        }
        if self.exec.kernel_chunk == 0 {
            problems.push("exec.kernel_chunk must be >= 1".to_owned());
        }
        if self.exec.max_retries > 16 {
            problems.push("exec.max_retries must be <= 16 (bounded retry storms)".to_owned());
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ChatGraphConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_knobs_are_each_reported() {
        let mut c = ChatGraphConfig::default();
        c.retrieval.tau = -1.0;
        c.retrieval.top_k = 0;
        c.finetune.alpha = -0.1;
        c.finetune.train.learning_rate = 0.0;
        let problems = c.validate().unwrap_err();
        assert_eq!(problems.len(), 4, "{problems:?}");
    }

    #[test]
    fn derived_param_structs_match() {
        let c = ChatGraphConfig::default();
        assert_eq!(c.cover.cover_params().max_length, 2);
        let t = c.retrieval.taumg_params();
        assert_eq!(t.metric, chatgraph_embed::Metric::Cosine);
        assert_eq!(t.max_degree, 8);
    }

    #[test]
    fn zero_workers_is_rejected() {
        let mut c = ChatGraphConfig::default();
        c.exec.workers = 0;
        c.exec.kernel_chunk = 0;
        let problems = c.validate().unwrap_err();
        assert!(problems.iter().any(|p| p.contains("exec.workers")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("exec.kernel_chunk")), "{problems:?}");
        // memo_capacity 0 is legal: it just disables the cache.
        let mut c = ChatGraphConfig::default();
        c.exec.memo_capacity = 0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn supervisor_knobs_validate_and_map() {
        let mut c = ChatGraphConfig::default();
        c.exec.max_retries = 17;
        let problems = c.validate().unwrap_err();
        assert!(problems.iter().any(|p| p.contains("exec.max_retries")), "{problems:?}");
        let mut c = ChatGraphConfig::default();
        c.exec.step_deadline_ms = 250;
        c.exec.max_retries = 3;
        c.exec.failure_policy = FailurePolicy::SkipDegraded;
        assert!(c.validate().is_ok());
        let sup = c.exec.supervisor_config();
        assert_eq!(sup.step_deadline_ms, 250);
        assert_eq!(sup.max_retries, 3);
        assert_eq!(sup.failure_policy, FailurePolicy::SkipDegraded);
        assert!(sup.faults.is_none(), "config never arms fault injection");
        // Passive defaults: the supervisor cannot alter fault-free runs.
        assert!(!ChatGraphConfig::default().exec.supervisor_config().is_armed());
    }

    #[test]
    fn json_roundtrip() {
        let c = ChatGraphConfig::default();
        let s = chatgraph_support::json::to_string(&c);
        assert_eq!(chatgraph_support::json::from_str::<ChatGraphConfig>(&s).unwrap(), c);
    }
}
