//! Multi-tenant session server: hundreds of concurrent [`ChatSession`]s
//! over one shared [`SessionCore`], one shared worker pool, and shared
//! cross-session caches (DESIGN.md §12).
//!
//! ## Tenancy model
//!
//! One [`SessionServer`] owns one finetuned core. Each tenant holds a
//! [`TenantId`] naming a private [`ChatSession`] (graph, transcript,
//! scheduler) behind its own mutex. Three things are shared:
//!
//! * the **core** — config, registry, retriever, finetuned model; all
//!   read-only after bootstrap;
//! * the **step memo** — one [`StepMemo`] serving every tenant's pure-step
//!   memoization. Sound across tenants because keys fingerprint the api,
//!   parameters, seed, graph content and inputs; a hit from another
//!   tenant's identical sub-chain is indistinguishable from one's own;
//! * the **CSR cache** — one [`CsrCache`] of immutable graph snapshots,
//!   keyed by `Arc` pointer identity. Graph replacement and mutation both
//!   allocate a fresh `Arc` and evict the dead epoch
//!   ([`ChatSession::graph_epoch`]), so a stale snapshot can never be
//!   served.
//!
//! ## Fairness and the pool
//!
//! Requests are submitted per tenant ([`SessionServer::submit`]) into
//! bounded FIFO queues, and executed by [`SessionServer::drain`] on a
//! scoped pool of `pool_workers` threads. Workers claim tenants round-robin
//! from a shared cursor, at most one in-flight *claim* per tenant. Each
//! claim takes up to [`ServeConfig::claim_batch`] requests from the
//! tenant's queue in one queue-lock acquisition and runs them FIFO under
//! one session-lock acquisition, amortising the per-request locking. The
//! fairness invariant is unchanged: the batch bound means a tenant with a
//! deep queue holds a worker for at most `claim_batch` requests before the
//! worker's cursor moves on, and per-tenant order is preserved because a
//! tenant's requests only ever run inside its single in-flight claim.
//! Admission control is two-level — [`ServeError::AtCapacity`] at session
//! open, [`ServeError::QueueFull`] at submit.
//!
//! ## Poisoning
//!
//! A panicked tenant poisons only its own session mutex; the server reports
//! [`ServeError::SessionPoisoned`] for that tenant ever after and the
//! others are untouched. The server never calls `into_inner` on a poisoned
//! session — recovering a half-mutated session is precisely the aliasing
//! bug the old process-global singleton had.

use crate::config::ChatGraphConfig;
use crate::finetune::FinetuneReport;
use crate::prompt::Prompt;
use crate::session::{ChatResponse, ChatSession, SessionCore, SessionError};
use chatgraph_apis::{
    ApiChain, ChainError, ChainEvent, CollectingMonitor, MemoStats, StepMemo, Value,
};
use chatgraph_graph::csr::CsrCache;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Opaque per-tenant handle issued by [`SessionServer::open_session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(u64);

impl TenantId {
    /// The raw tenant number (stable for the server's lifetime).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Server construction and serving errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// `max_sessions` tenants are already open.
    AtCapacity,
    /// The tenant id was never issued or its session was closed.
    UnknownTenant,
    /// The tenant's request queue is at `queue_depth`.
    QueueFull,
    /// The tenant's session mutex is poisoned (a panic escaped while it
    /// was held). The tenant is dead; other tenants are unaffected.
    SessionPoisoned,
    /// The serve configuration failed [`ServeConfig::validate`].
    InvalidServeConfig(Vec<String>),
    /// Building the shared core failed.
    Session(SessionError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::AtCapacity => write!(f, "server is at max_sessions capacity"),
            ServeError::UnknownTenant => write!(f, "unknown or closed tenant"),
            ServeError::QueueFull => write!(f, "tenant request queue is full"),
            ServeError::SessionPoisoned => {
                write!(f, "tenant session is poisoned by an earlier panic")
            }
            ServeError::InvalidServeConfig(problems) => {
                write!(f, "invalid serve config: {}", problems.join("; "))
            }
            ServeError::Session(e) => write!(f, "session error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SessionError> for ServeError {
    fn from(e: SessionError) -> Self {
        ServeError::Session(e)
    }
}

/// Serving knobs, orthogonal to the per-session [`crate::ExecConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Admission-control ceiling on concurrently open sessions.
    pub max_sessions: usize,
    /// Bound on each tenant's pending-request queue.
    pub queue_depth: usize,
    /// Worker threads in the shared drain pool.
    pub pool_workers: usize,
    /// Route every tenant's pure-step memo through one shared cache.
    pub shared_memo: bool,
    /// Capacity of the shared step memo (entries).
    pub memo_capacity: usize,
    /// Route every tenant's CSR snapshots through one shared cache.
    pub shared_csr: bool,
    /// Capacity of the shared CSR cache (snapshots).
    pub csr_capacity: usize,
    /// Requests a drain worker takes from one tenant's queue per claim
    /// (one queue-lock and one session-lock acquisition per batch). Also
    /// the fairness bound: a worker serves at most this many requests from
    /// one tenant before its cursor moves on.
    pub claim_batch: usize,
    /// Coalesce concurrent identical pure steps across tenants into one
    /// execution ([`StepMemo`] singleflight). Off = every miss executes,
    /// as before; the memo still dedupes *sequential* repeats.
    pub coalesce: bool,
    /// Directory for per-tenant durable store files. Empty (the default)
    /// disables durability; otherwise each opened session gets a store at
    /// `<store_dir>/tenant-<id>.cgdb` and an existing file is recovered
    /// when the same tenant id is reopened after a restart.
    pub store_dir: String,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 256,
            queue_depth: 32,
            pool_workers: 4,
            shared_memo: true,
            memo_capacity: 1024,
            shared_csr: true,
            csr_capacity: 64,
            claim_batch: 8,
            coalesce: true,
            store_dir: String::new(),
        }
    }
}

impl ServeConfig {
    /// Validates every knob, returning human-readable problems.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        if self.max_sessions == 0 {
            problems.push("serve.max_sessions must be >= 1".to_owned());
        }
        if self.queue_depth == 0 {
            problems.push("serve.queue_depth must be >= 1".to_owned());
        }
        if self.pool_workers == 0 {
            problems.push("serve.pool_workers must be >= 1".to_owned());
        }
        if self.shared_memo && self.memo_capacity == 0 {
            problems.push("serve.memo_capacity must be >= 1 when shared_memo is on".to_owned());
        }
        if self.shared_csr && self.csr_capacity == 0 {
            problems.push("serve.csr_capacity must be >= 1 when shared_csr is on".to_owned());
        }
        if self.claim_batch == 0 {
            problems.push("serve.claim_batch must be >= 1".to_owned());
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

/// One unit of tenant work.
#[derive(Debug, Clone)]
pub enum Request {
    /// A chat turn: propose a chain, do not execute.
    Chat(Prompt),
    /// Execute a confirmed (possibly user-edited) chain.
    Execute(ApiChain),
    /// A chat turn followed immediately by execution of the proposed chain
    /// (auto-confirm) — the bench's end-to-end path.
    ChatAndRun(Prompt),
}

/// One executed chain with its monitor trace.
#[derive(Debug, Clone)]
pub struct Execution {
    /// The chain that ran.
    pub chain: ApiChain,
    /// Its final value, or the failure.
    pub result: Result<Value, ChainError>,
    /// The full monitoring event stream.
    pub events: Vec<ChainEvent>,
}

/// The server's answer to one [`Request`].
#[derive(Debug, Clone)]
pub enum Reply {
    /// Answer to [`Request::Chat`].
    Chat(ChatResponse),
    /// Answer to [`Request::Execute`].
    Execution(Execution),
    /// Answer to [`Request::ChatAndRun`]; the execution is absent when the
    /// proposed chain was empty.
    ChatAndRun(ChatResponse, Option<Execution>),
}

/// One completed request, as returned by [`SessionServer::drain`].
#[derive(Debug, Clone)]
pub struct Completed {
    /// The tenant the request belonged to.
    pub tenant: TenantId,
    /// Submission sequence number within the tenant (FIFO order).
    pub seq: u64,
    /// Wall-clock latency from submission to completion, including queue
    /// wait — the open-loop serving latency.
    pub latency_micros: u64,
    /// The outcome.
    pub reply: Result<Reply, ServeError>,
}

// The serving lock hierarchy, checked by repolint's concurrency pass
// (CG201/CG203): the tenant registry is acquired before any per-tenant
// queue, and a queue before that tenant's session.
// lockdoc: order(tenants < queue < session)
struct TenantSlot {
    session: Mutex<ChatSession>,
    queue: Mutex<VecDeque<(u64, Request, Instant)>>,
    /// One-in-flight latch: held by a drain worker while it runs one of
    /// this tenant's requests, so per-tenant FIFO order survives the pool.
    busy: AtomicBool,
    next_seq: AtomicU64,
}

impl TenantSlot {
    // lockdoc: acquires(queue)
    fn queue_guard(&self) -> std::sync::MutexGuard<'_, VecDeque<(u64, Request, Instant)>> {
        // The queue holds plain data (no session state); recovering it
        // after a worker panic cannot observe a half-mutated session.
        // lockdoc: recover(queue entries are plain data; a panic mid-push/pop cannot leave them torn)
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The multi-tenant session server. See the module docs for the tenancy
/// model, sharing rules, and fairness policy.
pub struct SessionServer {
    core: Arc<SessionCore>,
    serve: ServeConfig,
    memo: Arc<StepMemo>,
    csr: Arc<CsrCache>,
    tenants: Mutex<BTreeMap<u64, Arc<TenantSlot>>>,
    next_tenant: AtomicU64,
}

impl SessionServer {
    /// Bootstraps a fresh core (finetunes the model once) and serves it.
    pub fn bootstrap(
        config: ChatGraphConfig,
        corpus_size: usize,
        serve: ServeConfig,
    ) -> Result<(Self, FinetuneReport), ServeError> {
        let (core, report) = SessionCore::bootstrap(config, corpus_size)?;
        Ok((SessionServer::from_core(core, serve)?, report))
    }

    /// Serves a previously finetuned model, skipping the finetuning pass.
    pub fn from_saved_model(
        config: ChatGraphConfig,
        model_json: &str,
        serve: ServeConfig,
    ) -> Result<Self, ServeError> {
        let core = SessionCore::from_saved_model(config, model_json)?;
        SessionServer::from_core(core, serve)
    }

    /// Serves an existing shared core.
    pub fn from_core(core: Arc<SessionCore>, serve: ServeConfig) -> Result<Self, ServeError> {
        serve.validate().map_err(ServeError::InvalidServeConfig)?;
        let memo = StepMemo::new(serve.memo_capacity);
        let memo = Arc::new(if serve.coalesce { memo } else { memo.without_coalescing() });
        let csr = Arc::new(CsrCache::new(serve.csr_capacity));
        Ok(SessionServer {
            core,
            serve,
            memo,
            csr,
            tenants: Mutex::new(BTreeMap::new()),
            next_tenant: AtomicU64::new(0),
        })
    }

    /// The shared core.
    pub fn core(&self) -> &Arc<SessionCore> {
        &self.core
    }

    /// The serving configuration.
    pub fn serve_config(&self) -> &ServeConfig {
        &self.serve
    }

    /// Hit/miss counters of the shared step memo (all zero while
    /// `shared_memo` is off — each session then counts privately).
    pub fn memo_stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// Number of snapshots in the shared CSR cache.
    pub fn csr_len(&self) -> usize {
        self.csr.len()
    }

    /// Whether the shared memo coalesces concurrent identical pure steps.
    pub fn coalescing(&self) -> bool {
        self.memo.coalescing()
    }

    /// Currently open sessions.
    pub fn session_count(&self) -> usize {
        self.tenants_guard().len()
    }

    /// The currently open tenants, in id order.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.tenants_guard().keys().map(|id| TenantId(*id)).collect()
    }

    // lockdoc: acquires(tenants)
    fn tenants_guard(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, Arc<TenantSlot>>> {
        // Holds only the registry map; tenant state lives behind per-slot
        // mutexes with their own poisoning discipline.
        // lockdoc: recover(registry maps ids to Arc slots; insert/remove cannot leave it torn, session state is quarantined per slot)
        self.tenants.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn slot(&self, tenant: TenantId) -> Result<Arc<TenantSlot>, ServeError> {
        self.tenants_guard()
            .get(&tenant.0)
            .cloned()
            .ok_or(ServeError::UnknownTenant)
    }

    /// Opens a session for a new tenant, subject to admission control.
    pub fn open_session(&self) -> Result<TenantId, ServeError> {
        let mut tenants = self.tenants_guard();
        if tenants.len() >= self.serve.max_sessions {
            return Err(ServeError::AtCapacity);
        }
        let mut session = ChatSession::from_core(Arc::clone(&self.core));
        if self.serve.shared_memo {
            session.use_shared_memo(Arc::clone(&self.memo));
        }
        if self.serve.shared_csr {
            session.use_shared_csr(Arc::clone(&self.csr));
        }
        let id = self.next_tenant.fetch_add(1, Ordering::Relaxed);
        if !self.serve.store_dir.is_empty() {
            let dir = std::path::Path::new(&self.serve.store_dir);
            std::fs::create_dir_all(dir)
                .map_err(|e| ServeError::Session(SessionError::Store(e.to_string())))?;
            session.open_store(dir.join(format!("tenant-{id}.cgdb")))?;
        }
        tenants.insert(
            id,
            Arc::new(TenantSlot {
                session: Mutex::new(session),
                queue: Mutex::new(VecDeque::new()),
                busy: AtomicBool::new(false),
                next_seq: AtomicU64::new(0),
            }),
        );
        Ok(TenantId(id))
    }

    /// Closes a tenant's session, dropping its state and pending queue.
    /// The shared caches keep any entries its graphs contributed until
    /// normal eviction.
    pub fn close_session(&self, tenant: TenantId) -> Result<(), ServeError> {
        self.tenants_guard()
            .remove(&tenant.0)
            .map(|_| ())
            .ok_or(ServeError::UnknownTenant)
    }

    /// Runs `f` under the tenant's session lock — the synchronous path for
    /// setup (uploading graphs, attaching databases) and direct chat.
    ///
    /// A poisoned session reports [`ServeError::SessionPoisoned`]; the
    /// half-mutated state is never recovered or reused.
    pub fn with_session<T>(
        &self,
        tenant: TenantId,
        f: impl FnOnce(&mut ChatSession) -> T,
    ) -> Result<T, ServeError> {
        let slot = self.slot(tenant)?;
        let mut guard = slot.session.lock().map_err(|_| ServeError::SessionPoisoned)?;
        Ok(f(&mut guard))
    }

    /// Enqueues a request for the tenant, returning its sequence number.
    /// Requests are executed by the next [`SessionServer::drain`] in
    /// per-tenant FIFO order.
    pub fn submit(&self, tenant: TenantId, request: Request) -> Result<u64, ServeError> {
        let slot = self.slot(tenant)?;
        let mut queue = slot.queue_guard();
        if queue.len() >= self.serve.queue_depth {
            return Err(ServeError::QueueFull);
        }
        let seq = slot.next_seq.fetch_add(1, Ordering::Relaxed);
        queue.push_back((seq, request, Instant::now()));
        Ok(seq)
    }

    /// Pending requests across all tenants.
    pub fn pending(&self) -> usize {
        self.tenants_guard()
            .values()
            .map(|slot| slot.queue_guard().len())
            .sum()
    }

    /// Executes every queued request on the shared worker pool and returns
    /// the completions, sorted by `(tenant, seq)`.
    ///
    /// Workers claim tenants round-robin from a shared cursor, taking up to
    /// [`ServeConfig::claim_batch`] requests per claim with at most one
    /// in-flight claim per tenant: fair across tenants, FIFO within each.
    /// With `pool_workers: 1` the schedule is fully deterministic; with
    /// more workers the *completion order* varies but every reply is
    /// bit-identical to the solo run (the determinism contract extends to
    /// serving).
    pub fn drain(&self) -> Vec<Completed> {
        let slots: Vec<(u64, Arc<TenantSlot>)> = self
            .tenants_guard()
            .iter()
            .map(|(id, slot)| (*id, Arc::clone(slot)))
            .collect();
        let total: usize = slots.iter().map(|(_, s)| s.queue_guard().len()).sum();
        if total == 0 {
            return Vec::new();
        }
        let done = AtomicUsize::new(0);
        let cursor = AtomicUsize::new(0);
        let workers = self.serve.pool_workers.min(total).max(1);
        let batch = self.serve.claim_batch;
        let mut out: Vec<Completed> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        while done.load(Ordering::Acquire) < total {
                            let completed = claim_batch(&slots, &cursor, batch);
                            if completed.is_empty() {
                                // All remaining work is on busy tenants.
                                std::thread::yield_now();
                            } else {
                                done.fetch_add(completed.len(), Ordering::Release);
                                local.extend(completed);
                            }
                        }
                        local
                    })
                })
                .collect();
            // Drain workers cannot panic: step panics are isolated by the
            // supervisor and poisoned sessions are mapped to errors. A
            // panicked worker would still be bounded here to losing its
            // local completions, never the whole drain.
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_default())
                .collect()
        });
        out.sort_by_key(|c| (c.tenant, c.seq));
        out
    }
}

/// Claims up to `batch` requests from the next available tenant
/// (round-robin from the shared cursor) and runs them FIFO. Empty when
/// every non-empty queue belongs to a tenant whose claim is in flight.
fn claim_batch(
    slots: &[(u64, Arc<TenantSlot>)],
    cursor: &AtomicUsize,
    batch: usize,
) -> Vec<Completed> {
    let n = slots.len();
    let start = cursor.fetch_add(1, Ordering::Relaxed) % n;
    for i in 0..n {
        let (id, slot) = &slots[(start + i) % n];
        if slot
            .busy
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            continue;
        }
        // One queue-lock acquisition takes the whole bounded batch; the
        // busy latch keeps the drained prefix FIFO-contiguous (no other
        // worker can take this tenant's next request until we release).
        let claimed: Vec<(u64, Request, Instant)> = {
            let mut queue = slot.queue_guard();
            let take = queue.len().min(batch);
            queue.drain(..take).collect()
        };
        let completed = run_batch(slot, *id, claimed);
        slot.busy.store(false, Ordering::Release);
        if !completed.is_empty() {
            return completed;
        }
    }
    Vec::new()
}

/// Runs one claimed batch in FIFO order under a single acquisition of the
/// tenant's session lock. A poisoned session fails every request in the
/// batch with [`ServeError::SessionPoisoned`]; the half-mutated state is
/// never recovered.
fn run_batch(
    slot: &TenantSlot,
    id: u64,
    claimed: Vec<(u64, Request, Instant)>,
) -> Vec<Completed> {
    if claimed.is_empty() {
        return Vec::new();
    }
    let mut session = slot.session.lock().ok();
    claimed
        .into_iter()
        .map(|(seq, request, submitted)| {
            let reply = match session.as_deref_mut() {
                Some(session) => Ok(run_request(session, request)),
                None => Err(ServeError::SessionPoisoned),
            };
            Completed {
                tenant: TenantId(id),
                seq,
                latency_micros: submitted.elapsed().as_micros() as u64,
                reply,
            }
        })
        .collect()
}

/// Runs one request against the locked session.
fn run_request(session: &mut ChatSession, request: Request) -> Reply {
    match request {
        Request::Chat(prompt) => Reply::Chat(session.send(prompt)),
        Request::Execute(chain) => Reply::Execution(execute(session, &chain)),
        Request::ChatAndRun(prompt) => {
            let response = session.send(prompt);
            let execution = (!response.chain.is_empty())
                .then(|| execute(session, &response.chain));
            Reply::ChatAndRun(response, execution)
        }
    }
}

fn execute(session: &mut ChatSession, chain: &ApiChain) -> Execution {
    let mut monitor = CollectingMonitor::new();
    let result = session.run_chain(chain, &mut monitor);
    Execution {
        chain: chain.clone(),
        result,
        events: monitor.events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::test_support::shared_core;
    use chatgraph_graph::generators::{social_network, SocialParams};

    fn server(serve: ServeConfig) -> SessionServer {
        SessionServer::from_core(shared_core(), serve).expect("valid serve config")
    }

    #[test]
    fn serve_config_validates() {
        assert!(ServeConfig::default().validate().is_ok());
        let bad = ServeConfig {
            max_sessions: 0,
            queue_depth: 0,
            pool_workers: 0,
            ..ServeConfig::default()
        };
        assert_eq!(bad.validate().unwrap_err().len(), 3);
        assert!(matches!(
            SessionServer::from_core(shared_core(), bad),
            Err(ServeError::InvalidServeConfig(_))
        ));
    }

    #[test]
    fn admission_control_caps_sessions_and_queues() {
        let srv = server(ServeConfig {
            max_sessions: 2,
            queue_depth: 1,
            ..ServeConfig::default()
        });
        let a = srv.open_session().unwrap();
        let _b = srv.open_session().unwrap();
        assert_eq!(srv.open_session().unwrap_err(), ServeError::AtCapacity);
        srv.submit(a, Request::Chat(Prompt::text("how big is G?"))).unwrap();
        assert_eq!(
            srv.submit(a, Request::Chat(Prompt::text("again"))).unwrap_err(),
            ServeError::QueueFull
        );
        // Closing a session frees its admission slot and drops its queue.
        srv.close_session(a).unwrap();
        assert_eq!(srv.close_session(a).unwrap_err(), ServeError::UnknownTenant);
        let c = srv.open_session().unwrap();
        assert_ne!(_b, c, "tenant ids are never reused");
        assert_eq!(srv.pending(), 0);
    }

    #[test]
    fn drain_preserves_per_tenant_fifo_order() {
        let srv = server(ServeConfig::default());
        let t = srv.open_session().unwrap();
        srv.with_session(t, |s| {
            s.set_graph(social_network(&SocialParams::default(), 11))
        })
        .unwrap();
        let chains = ["node_count", "edge_count", "graph_density"];
        for name in chains {
            srv.submit(t, Request::Execute(ApiChain::from_names([name]))).unwrap();
        }
        let completed = srv.drain();
        assert_eq!(completed.len(), 3);
        let seqs: Vec<u64> = completed.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        for c in &completed {
            let Ok(Reply::Execution(e)) = &c.reply else {
                panic!("expected an execution: {:?}", c.reply)
            };
            assert!(e.result.is_ok());
        }
        assert!(srv.drain().is_empty(), "drain consumes the queues");
    }

    #[test]
    fn batched_claims_preserve_fifo_and_fairness_bound() {
        // A batch bound of 2 with 5 requests per tenant forces multiple
        // claims per tenant; per-tenant FIFO order must survive the pool.
        let srv = server(ServeConfig {
            pool_workers: 3,
            claim_batch: 2,
            ..ServeConfig::default()
        });
        let tenants: Vec<TenantId> = (0..3).map(|_| srv.open_session().unwrap()).collect();
        for (i, &t) in tenants.iter().enumerate() {
            srv.with_session(t, |s| {
                s.set_graph(social_network(&SocialParams::default(), 20 + i as u64))
            })
            .unwrap();
            for _ in 0..5 {
                srv.submit(t, Request::Execute(ApiChain::from_names(["node_count"])))
                    .unwrap();
            }
        }
        let completed = srv.drain();
        assert_eq!(completed.len(), 15);
        for &t in &tenants {
            let seqs: Vec<u64> =
                completed.iter().filter(|c| c.tenant == t).map(|c| c.seq).collect();
            assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        }
        assert!(completed.iter().all(|c| c.reply.is_ok()));
    }

    #[test]
    fn coalescing_knob_reaches_the_shared_memo() {
        assert!(server(ServeConfig::default()).coalescing());
        let off = server(ServeConfig { coalesce: false, ..ServeConfig::default() });
        assert!(!off.coalescing());
        let bad = ServeConfig { claim_batch: 0, ..ServeConfig::default() };
        assert_eq!(bad.validate().unwrap_err().len(), 1);
    }

    #[test]
    fn store_backed_tenants_recover_after_restart() {
        let dir = std::env::temp_dir().join(format!(
            "chatgraph-serve-store-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let serve = ServeConfig {
            store_dir: dir.to_string_lossy().into_owned(),
            ..ServeConfig::default()
        };
        let srv = server(serve.clone());
        let t = srv.open_session().unwrap();
        let uploaded = social_network(&SocialParams::default(), 17);
        let nodes = uploaded.node_count();
        srv.with_session(t, |s| {
            s.set_graph(uploaded);
            assert!(s.store().is_some(), "store must be attached");
        })
        .unwrap();
        srv.submit(t, Request::Execute(ApiChain::from_names(["node_count"]))).unwrap();
        srv.drain();
        drop(srv);

        // A new server over the same directory: the first tenant id is 0
        // again, so the reopened session recovers the same store file.
        let srv = server(serve);
        let t = srv.open_session().unwrap();
        let recovered = srv
            .with_session(t, |s| s.graph().map(|g| g.node_count()))
            .unwrap();
        assert_eq!(recovered, Some(nodes), "recovered graph must match the upload");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_tenants_are_rejected() {
        let srv = server(ServeConfig::default());
        let t = srv.open_session().unwrap();
        srv.close_session(t).unwrap();
        assert_eq!(
            srv.submit(t, Request::Chat(Prompt::text("hi"))).unwrap_err(),
            ServeError::UnknownTenant
        );
        assert_eq!(
            srv.with_session(t, |_| ()).unwrap_err(),
            ServeError::UnknownTenant
        );
    }

    #[test]
    fn shared_memo_hits_across_tenants() {
        let srv = server(ServeConfig {
            pool_workers: 2,
            ..ServeConfig::default()
        });
        // Two tenants, identical graphs (same generator seed), identical
        // chains with no within-chain repetition: any memo hit is
        // necessarily cross-tenant.
        let chain = ApiChain::from_names(["node_count", "triangle_count"]);
        for _ in 0..2 {
            let t = srv.open_session().unwrap();
            srv.with_session(t, |s| {
                s.set_graph(social_network(&SocialParams::default(), 33))
            })
            .unwrap();
            srv.submit(t, Request::Execute(chain.clone())).unwrap();
        }
        let completed = srv.drain();
        assert_eq!(completed.len(), 2);
        let values: Vec<&Value> = completed
            .iter()
            .map(|c| match &c.reply {
                Ok(Reply::Execution(e)) => e.result.as_ref().unwrap(),
                other => panic!("unexpected reply: {other:?}"),
            })
            .collect();
        assert_eq!(values[0], values[1]);
        let stats = srv.memo_stats();
        assert!(stats.hits > 0, "cross-tenant hit expected: {stats:?}");
    }
}
