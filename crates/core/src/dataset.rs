//! The synthetic finetuning corpus (paper §II-C, "Dataset preparation").
//!
//! The paper recruited chemistry students, logged their manual API
//! invocations, and extracted question → API-chain pairs; it also notes that
//! "there may be several API chains that are equivalent to answering the
//! user's question". This module generates a corpus with the same schema:
//!
//! * paraphrased natural-language questions per intent,
//! * a graph of the matching family attached to every question,
//! * one or more *equivalent* ground-truth chains per question (commuting
//!   analysis steps appear in both orders).

use chatgraph_apis::ApiChain;
use chatgraph_graph::generators::{
    knowledge_graph, molecule, social_network, KgParams, MoleculeParams, SocialParams,
};
use chatgraph_graph::Graph;
use chatgraph_support::rng::{RngExt, SeedableRng};
use chatgraph_support::rng::ChaCha12Rng;

/// Graph family an intent applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFamily {
    /// Planted-partition social networks.
    Social,
    /// Valence-constrained molecules.
    Molecule,
    /// Rule-based knowledge graphs.
    Knowledge,
}

/// One template intent.
struct IntentSpec {
    name: &'static str,
    family: GraphFamily,
    templates: &'static [&'static str],
    /// Equivalent ground-truth chains (API name sequences).
    chains: &'static [&'static [&'static str]],
}

/// The intent catalogue. Chains only reference APIs registered by
/// `chatgraph_apis::registry::standard` (enforced by a test).
const INTENTS: &[IntentSpec] = &[
    IntentSpec {
        name: "social_report",
        family: GraphFamily::Social,
        templates: &[
            "write a brief report for {g}",
            "give me a report about this social network",
            "summarize the structure of {g}",
            "describe this network in a short report",
        ],
        chains: &[
            &["detect_communities", "connectivity_report", "generate_report"],
            &["connectivity_report", "detect_communities", "generate_report"],
        ],
    },
    IntentSpec {
        name: "molecule_report",
        family: GraphFamily::Molecule,
        templates: &[
            "write a brief report for {g}",
            "give me a report about this molecule",
            "summarize the chemical properties of {g}",
            "describe this compound in a short report",
        ],
        chains: &[
            &["predict_toxicity", "predict_solubility", "generate_report"],
            &["predict_solubility", "predict_toxicity", "generate_report"],
        ],
    },
    IntentSpec {
        name: "communities",
        family: GraphFamily::Social,
        templates: &[
            "what communities exist in {g}",
            "detect the communities of this social network",
            "find the groups of users in {g}",
            "identify the clusters of friends",
        ],
        chains: &[&["detect_communities"]],
    },
    IntentSpec {
        name: "community_count",
        family: GraphFamily::Social,
        templates: &[
            "how many communities does {g} have",
            "count the communities in this network",
            "number of groups in {g}",
        ],
        chains: &[&["community_count"]],
    },
    IntentSpec {
        name: "influencers",
        family: GraphFamily::Social,
        templates: &[
            "who are the most influential users in {g}",
            "find the key people of this social network",
            "which users have the highest pagerank",
            "list the top influencers",
        ],
        chains: &[&["top_pagerank"], &["find_influencers"]],
    },
    IntentSpec {
        name: "connectivity",
        family: GraphFamily::Social,
        templates: &[
            "is {g} connected",
            "check the connectivity of this network",
            "can every user reach every other user",
            "analyse whether the graph is connected",
        ],
        chains: &[&["connectivity_report"], &["is_connected"]],
    },
    IntentSpec {
        name: "bridges",
        family: GraphFamily::Social,
        templates: &[
            "which users bridge different groups in {g}",
            "find the brokers of this network",
            "who connects the communities",
        ],
        chains: &[&["top_betweenness"]],
    },
    IntentSpec {
        name: "weak_links",
        family: GraphFamily::Social,
        templates: &[
            "which friendships hold {g} together",
            "find the weak link edges of this network",
            "what connections would disconnect the network if removed",
        ],
        chains: &[&["find_bridges"]],
    },
    IntentSpec {
        name: "cut_nodes",
        family: GraphFamily::Social,
        templates: &[
            "whose departure would break {g} apart",
            "find the cut nodes of this social network",
            "which members are single points of failure",
        ],
        chains: &[&["articulation_points"]],
    },
    IntentSpec {
        name: "central_users",
        family: GraphFamily::Social,
        templates: &[
            "who can reach everyone fastest in {g}",
            "rank users by closeness to the rest of the network",
            "which users are closest to all others",
        ],
        chains: &[&["top_closeness"]],
    },
    IntentSpec {
        name: "toxicity",
        family: GraphFamily::Molecule,
        templates: &[
            "how toxic is {g}",
            "predict the toxicity of this molecule",
            "is this compound poisonous",
            "estimate the toxicity probability",
        ],
        chains: &[&["predict_toxicity"]],
    },
    IntentSpec {
        name: "solubility",
        family: GraphFamily::Molecule,
        templates: &[
            "does {g} dissolve in water",
            "predict the solubility of this molecule",
            "how soluble is this compound",
        ],
        chains: &[&["predict_solubility"]],
    },
    IntentSpec {
        name: "similar_molecules",
        family: GraphFamily::Molecule,
        templates: &[
            "what molecules are similar to {g}",
            "find compounds similar to this molecule in the database",
            "search the database for molecules like {g}",
            "which known molecules resemble this one",
        ],
        chains: &[&["similarity_search"]],
    },
    IntentSpec {
        name: "formula",
        family: GraphFamily::Molecule,
        templates: &[
            "what is the chemical formula of {g}",
            "derive the molecular formula",
            "give me the formula of this compound",
        ],
        chains: &[&["molecular_formula"]],
    },
    IntentSpec {
        name: "weight",
        family: GraphFamily::Molecule,
        templates: &[
            "how heavy is {g}",
            "compute the molecular weight of this molecule",
            "what is the molar mass",
        ],
        chains: &[&["molecular_weight"]],
    },
    IntentSpec {
        name: "rings",
        family: GraphFamily::Molecule,
        templates: &[
            "how many rings does {g} contain",
            "count the cycles of this molecule",
            "number of rings in the structure",
        ],
        chains: &[&["ring_count"]],
    },
    IntentSpec {
        name: "clean_kg",
        family: GraphFamily::Knowledge,
        templates: &[
            "clean {g}",
            "fix the errors in this knowledge graph",
            "remove wrong facts and add missing facts in {g}",
            "repair the noisy edges of the knowledge graph",
        ],
        chains: &[
            &[
                "detect_incorrect_edges",
                "remove_edges",
                "detect_missing_edges",
                "add_edges",
                "export_graph",
            ],
            &[
                "detect_missing_edges",
                "add_edges",
                "detect_incorrect_edges",
                "remove_edges",
                "export_graph",
            ],
        ],
    },
    IntentSpec {
        name: "kg_validate",
        family: GraphFamily::Knowledge,
        templates: &[
            "are there schema violations in {g}",
            "validate the relations of this knowledge graph",
            "check the knowledge graph against its schema",
        ],
        chains: &[&["validate_schema"]],
    },
    IntentSpec {
        name: "kg_stats",
        family: GraphFamily::Knowledge,
        templates: &[
            "what facts does {g} contain",
            "summarise the entities and relations of this knowledge graph",
            "how many facts per relation are there",
        ],
        chains: &[&["kg_statistics"]],
    },
];

/// Corpus generation parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusParams {
    /// Number of question examples.
    pub size: usize,
    /// Use small graphs (faster tests) or demo-sized graphs.
    pub small_graphs: bool,
}

impl Default for CorpusParams {
    fn default() -> Self {
        CorpusParams {
            size: 200,
            small_graphs: true,
        }
    }
}

/// One supervised example: question, attached graph, equivalent truths.
#[derive(Debug, Clone)]
pub struct QaExample {
    /// The paraphrased natural-language question.
    pub question: String,
    /// The attached graph.
    pub graph: Graph,
    /// Equivalent ground-truth chains (≥ 1).
    pub truths: Vec<ApiChain>,
    /// The generating intent (for per-intent accuracy breakdowns).
    pub intent: &'static str,
}

const PREFIXES: &[&str] = &["", "please ", "could you ", "hey, ", "i need you to "];
const SUFFIXES: &[&str] = &["", " for me", ", thanks", "?", " in detail"];
const GRAPH_NAMES: &[&str] = &["G", "this graph", "the uploaded graph", "my graph"];

fn family_graph(family: GraphFamily, small: bool, rng: &mut ChaCha12Rng) -> Graph {
    let seed = rng.random::<u64>();
    match family {
        GraphFamily::Social => {
            let p = if small {
                SocialParams {
                    communities: 3,
                    community_size: 10,
                    p_intra: 0.4,
                    p_inter: 0.02,
                }
            } else {
                SocialParams::default()
            };
            social_network(&p, seed)
        }
        GraphFamily::Molecule => {
            let p = if small {
                MoleculeParams {
                    atoms: 12,
                    rings: 1,
                    double_bond_prob: 0.15,
                }
            } else {
                MoleculeParams::default()
            };
            molecule(&p, seed)
        }
        GraphFamily::Knowledge => {
            let p = if small {
                KgParams {
                    persons: 15,
                    cities: 5,
                    countries: 3,
                    companies: 4,
                    employment_rate: 0.6,
                    knows_per_person: 1.0,
                }
            } else {
                KgParams::default()
            };
            knowledge_graph(&p, seed)
        }
    }
}

/// Generates a paraphrased question for an intent.
fn paraphrase(spec: &IntentSpec, rng: &mut ChaCha12Rng) -> String {
    let template = spec.templates[rng.random_range(0..spec.templates.len())];
    let g = GRAPH_NAMES[rng.random_range(0..GRAPH_NAMES.len())];
    let core = template.replace("{g}", g);
    let prefix = PREFIXES[rng.random_range(0..PREFIXES.len())];
    let suffix = SUFFIXES[rng.random_range(0..SUFFIXES.len())];
    format!("{prefix}{core}{suffix}")
}

/// Generates a seeded corpus of `params.size` examples, cycling intents so
/// every intent is evenly represented.
pub fn generate_corpus(params: &CorpusParams, seed: u64) -> Vec<QaExample> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    (0..params.size)
        .map(|i| {
            let spec = &INTENTS[i % INTENTS.len()];
            QaExample {
                question: paraphrase(spec, &mut rng),
                graph: family_graph(spec.family, params.small_graphs, &mut rng),
                truths: spec
                    .chains
                    .iter()
                    .map(|c| ApiChain::from_names(c.iter().copied()))
                    .collect(),
                intent: spec.name,
            }
        })
        .collect()
}

/// Number of distinct intents in the catalogue.
pub fn intent_count() -> usize {
    INTENTS.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatgraph_apis::registry;

    #[test]
    fn corpus_is_deterministic_and_sized() {
        let p = CorpusParams {
            size: 32,
            small_graphs: true,
        };
        let a = generate_corpus(&p, 7);
        let b = generate_corpus(&p, 7);
        assert_eq!(a.len(), 32);
        assert_eq!(a[0].question, b[0].question);
        assert_ne!(
            generate_corpus(&p, 8)[0].question,
            a[0].question.clone() + "\u{1}" // trivially different check guard
        );
    }

    #[test]
    fn every_chain_references_registered_apis_and_validates() {
        let reg = registry::standard();
        for spec in INTENTS {
            for chain in spec.chains {
                let c = ApiChain::from_names(chain.iter().copied());
                c.validate(&reg, true)
                    .unwrap_or_else(|e| panic!("intent {}: {e}", spec.name));
            }
        }
    }

    #[test]
    fn intents_are_evenly_cycled() {
        let p = CorpusParams {
            size: intent_count() * 2,
            small_graphs: true,
        };
        let corpus = generate_corpus(&p, 1);
        let first: Vec<&str> = corpus[..intent_count()].iter().map(|e| e.intent).collect();
        let second: Vec<&str> = corpus[intent_count()..].iter().map(|e| e.intent).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn graphs_match_intent_family() {
        let corpus = generate_corpus(
            &CorpusParams {
                size: intent_count(),
                small_graphs: true,
            },
            3,
        );
        for e in &corpus {
            let spec = INTENTS.iter().find(|s| s.name == e.intent).unwrap();
            match spec.family {
                GraphFamily::Knowledge => assert!(e.graph.is_directed()),
                _ => assert!(!e.graph.is_directed()),
            }
            assert!(!e.graph.is_empty());
        }
    }

    #[test]
    fn equivalent_truths_where_declared() {
        let corpus = generate_corpus(
            &CorpusParams {
                size: intent_count(),
                small_graphs: true,
            },
            4,
        );
        let report = corpus.iter().find(|e| e.intent == "social_report").unwrap();
        assert_eq!(report.truths.len(), 2);
        let cleaning = corpus.iter().find(|e| e.intent == "clean_kg").unwrap();
        assert_eq!(cleaning.truths.len(), 2);
    }

    #[test]
    fn paraphrases_vary() {
        let corpus = generate_corpus(
            &CorpusParams {
                size: intent_count() * 6,
                small_graphs: true,
            },
            5,
        );
        let toxicity: std::collections::HashSet<&str> = corpus
            .iter()
            .filter(|e| e.intent == "toxicity")
            .map(|e| e.question.as_str())
            .collect();
        assert!(toxicity.len() >= 3, "paraphrases: {toxicity:?}");
    }
}
