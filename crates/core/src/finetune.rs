//! API chain-oriented finetuning (paper §II-C).
//!
//! Two sub-modules, exactly as in the paper:
//!
//! * **Node matching-based loss** (Definition 1) — scores a candidate chain
//!   against ground truth as `GED + α·(one-to-one regulariser)`, minimised
//!   over node matchings. Implemented in `chatgraph-ged`; this module applies
//!   it as the chain-level training signal, taking the *minimum over the
//!   equivalent ground-truth chains* of a question.
//! * **Search-based prediction** — "in each iteration, an API is added. …
//!   For each API a in S, we conduct r random rollouts. In each rollout, we
//!   randomly extend `C_p + {a}` to a full chain C and the loss between C
//!   and a ground-truth API chain is used to score a. … The API having the
//!   highest score is added to `C_p`." The chains this search produces
//!   become the supervised next-token targets of SGD.
//!
//! [`FinetuneMethod`] exposes the ablations of experiment E8: drop the
//! rollouts (plain teacher forcing) or replace the matching loss with a
//! structure-blind token-overlap score.

use crate::config::ChatGraphConfig;
use crate::dataset::QaExample;
use crate::generation::{candidate_apis, ChainGenerator};
use crate::graph_aware::GraphAwareLm;
use crate::retrieval::ApiRetriever;
use chatgraph_apis::{ApiChain, ApiRegistry};
use chatgraph_ged::{min_matching_loss, CostModel};
use chatgraph_graph::Graph;
use chatgraph_llm::{train, Example, TrainReport};
use chatgraph_support::rng::{RngExt, SeedableRng};
use chatgraph_support::rng::ChaCha12Rng;
use std::collections::BTreeMap;

/// Which finetuning variant to run (E8 ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinetuneMethod {
    /// Search-based prediction with rollouts, scored by the node
    /// matching-based loss (the paper's full method).
    Full,
    /// No search: teacher forcing on the first ground-truth chain
    /// (equivalent to `r = 0` and ignoring chain equivalence).
    TeacherForcing,
    /// Search-based prediction, but rollouts scored by order-blind token
    /// overlap instead of the matching loss (ablating Definition 1).
    TokenOverlap,
}

chatgraph_support::impl_json_enum_unit!(FinetuneMethod {
    Full,
    TeacherForcing,
    TokenOverlap,
});

/// Finetuning outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FinetuneReport {
    /// Supervised next-token examples constructed.
    pub examples: usize,
    /// SGD metrics.
    pub train: TrainReport,
}

chatgraph_support::impl_json_struct!(FinetuneReport { examples, train });

/// Held-out evaluation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Fraction of questions whose generated chain exactly matches one of
    /// the equivalent ground truths.
    pub exact_match: f64,
    /// Mean node matching-based loss of generated chains.
    pub avg_loss: f64,
    /// Per-intent `(correct, total)` breakdown.
    pub per_intent: BTreeMap<String, (usize, usize)>,
}

chatgraph_support::impl_json_struct!(EvalReport { exact_match, avg_loss, per_intent });

/// Chain-level loss of `names` against the example's equivalent truths:
/// the minimum node matching-based loss (Definition 1).
fn chain_loss(names: &[String], truth_graphs: &[Graph], alpha: f64) -> f64 {
    let Ok(g) = ApiChain::from_names(names.iter().cloned()).to_graph() else {
        return f64::INFINITY;
    };
    min_matching_loss(&g, truth_graphs, alpha, &CostModel::uniform())
        .map(|(_, l)| l.total)
        .unwrap_or(f64::INFINITY)
}

/// Order-blind token-overlap "loss" for the ablation: `1 − max Jaccard`.
fn overlap_loss(names: &[String], truths: &[ApiChain]) -> f64 {
    let set: std::collections::BTreeSet<&str> = names.iter().map(String::as_str).collect();
    let best = truths
        .iter()
        .map(|t| {
            let ts: std::collections::BTreeSet<&str> = t.api_names().into_iter().collect();
            let inter = set.intersection(&ts).count() as f64;
            let union = set.union(&ts).count() as f64;
            if union == 0.0 {
                1.0
            } else {
                inter / union
            }
        })
        .fold(0.0f64, f64::max);
    1.0 - best
}

/// Runs the search-based prediction for one question, returning the chosen
/// chain (the sequence of argmax-score APIs, ended by `[EOS]`).
#[allow(clippy::too_many_arguments)]
fn search_chain(
    example: &QaExample,
    registry: &ApiRegistry,
    candidates: &[String],
    truth_graphs: &[Graph],
    method: FinetuneMethod,
    rollouts: usize,
    max_len: usize,
    alpha: f64,
    rng: &mut ChaCha12Rng,
) -> Vec<String> {
    let score_of = |names: &[String]| -> f64 {
        match method {
            FinetuneMethod::TokenOverlap => -overlap_loss(names, &example.truths),
            _ => -chain_loss(names, truth_graphs, alpha),
        }
    };
    // Completes `prefix` with the unused tokens of `truth`, in truth order —
    // the deterministic reference-policy rollout. Purely random rollouts need
    // enormous r before one samples a correct continuation of a 5-step chain;
    // rolling out along each equivalent ground truth is the standard
    // variance-reduction and keeps the scores' argmax meaningful at small r.
    let complete_with_truth = |prefix: &[String], truth: &ApiChain| -> Vec<String> {
        let mut rollout = prefix.to_vec();
        let mut used = vec![false; prefix.len()];
        for api in truth.api_names() {
            // Truth tokens already consumed by the prefix (multiset) are
            // skipped; the rest are appended in truth order.
            match prefix.iter().enumerate().find(|(i, p)| !used[*i] && *p == api) {
                Some((i, _)) => used[i] = true,
                None if rollout.len() < max_len => rollout.push(api.to_owned()),
                None => break,
            }
        }
        rollout
    };
    let mut chain: Vec<String> = Vec::new();
    for _ in 0..max_len {
        // Score stopping here.
        let stop_score = score_of(&chain);
        let mut best: Option<(f64, &String)> = None;
        for c in candidates {
            // Static-analysis pruning: never consider an extension the chain
            // analyzer would flag as a type-flow error (CG003/CG004).
            if !chatgraph_apis::analysis::can_extend(
                registry,
                chain.last().map(String::as_str),
                c,
                true,
            ) {
                continue;
            }
            let mut prefix = chain.clone();
            prefix.push(c.clone());
            // Deterministic rollouts: stop immediately, or follow each truth.
            let mut best_rollout = score_of(&prefix);
            for truth in &example.truths {
                best_rollout = best_rollout.max(score_of(&complete_with_truth(&prefix, truth)));
            }
            // Plus r uniformly random extensions.
            for _ in 0..rollouts {
                let mut rollout = prefix.clone();
                while rollout.len() < max_len {
                    let i = rng.random_range(0..=candidates.len());
                    if i == candidates.len() {
                        break; // rollout chose [EOS]
                    }
                    rollout.push(candidates[i].clone());
                }
                best_rollout = best_rollout.max(score_of(&rollout));
            }
            let better = match best {
                None => true,
                Some((s, name)) => {
                    best_rollout > s + 1e-12
                        || (best_rollout > s - 1e-12 && c < name)
                }
            };
            if better {
                best = Some((best_rollout, c));
            }
        }
        match best {
            // Extend only when some continuation strictly beats stopping.
            Some((s, c)) if s > stop_score + 1e-12 => chain.push(c.clone()),
            _ => break,
        }
    }
    chain
}

/// Builds the supervised next-token examples for a corpus.
pub fn build_examples(
    lm: &GraphAwareLm,
    registry: &ApiRegistry,
    retriever: &ApiRetriever,
    corpus: &[QaExample],
    method: FinetuneMethod,
    config: &ChatGraphConfig,
) -> Vec<Example> {
    let cost_alpha = config.finetune.alpha;
    let mut out = Vec::new();
    let mut rng = ChaCha12Rng::seed_from_u64(config.finetune.train.seed ^ 0xf17e);
    for example in corpus {
        // Candidates: what inference will see, plus the truth tokens so the
        // search space always contains a correct chain.
        let mut candidates =
            candidate_apis(registry, retriever, &example.question, Some(&example.graph));
        for t in &example.truths {
            for api in t.api_names() {
                if !candidates.iter().any(|c| c == api) {
                    candidates.push(api.to_owned());
                }
            }
        }
        candidates.sort();
        candidates.dedup();

        let truth_graphs: Vec<Graph> =
            example.truths.iter().filter_map(|t| t.to_graph().ok()).collect();
        let target_chain: Vec<String> = match method {
            FinetuneMethod::TeacherForcing => example.truths[0]
                .api_names()
                .into_iter()
                .map(str::to_owned)
                .collect(),
            _ => search_chain(
                example,
                registry,
                &candidates,
                &truth_graphs,
                method,
                config.finetune.rollouts,
                config.finetune.max_chain_len,
                cost_alpha,
                &mut rng,
            ),
        };

        // Teacher-force the chosen chain into next-token examples.
        let context = lm.context(&example.question, Some(&example.graph));
        let mut partial: Vec<String> = Vec::new();
        for api in &target_chain {
            if let Some(id) = lm.model.vocab().id(api) {
                out.push(Example {
                    features: lm.step_features(&context, &partial),
                    target: id,
                    weight: 1.0,
                });
            }
            partial.push(api.clone());
        }
        out.push(Example {
            features: lm.step_features(&context, &partial),
            target: lm.model.vocab().eos(),
            weight: 1.0,
        });
    }
    out
}

/// Finetunes `lm` on a corpus with the chosen method.
pub fn finetune(
    lm: &mut GraphAwareLm,
    registry: &ApiRegistry,
    retriever: &ApiRetriever,
    corpus: &[QaExample],
    method: FinetuneMethod,
    config: &ChatGraphConfig,
) -> FinetuneReport {
    let examples = build_examples(lm, registry, retriever, corpus, method, config);
    let report = train(&mut lm.model, &examples, &config.finetune.train);
    FinetuneReport {
        examples: examples.len(),
        train: report,
    }
}

/// Evaluation options (the candidate-set ablation of DESIGN.md §6.5).
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalOptions {
    /// Offer the decoder the whole API vocabulary instead of the
    /// retrieval-augmented candidate set.
    pub full_vocabulary: bool,
}

/// Evaluates greedy generation on a held-out corpus.
pub fn evaluate(
    lm: &GraphAwareLm,
    registry: &ApiRegistry,
    retriever: &ApiRetriever,
    corpus: &[QaExample],
    config: &ChatGraphConfig,
) -> EvalReport {
    evaluate_opts(lm, registry, retriever, corpus, config, EvalOptions::default())
}

/// Evaluates greedy generation with explicit [`EvalOptions`].
pub fn evaluate_opts(
    lm: &GraphAwareLm,
    registry: &ApiRegistry,
    retriever: &ApiRetriever,
    corpus: &[QaExample],
    config: &ChatGraphConfig,
    opts: EvalOptions,
) -> EvalReport {
    let generator = ChainGenerator {
        max_len: config.finetune.max_chain_len,
    };
    let mut correct = 0usize;
    let mut total_loss = 0.0;
    let mut per_intent: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for example in corpus {
        let candidates = if opts.full_vocabulary {
            registry.names().iter().map(|s| s.to_string()).collect()
        } else {
            candidate_apis(registry, retriever, &example.question, Some(&example.graph))
        };
        let chain = generator.generate_greedy_checked(
            lm,
            registry,
            &example.question,
            Some(&example.graph),
            &candidates,
        );
        let names: Vec<String> = chain.api_names().into_iter().map(str::to_owned).collect();
        let hit = example
            .truths
            .iter()
            .any(|t| t.api_names() == chain.api_names());
        let truth_graphs: Vec<Graph> =
            example.truths.iter().filter_map(|t| t.to_graph().ok()).collect();
        total_loss += chain_loss(&names, &truth_graphs, config.finetune.alpha);
        let entry = per_intent.entry(example.intent.to_owned()).or_insert((0, 0));
        entry.1 += 1;
        if hit {
            entry.0 += 1;
            correct += 1;
        }
    }
    let n = corpus.len().max(1) as f64;
    EvalReport {
        exact_match: correct as f64 / n,
        avg_loss: total_loss / n,
        per_intent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_corpus, CorpusParams};
    use chatgraph_apis::registry;

    fn setup(train_size: usize) -> (GraphAwareLm, ApiRegistry, ApiRetriever, Vec<QaExample>, ChatGraphConfig) {
        let mut config = ChatGraphConfig::default();
        config.finetune.train.epochs = 12;
        config.finetune.rollouts = 2;
        let reg = registry::standard();
        let retriever = ApiRetriever::build(&reg, &config.retrieval);
        let lm = GraphAwareLm::new(&reg, &config);
        let corpus = generate_corpus(
            &CorpusParams {
                size: train_size,
                small_graphs: true,
            },
            11,
        );
        (lm, reg, retriever, corpus, config)
    }

    #[test]
    fn finetuning_beats_untrained_on_heldout() {
        let (mut lm, reg, retriever, corpus, config) = setup(160);
        let (train_set, test_set) = corpus.split_at(128);
        let before = evaluate(&lm, &reg, &retriever, test_set, &config);
        let report = finetune(&mut lm, &reg, &retriever, train_set, FinetuneMethod::Full, &config);
        assert!(report.examples >= train_set.len());
        assert!(report.train.final_accuracy > 0.5, "{report:?}");
        let after = evaluate(&lm, &reg, &retriever, test_set, &config);
        assert!(
            after.exact_match > before.exact_match,
            "before {before:?} after {after:?}"
        );
        assert!(after.avg_loss < before.avg_loss);
        assert!(after.exact_match >= 0.5, "after {after:?}");
    }

    #[test]
    fn chain_loss_zero_for_exact_truth() {
        let truths = [ApiChain::from_names(["a", "b"])];
        let graphs: Vec<Graph> = truths.iter().map(|t| t.to_graph().unwrap()).collect();
        let names = vec!["a".to_owned(), "b".to_owned()];
        assert_eq!(chain_loss(&names, &graphs, 0.5), 0.0);
        let wrong = vec!["a".to_owned()];
        assert!(chain_loss(&wrong, &graphs, 0.5) > 0.0);
    }

    #[test]
    fn overlap_loss_ignores_order() {
        let truths = vec![ApiChain::from_names(["a", "b", "c"])];
        let fwd = vec!["a".to_owned(), "b".to_owned(), "c".to_owned()];
        let rev = vec!["c".to_owned(), "b".to_owned(), "a".to_owned()];
        assert_eq!(overlap_loss(&fwd, &truths), 0.0);
        assert_eq!(overlap_loss(&rev, &truths), 0.0);
        let partial = vec!["a".to_owned()];
        assert!((overlap_loss(&partial, &truths) - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn search_recovers_truth_chain_when_reachable() {
        let (_, reg, _, corpus, config) = setup(16);
        let example = &corpus[2]; // communities intent
        let candidates: Vec<String> = example.truths[0]
            .api_names()
            .into_iter()
            .map(str::to_owned)
            .chain(["graph_stats".to_owned(), "edge_count".to_owned()])
            .collect();
        let truth_graphs: Vec<Graph> =
            example.truths.iter().map(|t| t.to_graph().unwrap()).collect();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let found = search_chain(
            example,
            &reg,
            &candidates,
            &truth_graphs,
            FinetuneMethod::Full,
            3,
            config.finetune.max_chain_len,
            config.finetune.alpha,
            &mut rng,
        );
        let truth: Vec<String> = example.truths[0]
            .api_names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        assert_eq!(found, truth);
    }

    #[test]
    fn teacher_forcing_builds_one_example_per_token_plus_eos() {
        let (lm, reg, retriever, corpus, config) = setup(8);
        let examples = build_examples(
            &lm,
            &reg,
            &retriever,
            &corpus,
            FinetuneMethod::TeacherForcing,
            &config,
        );
        let expected: usize = corpus.iter().map(|e| e.truths[0].len() + 1).sum();
        assert_eq!(examples.len(), expected);
    }

    #[test]
    fn methods_are_deterministic() {
        let (lm, reg, retriever, corpus, config) = setup(12);
        for method in [
            FinetuneMethod::Full,
            FinetuneMethod::TeacherForcing,
            FinetuneMethod::TokenOverlap,
        ] {
            let a = build_examples(&lm, &reg, &retriever, &corpus, method, &config);
            let b = build_examples(&lm, &reg, &retriever, &corpus, method, &config);
            assert_eq!(a.len(), b.len(), "{method:?}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.target, y.target);
                assert_eq!(x.features, y.features);
            }
        }
    }
}
