//! The multi-modal prompt: text plus an optional uploaded graph.

use chatgraph_graph::{io, Graph};

/// What the user submits in the input panel (paper Fig. 2, panel ③).
#[derive(Debug, Clone, PartialEq)]
pub struct Prompt {
    /// The natural-language question.
    pub text: String,
    /// The uploaded graph, if any.
    pub graph: Option<Graph>,
}

chatgraph_support::impl_json_struct!(Prompt { text, graph });

impl Prompt {
    /// A text-only prompt.
    pub fn text(text: impl Into<String>) -> Self {
        Prompt {
            text: text.into(),
            graph: None,
        }
    }

    /// A prompt carrying a graph.
    pub fn with_graph(text: impl Into<String>, graph: Graph) -> Self {
        Prompt {
            text: text.into(),
            graph: Some(graph),
        }
    }

    /// Parses a prompt whose graph arrives as edge-list text (the upload
    /// format of the demo UI).
    pub fn with_uploaded_graph(
        text: impl Into<String>,
        edge_list: &str,
    ) -> Result<Self, io::ParseError> {
        Ok(Prompt {
            text: text.into(),
            graph: Some(io::parse_edge_list(edge_list)?),
        })
    }

    /// Whether a graph is attached.
    pub fn has_graph(&self) -> bool {
        self.graph.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_only() {
        let p = Prompt::text("hello");
        assert!(!p.has_graph());
        assert_eq!(p.text, "hello");
    }

    #[test]
    fn uploaded_graph_is_parsed() {
        let p = Prompt::with_uploaded_graph("clean G", "graph g directed\nedge a b lives_in").unwrap();
        assert!(p.has_graph());
        let g = p.graph.unwrap();
        assert!(g.is_directed());
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn bad_upload_is_an_error() {
        assert!(Prompt::with_uploaded_graph("x", "wibble").is_err());
    }
}
