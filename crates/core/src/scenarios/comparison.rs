//! Scenario 2 — Chat-based Graph Comparison (paper Fig. 5).
//!
//! "A user submits a graph G and a text 'What molecules are similar to G'.
//! ChatGraph invokes the similarity search API for G against a molecule
//! graph database and outputs the top two similar molecules."

use super::ScenarioOutput;
use crate::prompt::Prompt;
use crate::session::ChatSession;
use chatgraph_apis::{CollectingMonitor, Value};
use chatgraph_graph::generators::{molecule_database, MoleculeParams};
use chatgraph_graph::Graph;

/// Runs the comparison scenario: attaches a seeded molecule database of
/// `db_size` graphs and asks for the molecules most similar to `query`.
pub fn run(
    session: &mut ChatSession,
    query: Graph,
    db_size: usize,
    seed: u64,
) -> ScenarioOutput {
    session.set_database(molecule_database(
        db_size,
        &MoleculeParams::default(),
        seed,
    ));
    let mut lines = vec![format!(
        "User: uploads molecule '{}' ({} atoms)",
        query.name(),
        query.node_count()
    )];
    let prompt_text = "What molecules are similar to G";
    lines.push(format!("User: {prompt_text}"));

    let response = session.send(Prompt::with_graph(prompt_text, query));
    lines.push(format!("ChatGraph: {}", response.message));
    lines.push("User: confirms the chain".to_owned());

    let mut monitor = CollectingMonitor::new();
    let result = session
        .run_chain(&response.chain, &mut monitor)
        .unwrap_or(Value::Unit);
    if let Value::Table(t) = &result {
        for l in t.to_text().lines() {
            lines.push(format!("ChatGraph: {l}"));
        }
    } else {
        lines.push(format!("ChatGraph: {}", result.summary()));
    }
    ScenarioOutput {
        title: "Scenario 2: Chat-based Graph Comparison".to_owned(),
        lines,
        chain: response.chain,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::test_support::with_session;
    use chatgraph_graph::generators::molecule_database;

    #[test]
    fn finds_identical_molecule_at_rank_one() {
        with_session(|s| {
            // Query = a copy of database molecule 5 (same generation seed).
            let db = molecule_database(30, &MoleculeParams::default(), 123);
            let query = db[5].clone();
            let out = run(s, query, 30, 123);
            assert!(
                out.chain.api_names().contains(&"similarity_search"),
                "chain: {}",
                out.chain
            );
            let t = out.result.as_table().expect("similarity table");
            assert_eq!(t.rows.len(), 2, "paper outputs the top two molecules");
            assert_eq!(t.rows[0][1], "db-mol-5");
        });
    }

    #[test]
    fn transcript_contains_ranked_molecules() {
        with_session(|s| {
            let db = molecule_database(10, &MoleculeParams::default(), 9);
            let out = run(s, db[0].clone(), 10, 9);
            let text = out.render();
            assert!(text.contains("similar"));
            assert!(text.contains("db-mol-"), "{text}");
        });
    }
}
