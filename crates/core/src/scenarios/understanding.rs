//! Scenario 1 — Chat-based Graph Understanding (paper Fig. 4).
//!
//! "A user submits a graph G and a text 'Write a brief report for G'.
//! ChatGraph first predicts the type of G. If G is a social network,
//! social-specific APIs (e.g., community and connectivity) will be invoked
//! to analyze G. Similarly, if G is a molecule graph, molecule-specific APIs
//! (e.g., toxicity and solubility) will be invoked. A report is generated
//! based on the results of the APIs."

use super::ScenarioOutput;
use crate::prompt::Prompt;
use crate::session::ChatSession;
use chatgraph_apis::{CollectingMonitor, Value};
use chatgraph_graph::Graph;

/// Runs the understanding scenario on an arbitrary uploaded graph.
pub fn run(session: &mut ChatSession, graph: Graph) -> ScenarioOutput {
    let mut lines = vec![format!(
        "User: uploads graph '{}' ({} nodes, {} edges)",
        graph.name(),
        graph.node_count(),
        graph.edge_count()
    )];
    let prompt_text = "Write a brief report for G";
    lines.push(format!("User: {prompt_text}"));

    let response = session.send(Prompt::with_graph(prompt_text, graph));
    lines.push(format!("ChatGraph: {}", response.message));

    lines.push("User: confirms the chain".to_owned());
    let mut monitor = CollectingMonitor::new();
    let result = session
        .run_chain(&response.chain, &mut monitor)
        .unwrap_or(Value::Unit);
    if let Value::Report(report) = &result {
        for l in report.to_text().lines() {
            lines.push(format!("ChatGraph: {l}"));
        }
    } else {
        lines.push(format!("ChatGraph: {}", result.summary()));
    }
    ScenarioOutput {
        title: "Scenario 1: Chat-based Graph Understanding".to_owned(),
        lines,
        chain: response.chain,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::test_support::with_session;
    use chatgraph_graph::generators::{molecule, social_network, MoleculeParams, SocialParams};

    #[test]
    fn social_graph_gets_social_report() {
        with_session(|s| {
            let g = social_network(&SocialParams::default(), 21);
            let out = run(s, g);
            let names = out.chain.api_names();
            assert!(
                names.contains(&"detect_communities") || names.contains(&"connectivity_report"),
                "social chain: {}",
                out.chain
            );
            assert!(names.contains(&"generate_report"), "chain: {}", out.chain);
            let report = out.result.as_report().expect("scenario ends in a report");
            assert!(report.to_text().contains("nodes"));
        });
    }

    #[test]
    fn molecule_graph_gets_molecule_report() {
        with_session(|s| {
            let g = molecule(&MoleculeParams::default(), 21);
            let out = run(s, g);
            let names = out.chain.api_names();
            assert!(
                names.contains(&"predict_toxicity") || names.contains(&"predict_solubility"),
                "molecule chain: {}",
                out.chain
            );
            assert!(out.result.as_report().is_some());
        });
    }

    #[test]
    fn transcript_shows_full_dialog() {
        with_session(|s| {
            let g = social_network(&SocialParams::default(), 22);
            let out = run(s, g);
            let text = out.render();
            assert!(text.contains("User: Write a brief report for G"));
            assert!(text.contains("ChatGraph:"));
            assert!(text.contains("confirms the chain"));
        });
    }
}
