//! Runnable reproductions of the paper's four demonstration scenarios
//! (§IV, Figs. 4–7).
//!
//! Each scenario drives a [`crate::ChatSession`] end-to-end — prompt →
//! retrieval → chain generation → confirmation → execution — and returns a
//! [`ScenarioOutput`] with the printable transcript plus the artifacts the
//! paper's figure shows, so examples and experiments can assert on them.

pub mod cleaning;
pub mod comparison;
pub mod monitoring;
pub mod understanding;

use chatgraph_apis::{ApiChain, Value};

/// What one scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioOutput {
    /// Scenario title.
    pub title: String,
    /// Printable transcript lines (the dialog panel's content).
    pub lines: Vec<String>,
    /// The executed API chain.
    pub chain: ApiChain,
    /// The final value the chain produced.
    pub result: Value,
}

impl ScenarioOutput {
    /// Renders the scenario as plain text.
    pub fn render(&self) -> String {
        let mut out = format!("=== {} ===\n", self.title);
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! One shared bootstrapped session for all scenario tests — bootstrap
    //! finetunes a model, which is too slow to repeat per test.

    use crate::{ChatGraphConfig, ChatSession};
    use std::sync::{Mutex, OnceLock};

    static SESSION: OnceLock<Mutex<ChatSession>> = OnceLock::new();

    pub fn with_session<T>(f: impl FnOnce(&mut ChatSession) -> T) -> T {
        let m = SESSION.get_or_init(|| {
            let config = ChatGraphConfig::default();
            let (session, _) =
                ChatSession::bootstrap(config, 192).expect("default config is valid");
            Mutex::new(session)
        });
        // Recover from poisoning: a failed assertion in one scenario test
        // must not cascade into the others.
        let mut guard = m.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }
}
