//! Runnable reproductions of the paper's four demonstration scenarios
//! (§IV, Figs. 4–7).
//!
//! Each scenario drives a [`crate::ChatSession`] end-to-end — prompt →
//! retrieval → chain generation → confirmation → execution — and returns a
//! [`ScenarioOutput`] with the printable transcript plus the artifacts the
//! paper's figure shows, so examples and experiments can assert on them.

pub mod cleaning;
pub mod comparison;
pub mod monitoring;
pub mod understanding;

use chatgraph_apis::{ApiChain, Value};

/// What one scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioOutput {
    /// Scenario title.
    pub title: String,
    /// Printable transcript lines (the dialog panel's content).
    pub lines: Vec<String>,
    /// The executed API chain.
    pub chain: ApiChain,
    /// The final value the chain produced.
    pub result: Value,
}

impl ScenarioOutput {
    /// Renders the scenario as plain text.
    pub fn render(&self) -> String {
        let mut out = format!("=== {} ===\n", self.title);
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! One shared finetuned [`SessionCore`] for all scenario tests —
    //! bootstrap finetunes a model, which is too slow to repeat per test.
    //!
    //! Only the immutable core is shared. Each test runs on a FRESH
    //! per-tenant session opened through a [`SessionServer`], the same
    //! path production tenants take. The previous process-global
    //! mutexed session singleton recovered poisoned locks with
    //! `into_inner`, so a test that panicked mid-scenario leaked its
    //! half-mutated graph, database, and transcript into every later
    //! test; per-tenant sessions make that aliasing impossible.

    use crate::serve::{ServeConfig, SessionServer};
    use crate::session::SessionCore;
    use crate::{ChatGraphConfig, ChatSession};
    use std::sync::{Arc, OnceLock};

    static CORE: OnceLock<Arc<SessionCore>> = OnceLock::new();

    /// The shared finetuned core (config/registry/retriever/model — all
    /// read-only), bootstrapped once per test binary.
    pub fn shared_core() -> Arc<SessionCore> {
        Arc::clone(CORE.get_or_init(|| {
            let (core, _) = SessionCore::bootstrap(ChatGraphConfig::default(), 192)
                .expect("default config is valid");
            core
        }))
    }

    /// Runs `f` on a fresh tenant session served off the shared core.
    pub fn with_session<T>(f: impl FnOnce(&mut ChatSession) -> T) -> T {
        let server = SessionServer::from_core(shared_core(), ServeConfig::default())
            .expect("default serve config is valid");
        let tenant = server.open_session().expect("fresh server has capacity");
        server
            .with_session(tenant, f)
            .expect("fresh session cannot be poisoned")
    }
}
