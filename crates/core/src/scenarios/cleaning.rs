//! Scenario 3 — Chat-based Graph Cleaning (paper Fig. 6).
//!
//! "A user submits a knowledge graph G and a text 'Clean G'. ChatGraph
//! first invokes the knowledge inference APIs to detect the incorrect edges
//! and the missing edges in G and asks the user for confirmation. After
//! that, the graph edit APIs are invoked to edit the edges in G. … G is
//! cleaned and outputted to file."

use super::ScenarioOutput;
use crate::prompt::Prompt;
use crate::session::ChatSession;
use chatgraph_apis::{ChainEvent, CollectingMonitor, Value};
use chatgraph_graph::generators::CorruptionReport;
use chatgraph_graph::Graph;

/// Cleaning quality against the injected ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct CleaningStats {
    /// Ground-truth corrupted facts.
    pub injected_wrong: usize,
    /// Ground-truth deleted facts.
    pub removed_facts: usize,
    /// Wrong edges remaining after cleaning.
    pub residual_wrong: usize,
    /// Facts still missing after cleaning.
    pub residual_missing: usize,
    /// Confirmation prompts the user answered.
    pub confirmations: usize,
}

/// Runs the cleaning scenario on a corrupted KG, validating the result
/// against the corruption ground truth.
pub fn run(
    session: &mut ChatSession,
    corrupted: Graph,
    truth: &CorruptionReport,
) -> (ScenarioOutput, CleaningStats) {
    let mut lines = vec![format!(
        "User: uploads knowledge graph '{}' ({} entities, {} facts)",
        corrupted.name(),
        corrupted.node_count(),
        corrupted.edge_count()
    )];
    let prompt_text = "Clean G";
    lines.push(format!("User: {prompt_text}"));

    let response = session.send(Prompt::with_graph(prompt_text, corrupted));
    lines.push(format!("ChatGraph: {}", response.message));
    lines.push("User: confirms the chain and each edit".to_owned());

    let mut monitor = CollectingMonitor::new();
    let result = session
        .run_chain(&response.chain, &mut monitor)
        .unwrap_or(Value::Unit);
    for event in &monitor.events {
        if let ChainEvent::StepFinished { api, summary, .. } = event {
            lines.push(format!("ChatGraph: [{api}] -> {summary}"));
        }
        if let ChainEvent::ConfirmationRequested { api, .. } = event {
            lines.push(format!("ChatGraph: please confirm '{api}'"));
            lines.push("User: yes".to_owned());
        }
    }
    if let Value::Text(file) = &result {
        lines.push(format!(
            "ChatGraph: G is cleaned and outputted to file ({} bytes)",
            file.len()
        ));
    }

    // Score the cleaned session graph against the ground truth. `run_chain`
    // always restores the session graph, so fall back to an empty graph
    // only defensively.
    let empty = Graph::directed();
    let cleaned = session.graph().unwrap_or(&empty);
    let has_fact = |s, d, rel: &str| {
        cleaned
            .neighbors(s)
            .any(|(v, e)| v == d && cleaned.edge_label(e).is_ok_and(|l| l == rel))
    };
    let residual_wrong = truth
        .injected_wrong
        .iter()
        .filter(|(s, d, rel)| has_fact(*s, *d, rel))
        .count();
    let residual_missing = truth
        .removed
        .iter()
        .filter(|(s, d, rel)| !has_fact(*s, *d, rel))
        .count();
    let stats = CleaningStats {
        injected_wrong: truth.injected_wrong.len(),
        removed_facts: truth.removed.len(),
        residual_wrong,
        residual_missing,
        confirmations: monitor.confirm_log.len(),
    };
    (
        ScenarioOutput {
            title: "Scenario 3: Chat-based Graph Cleaning".to_owned(),
            lines,
            chain: response.chain,
            result,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::test_support::with_session;
    use chatgraph_graph::generators::{corrupt_kg, knowledge_graph, KgParams};

    #[test]
    fn cleaning_removes_all_injected_noise() {
        with_session(|s| {
            let mut g = knowledge_graph(&KgParams::default(), 31);
            let truth = corrupt_kg(&mut g, 0.08, 0.05, 31);
            assert!(!truth.injected_wrong.is_empty());
            let (out, stats) = run(s, g, &truth);
            let names = out.chain.api_names();
            assert!(names.contains(&"detect_incorrect_edges"), "chain: {}", out.chain);
            assert!(names.contains(&"remove_edges"), "chain: {}", out.chain);
            assert!(names.contains(&"detect_missing_edges"), "chain: {}", out.chain);
            assert!(names.contains(&"add_edges"), "chain: {}", out.chain);
            assert_eq!(stats.residual_wrong, 0, "{stats:?}");
            assert_eq!(stats.residual_missing, 0, "{stats:?}");
            assert!(stats.confirmations >= 2, "edits must be confirmed: {stats:?}");
        });
    }

    #[test]
    fn cleaned_graph_is_schema_consistent() {
        with_session(|s| {
            let mut g = knowledge_graph(&KgParams::default(), 32);
            let truth = corrupt_kg(&mut g, 0.1, 0.06, 32);
            let _ = run(s, g, &truth);
            let cleaned = s.graph().unwrap();
            assert!(chatgraph_apis::impls::kg::incorrect_edges(cleaned).is_empty());
            assert!(chatgraph_apis::impls::kg::missing_edges(cleaned).is_empty());
        });
    }
}
