//! # chatgraph-core
//!
//! The ChatGraph framework itself (paper §II, Fig. 1): the three modules
//! wired together behind a chat interface.
//!
//! ```text
//! user prompt (text + graph)
//!   ├─ API retrieval module        → candidate APIs          [retrieval]
//!   ├─ graph-aware LLM module      → next-token scores       [graph_aware]
//!   └─ API chain-oriented finetune → trained scorer          [finetune]
//!          ⇓
//!   API chain → user confirmation → execution with monitoring [session]
//! ```
//!
//! * [`config`] — every knob of the paper's configuration panel (Fig. 3).
//! * [`prompt`] — the multi-modal prompt (text + optional graph).
//! * [`retrieval`] — embeds API descriptions, indexes them in a τ-MG, and
//!   retrieves candidates for a prompt (§II-A, §II-D).
//! * [`graph_aware`] — the graph-aware LLM module: sequentialiser-backed
//!   features + the trainable next-API model (§II-B).
//! * [`generation`] — chain decoding restricted to retrieved candidates.
//! * [`dataset`] — the synthetic question → API-chain corpus standing in for
//!   the paper's logged student sessions (§II-C "Dataset preparation").
//! * [`mod@finetune`] — API chain-oriented finetuning: search-based prediction
//!   with random rollouts scored by the node matching-based loss (§II-C).
//! * [`session`] — the chat loop: graph-type prediction, suggested
//!   questions, chain confirmation, execution, transcripts (Fig. 2).
//! * [`scenarios`] — runnable reproductions of the four demo scenarios
//!   (Figs. 4–7).
//! * [`serve`] — the multi-tenant session server: many concurrent sessions
//!   over one shared core, worker pool, and cross-session caches
//!   (DESIGN.md §12).

pub mod config;
pub mod dataset;
pub mod finetune;
pub mod generation;
pub mod graph_aware;
pub mod prompt;
pub mod retrieval;
pub mod scenarios;
pub mod serve;
pub mod session;

pub use config::{ChatGraphConfig, ExecConfig, StoreConfig};
pub use dataset::{generate_corpus, CorpusParams, QaExample};
pub use finetune::{evaluate, finetune, EvalReport, FinetuneMethod, FinetuneReport};
pub use generation::ChainGenerator;
pub use graph_aware::GraphAwareLm;
pub use prompt::Prompt;
pub use retrieval::ApiRetriever;
pub use serve::{Completed, Reply, Request, ServeConfig, ServeError, SessionServer, TenantId};
pub use session::{ChatResponse, ChatSession, SessionCore, SessionError};
