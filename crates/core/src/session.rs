//! The chat session: ChatGraph's user-facing loop (paper Fig. 2).
//!
//! A [`ChatSession`] mirrors the three panels of the demo UI:
//!
//! * panel ① (dialog): [`ChatSession::transcript`] accumulates turns;
//! * panel ② (suggested questions): [`ChatSession::suggest_questions`];
//! * panel ③ (input): [`ChatSession::send`] takes a [`Prompt`].
//!
//! `send` proposes an API chain *without executing it* — the paper's
//! scenario 4 requires the user to confirm (and possibly edit) the chain —
//! and [`ChatSession::run_chain`] then executes a (possibly edited) chain
//! against the uploaded graph with full monitoring.
//!
//! ## Core vs. session
//!
//! The expensive, immutable parts — configuration, registry, retriever and
//! the finetuned model — live in a [`SessionCore`] shared behind `Arc`.
//! [`ChatSession::bootstrap`] builds a core and wraps one session around
//! it; [`crate::serve::SessionServer`] builds a core once and multiplexes
//! hundreds of cheap per-tenant sessions over it. Each session owns only
//! its mutable state: scheduler (with memo), graph, database, transcript.
//!
//! ## Graph epochs
//!
//! The session graph lives behind a copy-on-write `Arc<Graph>` and carries
//! a monotonically increasing *mutation epoch*
//! ([`ChatSession::graph_epoch`]). Replacing the graph (a new upload in
//! [`ChatSession::send`] or [`ChatSession::set_graph`]) and mutating it (an
//! edit chain in [`ChatSession::run_chain`]) both advance the epoch,
//! allocate a fresh `Arc`, and evict the dead epoch's snapshot from the
//! CSR cache — mandatory once the cache is shared across sessions, where
//! an unevicted entry would pin another tenant's memory.

use crate::config::ChatGraphConfig;
use crate::dataset::{generate_corpus, CorpusParams};
use crate::finetune::{finetune, FinetuneMethod, FinetuneReport};
use crate::generation::{candidate_apis, ChainGenerator};
use crate::graph_aware::GraphAwareLm;
use crate::prompt::Prompt;
use crate::retrieval::ApiRetriever;
use chatgraph_analyzer::diag::Diagnostics;
use chatgraph_apis::{
    registry, ApiChain, ApiRegistry, ChainError, ChainEvent, CommitAck, CommitSink, ExecContext,
    KernelState, Monitor, Scheduler, StepMemo, Value,
};
use chatgraph_graph::csr::CsrCache;
use chatgraph_graph::stats::CatalogCache;
use chatgraph_graph::Graph;
use chatgraph_store::{GraphStore, RecoveryReport, StoreOpened};
use std::path::Path;
use std::sync::Arc;

/// Why a session could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The configuration failed [`ChatGraphConfig::validate`].
    InvalidConfig(Vec<String>),
    /// A saved model could not be parsed.
    Model(String),
    /// The durable store could not be opened or written.
    Store(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::InvalidConfig(problems) => {
                write!(f, "invalid config: {}", problems.join("; "))
            }
            SessionError::Model(e) => write!(f, "saved model is unusable: {e}"),
            SessionError::Store(e) => write!(f, "durable store error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Adapts a [`GraphStore`] to the scheduler's [`CommitSink`]: every
/// successful mutation barrier becomes one durable WAL commit, appended and
/// fsynced before the barrier's effects are published to the chain.
#[derive(Debug)]
struct StoreSink(Arc<GraphStore>);

impl CommitSink for StoreSink {
    fn commit(&self, graph: &Graph) -> Result<CommitAck, String> {
        self.0
            .commit(graph)
            .map(|r| CommitAck { epoch: r.epoch, records: r.records, bytes: r.bytes })
            .map_err(|e| e.to_string())
    }
}

/// One transcript turn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Turn {
    /// The user's message.
    User(String),
    /// The system's reply.
    System(String),
}

/// The system's answer to one prompt.
#[derive(Debug, Clone)]
pub struct ChatResponse {
    /// The proposed API chain (awaiting confirmation).
    pub chain: ApiChain,
    /// The candidate APIs that were offered to the decoder.
    pub candidates: Vec<String>,
    /// The predicted graph type, when a graph was attached.
    pub graph_type: Option<String>,
    /// Static-analysis findings on the proposed chain (scenario 4: shown to
    /// the user alongside the confirmation request, before execution).
    pub diagnostics: Diagnostics,
    /// The reply text shown in the dialog panel.
    pub message: String,
}

/// The immutable, shareable part of the stack: configuration, registry,
/// retriever, and the finetuned graph-aware model.
///
/// Building a core is expensive (it finetunes the model); wrapping a
/// [`ChatSession`] around an existing `Arc<SessionCore>` is cheap. All
/// fields are read-only after construction, so one core safely serves any
/// number of concurrent sessions.
pub struct SessionCore {
    config: ChatGraphConfig,
    registry: ApiRegistry,
    retriever: ApiRetriever,
    lm: GraphAwareLm,
    generator: ChainGenerator,
}

impl SessionCore {
    /// Builds a core: standard registry, retriever over it, and a model
    /// finetuned on the synthetic corpus (the offline stand-in for the
    /// paper's pre-finetuned checkpoints).
    pub fn bootstrap(
        config: ChatGraphConfig,
        corpus_size: usize,
    ) -> Result<(Arc<SessionCore>, FinetuneReport), SessionError> {
        config.validate().map_err(SessionError::InvalidConfig)?;
        let registry = registry::standard();
        let retriever = ApiRetriever::build(&registry, &config.retrieval);
        let mut lm = GraphAwareLm::new(&registry, &config);
        let corpus = generate_corpus(
            &CorpusParams {
                size: corpus_size,
                small_graphs: true,
            },
            config.seed,
        );
        let report = finetune(
            &mut lm,
            &registry,
            &retriever,
            &corpus,
            FinetuneMethod::Full,
            &config,
        );
        Ok((Arc::new(SessionCore::assemble(config, registry, retriever, lm)), report))
    }

    /// Builds a core around a previously finetuned model (saved with
    /// [`SessionCore::save_model`]), skipping the finetuning pass.
    pub fn from_saved_model(
        config: ChatGraphConfig,
        model_json: &str,
    ) -> Result<Arc<SessionCore>, SessionError> {
        config.validate().map_err(SessionError::InvalidConfig)?;
        let registry = registry::standard();
        let retriever = ApiRetriever::build(&registry, &config.retrieval);
        let lm = GraphAwareLm::load_json(model_json)
            .map_err(|e| SessionError::Model(e.to_string()))?;
        Ok(Arc::new(SessionCore::assemble(config, registry, retriever, lm)))
    }

    fn assemble(
        config: ChatGraphConfig,
        registry: ApiRegistry,
        retriever: ApiRetriever,
        lm: GraphAwareLm,
    ) -> SessionCore {
        let generator = ChainGenerator {
            max_len: config.finetune.max_chain_len,
        };
        SessionCore {
            config,
            registry,
            retriever,
            lm,
            generator,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ChatGraphConfig {
        &self.config
    }

    /// The API registry.
    pub fn registry(&self) -> &ApiRegistry {
        &self.registry
    }

    /// The retrieval module.
    pub fn retriever(&self) -> &ApiRetriever {
        &self.retriever
    }

    /// Serialises the finetuned model for [`SessionCore::from_saved_model`].
    pub fn save_model(&self) -> String {
        self.lm.save_json()
    }
}

/// A full ChatGraph session: one tenant's mutable state over a shared
/// [`SessionCore`].
pub struct ChatSession {
    core: Arc<SessionCore>,
    scheduler: Scheduler,
    /// CSR snapshot cache used by this session's executions. Private by
    /// default; [`ChatSession::use_shared_csr`] swaps in a server-global
    /// one.
    csr_cache: Arc<CsrCache>,
    /// Statistics catalogs per mutation epoch, shared with executions so
    /// the planner's cost model prices steps from a cached O(n + m) pass.
    catalog_cache: Arc<CatalogCache>,
    /// The graph uploaded most recently (the session graph), shared
    /// copy-on-write with executions and caches.
    graph: Option<Arc<Graph>>,
    /// Mutation epoch of the session graph; see the module docs.
    graph_epoch: u64,
    /// The molecule database for similarity search, shared with executions
    /// without copying.
    pub database: Arc<Vec<Graph>>,
    transcript: Vec<Turn>,
    /// The durable store backing this session, when one is attached.
    store: Option<Arc<GraphStore>>,
    /// A recovery performed at open, not yet surfaced: the next
    /// [`ChatSession::run_chain`] emits it as [`ChainEvent::Recovered`].
    pending_recovery: Option<RecoveryReport>,
}

impl ChatSession {
    /// Builds a session with its own private core — bootstrap finetunes a
    /// model, so this is expensive; to share the cost across sessions use
    /// [`SessionCore::bootstrap`] + [`ChatSession::from_core`] (what
    /// [`crate::serve::SessionServer`] does).
    pub fn bootstrap(
        config: ChatGraphConfig,
        corpus_size: usize,
    ) -> Result<(Self, FinetuneReport), SessionError> {
        let (core, report) = SessionCore::bootstrap(config, corpus_size)?;
        let mut session = ChatSession::from_core(core);
        session.open_configured_store()?;
        Ok((session, report))
    }

    /// Builds a session around a previously finetuned model (saved with
    /// [`ChatSession::save_model`]), skipping the finetuning pass.
    pub fn from_saved_model(
        config: ChatGraphConfig,
        model_json: &str,
    ) -> Result<Self, SessionError> {
        let core = SessionCore::from_saved_model(config, model_json)?;
        let mut session = ChatSession::from_core(core);
        session.open_configured_store()?;
        Ok(session)
    }

    /// Restores a full session from a durable store file: the finetuned
    /// model comes from the store's `Model` record, the graph from its last
    /// committed epoch. The recovery is also left pending, so the first
    /// `run_chain` surfaces it as [`ChainEvent::Recovered`].
    pub fn from_store(
        config: ChatGraphConfig,
        path: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryReport), SessionError> {
        let (store, report) =
            GraphStore::open(path).map_err(|e| SessionError::Store(e.to_string()))?;
        let model = store
            .model()
            .ok_or_else(|| SessionError::Store("store holds no saved model".to_owned()))?;
        let core = SessionCore::from_saved_model(config, &model)?;
        let mut session = ChatSession::from_core(core);
        session.install_graph(Arc::new(store.graph()));
        session.pending_recovery = Some(report);
        session.attach_store(Arc::new(store));
        Ok((session, report))
    }

    /// Wraps a cheap new session around a shared core. The scheduler is
    /// built through `Scheduler::from_exec_config` — the single
    /// construction path for every exec knob.
    pub fn from_core(core: Arc<SessionCore>) -> Self {
        let scheduler = Scheduler::from_exec_config(&core.config.exec.profile());
        ChatSession {
            core,
            scheduler,
            csr_cache: Arc::new(CsrCache::default()),
            catalog_cache: Arc::new(CatalogCache::default()),
            graph: None,
            graph_epoch: 0,
            database: Arc::new(Vec::new()),
            transcript: Vec::new(),
            store: None,
            pending_recovery: None,
        }
    }

    /// The shared core this session runs on.
    pub fn core(&self) -> &Arc<SessionCore> {
        &self.core
    }

    /// Serialises the finetuned model for [`ChatSession::from_saved_model`].
    pub fn save_model(&self) -> String {
        self.core.save_model()
    }

    /// The configuration in use.
    pub fn config(&self) -> &ChatGraphConfig {
        self.core.config()
    }

    /// The API registry.
    pub fn registry(&self) -> &ApiRegistry {
        self.core.registry()
    }

    /// The retrieval module.
    pub fn retriever(&self) -> &ApiRetriever {
        self.core.retriever()
    }

    /// The dialog transcript (panel ①).
    pub fn transcript(&self) -> &[Turn] {
        &self.transcript
    }

    /// The session graph, if one was uploaded.
    pub fn graph(&self) -> Option<&Graph> {
        self.graph.as_deref()
    }

    /// The session graph behind its copy-on-write handle.
    pub fn graph_arc(&self) -> Option<&Arc<Graph>> {
        self.graph.as_ref()
    }

    /// The session graph's mutation epoch: advanced on every replacement
    /// (upload) and every mutating chain. Cache consumers keying state on
    /// the graph must observe a new epoch as a new graph.
    pub fn graph_epoch(&self) -> u64 {
        self.graph_epoch
    }

    /// Replaces the session graph, advancing the mutation epoch and
    /// evicting the replaced epoch's CSR snapshot. With a store attached
    /// the upload is durably committed as its own epoch (best-effort: a
    /// commit failure marks the store dead and surfaces as
    /// [`ChainError::CommitFailed`] on the next mutating chain).
    pub fn set_graph(&mut self, graph: Graph) {
        self.install_graph(Arc::new(graph));
        if let (Some(store), Some(g)) = (&self.store, &self.graph) {
            let _ = store.commit(g);
        }
    }

    /// Opens (or creates) a durable store at `path` and attaches it: the
    /// current graph (or an empty one) seeds a fresh file; an existing file
    /// is recovered and its last committed graph replaces the session
    /// graph. Once attached, every mutation barrier is WAL-committed before
    /// its effects are published.
    pub fn open_store(&mut self, path: impl AsRef<Path>) -> Result<StoreOpened, SessionError> {
        let init = match &self.graph {
            Some(g) => (**g).clone(),
            None => Graph::undirected(),
        };
        let (store, opened) =
            GraphStore::open_or_create(path, &init).map_err(|e| SessionError::Store(e.to_string()))?;
        if let StoreOpened::Recovered(report) = opened {
            self.install_graph(Arc::new(store.graph()));
            self.pending_recovery = Some(report);
        }
        self.attach_store(Arc::new(store));
        Ok(opened)
    }

    /// Detaches the durable store: mutations stop being logged; the file
    /// keeps its last durable state.
    pub fn close_store(&mut self) {
        self.store = None;
        self.scheduler.set_commit_sink(None);
    }

    /// The attached durable store, if any.
    pub fn store(&self) -> Option<&Arc<GraphStore>> {
        self.store.as_ref()
    }

    /// Durably saves the finetuned model into the attached store, so
    /// [`ChatSession::from_store`] can restore the full session from the
    /// one file.
    pub fn persist_model(&self) -> Result<(), SessionError> {
        let store = self
            .store
            .as_ref()
            .ok_or_else(|| SessionError::Store("no store attached".to_owned()))?;
        store
            .put_model(&self.save_model())
            .map_err(|e| SessionError::Store(e.to_string()))
    }

    /// Compacts the attached store's WAL now (the REPL's `:checkpoint`).
    pub fn checkpoint_store(&self) -> Result<chatgraph_store::CheckpointReport, SessionError> {
        let store = self
            .store
            .as_ref()
            .ok_or_else(|| SessionError::Store("no store attached".to_owned()))?;
        store.checkpoint().map_err(|e| SessionError::Store(e.to_string()))
    }

    fn attach_store(&mut self, store: Arc<GraphStore>) {
        self.scheduler
            .set_commit_sink(Some(Arc::new(StoreSink(Arc::clone(&store)))));
        self.store = Some(store);
    }

    fn open_configured_store(&mut self) -> Result<(), SessionError> {
        if self.core.config.store.enabled() {
            let path = self.core.config.store.path.clone();
            self.open_store(path)?;
        }
        Ok(())
    }

    /// Removes and returns the session graph (cloning only if it is still
    /// shared elsewhere), advancing the mutation epoch.
    pub fn take_graph(&mut self) -> Option<Graph> {
        let old = self.graph.take()?;
        self.graph_epoch += 1;
        self.csr_cache.invalidate(&old);
        Some(Arc::try_unwrap(old).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Installs `graph` as the current epoch: bumps the epoch counter and
    /// evicts the dead epoch's snapshot from the (possibly shared) CSR
    /// cache. Always a fresh `Arc`, so pointer-keyed caches can never serve
    /// kernels off the replaced graph.
    fn install_graph(&mut self, graph: Arc<Graph>) {
        if let Some(old) = self.graph.take() {
            self.csr_cache.invalidate(&old);
        }
        self.graph_epoch += 1;
        self.graph = Some(graph);
    }

    /// Attaches a molecule database for similarity search.
    pub fn set_database(&mut self, database: Vec<Graph>) {
        self.database = Arc::new(database);
    }

    /// Routes this session's pure-step memoization through a shared
    /// (server-global) cache. Sound across tenants: keys fingerprint api,
    /// params, seed, graph and inputs, and only `Ok` results are stored.
    pub fn use_shared_memo(&mut self, memo: Arc<StepMemo>) {
        self.scheduler.set_shared_memo(memo);
    }

    /// Routes this session's CSR snapshots through a shared
    /// (server-global) cache. Entries are keyed by `Arc` pointer identity,
    /// and every replacement/mutation allocates a fresh `Arc` and evicts
    /// the dead epoch, so tenants cannot observe each other's snapshots as
    /// their own.
    pub fn use_shared_csr(&mut self, cache: Arc<CsrCache>) {
        self.csr_cache = cache;
    }

    /// Arms (or clears) deterministic fault injection on the chain
    /// scheduler — the REPL's `:faults` command and the test harness.
    pub fn set_fault_plan(&mut self, faults: Option<chatgraph_apis::FaultPlan>) {
        self.scheduler.set_fault_plan(faults);
    }

    /// Overrides the supervisor failure policy for this session only.
    pub fn set_failure_policy(&mut self, policy: chatgraph_apis::FailurePolicy) {
        self.scheduler.supervisor_mut().failure_policy = policy;
    }

    /// The chain scheduler's supervisor configuration.
    pub fn supervisor(&self) -> &chatgraph_apis::SupervisorConfig {
        self.scheduler.supervisor()
    }

    /// A handle to this session's step memo (shared or private).
    pub fn memo_handle(&self) -> Arc<StepMemo> {
        self.scheduler.memo_handle()
    }

    /// Suggested questions for the current graph (panel ②), driven by the
    /// predicted graph type.
    pub fn suggest_questions(&self) -> Vec<String> {
        let kind = self
            .graph
            .as_deref()
            .map(chatgraph_apis::impls::structure::predict_type)
            .unwrap_or("generic");
        let suggestions: &[&str] = match kind {
            "social" => &[
                "Write a brief report for G",
                "What communities exist in G?",
                "Who are the most influential users?",
                "Is the network connected?",
            ],
            "molecule" => &[
                "Write a brief report for G",
                "How toxic is this molecule?",
                "What molecules are similar to G?",
                "What is the chemical formula of G?",
            ],
            "knowledge" => &[
                "Clean G",
                "Are there schema violations in G?",
                "What facts does G contain?",
            ],
            _ => &[
                "How big is this graph?",
                "Is the graph connected?",
            ],
        };
        suggestions.iter().map(|s| s.to_string()).collect()
    }

    /// Handles one prompt: stores the uploaded graph, retrieves candidates,
    /// generates a chain, and proposes it for confirmation.
    pub fn send(&mut self, prompt: Prompt) -> ChatResponse {
        self.transcript.push(Turn::User(prompt.text.clone()));
        if let Some(g) = prompt.graph {
            // A new upload is a new mutation epoch: fresh `Arc`, bumped
            // counter, dead snapshot evicted — pointer-keyed caches must
            // not keep serving the replaced graph.
            self.set_graph(g);
        }
        let graph_type = self
            .graph
            .as_deref()
            .map(|g| chatgraph_apis::impls::structure::predict_type(g).to_owned());
        let candidates = candidate_apis(
            &self.core.registry,
            &self.core.retriever,
            &prompt.text,
            self.graph.as_deref(),
        );
        let chain = self.core.generator.generate_greedy_checked(
            &self.core.lm,
            &self.core.registry,
            &prompt.text,
            self.graph.as_deref(),
            &candidates,
        );
        // Scenario 4: analyse the proposal before the user confirms, so the
        // warnings (bad parameters, discarded outputs, confirmation-gated
        // steps) are visible while the chain can still be edited.
        let diagnostics = if chain.is_empty() {
            Diagnostics::new()
        } else {
            chatgraph_apis::analysis::analyze(&chain, &self.core.registry, self.graph.is_some())
        };
        let mut message = match (&graph_type, chain.is_empty()) {
            (_, true) => "I could not find a suitable API chain; please rephrase.".to_owned(),
            (Some(t), false) => format!(
                "G looks like a {t} graph. I propose the API chain: {chain}. Confirm to execute."
            ),
            (None, false) => format!(
                "I propose the API chain: {chain}. Confirm to execute."
            ),
        };
        if !diagnostics.is_empty() {
            message.push_str("\nAnalysis notes:\n");
            message.push_str(&diagnostics.render_text());
        }
        self.transcript.push(Turn::System(message.clone()));
        ChatResponse {
            chain,
            candidates,
            graph_type,
            diagnostics,
            message,
        }
    }

    /// Executes a (confirmed, possibly user-edited) chain against the
    /// session graph, streaming progress through `monitor`. The session
    /// graph is updated in place by edit APIs.
    ///
    /// Execution goes through the plan [`Scheduler`] configured by
    /// [`crate::config::ExecConfig`]: with `workers: 1` this is exactly the
    /// sequential executor; with more workers, independent read-only steps
    /// run concurrently over a shared graph snapshot, with identical
    /// results.
    pub fn run_chain(
        &mut self,
        chain: &ApiChain,
        monitor: &mut dyn Monitor,
    ) -> Result<Value, ChainError> {
        // Surface a recovery performed at open on the first chain after it,
        // in-stream with the execution events.
        if let Some(r) = self.pending_recovery.take() {
            monitor.on_event(&ChainEvent::Recovered {
                epoch: r.epoch,
                records_replayed: r.records_replayed,
                tail_dropped: r.tail_dropped,
            });
        }
        let before = match &self.graph {
            Some(g) => Arc::clone(g),
            None => Arc::new(Graph::undirected()),
        };
        let mut ctx = ExecContext::new(Arc::clone(&before))
            .with_database(Arc::clone(&self.database))
            .with_seed(self.core.config.seed)
            .with_kernels(
                KernelState::with_cache(Arc::clone(&self.csr_cache))
                    .with_catalogs(Arc::clone(&self.catalog_cache)),
            );
        let result = self
            .scheduler
            .execute(&self.core.registry, chain, &mut ctx, monitor);
        // Persist mutations (scenario 3 cleans the session graph in place),
        // even when the chain failed part-way: completed edits happened.
        // Copy-on-write means a mutated graph is a new `Arc` — a new epoch.
        let after = Arc::clone(&ctx.graph);
        drop(ctx);
        if Arc::ptr_eq(&before, &after) {
            self.graph = Some(after);
        } else {
            self.install_graph(after);
        }
        if let Ok(value) = &result {
            self.transcript
                .push(Turn::System(format!("Executed {chain}: {}", value.summary())));
            // Periodic WAL compaction: after a clean chain, once enough
            // commits accumulated since the last checkpoint.
            let every = self.core.config.store.checkpoint_every;
            if let Some(store) = &self.store {
                if every > 0 && store.commits_since_checkpoint() >= every {
                    if let Ok(r) = store.checkpoint() {
                        monitor.on_event(&ChainEvent::Checkpointed {
                            epoch: r.epoch,
                            bytes: r.file_bytes,
                            reclaimed: r.reclaimed,
                        });
                    }
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatgraph_apis::CollectingMonitor;
    use chatgraph_graph::generators::{
        molecule, social_network, MoleculeParams, SocialParams,
    };

    use crate::scenarios::test_support::with_session;

    #[test]
    fn bootstrap_trains_a_usable_model() {
        with_session(|s| {
        let g = social_network(&SocialParams::default(), 9);
        let resp = s.send(Prompt::with_graph("detect the communities of this social network", g));
        assert_eq!(resp.graph_type.as_deref(), Some("social"));
        assert!(
            resp.chain.api_names().contains(&"detect_communities"),
            "chain: {}",
            resp.chain
        );
        });
    }

    #[test]
    fn proposed_chains_carry_no_error_diagnostics() {
        with_session(|s| {
            let g = social_network(&SocialParams::default(), 5);
            let resp = s.send(Prompt::with_graph("write a brief report for G", g));
            // Checked decoding prunes type-flow errors, so whatever the model
            // proposes analyses clean at the Error level; warnings may remain.
            assert!(
                resp.diagnostics.first_error().is_none(),
                "{}",
                resp.diagnostics.render_text()
            );
        });
    }

    #[test]
    fn suggestions_track_graph_type() {
        with_session(|s| {
        assert!(s.suggest_questions()[0].contains("big"));
        s.set_graph(molecule(&MoleculeParams::default(), 1));
        assert!(s.suggest_questions().iter().any(|q| q.contains("toxic")));
        s.set_graph(social_network(&SocialParams::default(), 1));
        assert!(s.suggest_questions().iter().any(|q| q.contains("communities")));
        });
    }

    #[test]
    fn send_then_run_chain_executes_and_logs() {
        with_session(|s| {
        let g = social_network(&SocialParams::default(), 4);
        let resp = s.send(Prompt::with_graph("how many communities does G have?", g));
        assert!(!resp.chain.is_empty(), "{resp:?}");
        let mut mon = CollectingMonitor::new();
        let out = s.run_chain(&resp.chain, &mut mon).unwrap();
        assert!(out.value_type() != chatgraph_apis::ValueType::Unit);
        assert!(s.transcript().len() >= 3);
        assert!(!mon.events.is_empty());
        });
    }

    #[test]
    fn text_only_prompt_is_answered_without_a_graph() {
        with_session(|s| {
            let before = s.transcript().len();
            let resp = s.send(Prompt::text("how many nodes does the graph have?"));
            // No graph uploaded: no type prediction, but a proposal is made
            // from retrieval candidates alone.
            assert_eq!(resp.graph_type, None);
            assert!(!resp.message.is_empty());
            // Transcript grew by the user turn and the system reply, in order.
            let t = s.transcript();
            assert_eq!(t.len(), before + 2);
            assert!(matches!(t[t.len() - 2], Turn::User(_)));
            assert!(matches!(t[t.len() - 1], Turn::System(_)));
        });
    }

    #[test]
    fn saved_model_session_answers_identically() {
        with_session(|s| {
            let saved = s.save_model();
            let mut restored =
                ChatSession::from_saved_model(s.config().clone(), &saved).unwrap();
            let g = social_network(&SocialParams::default(), 6);
            let q = "detect the communities of this social network";
            let original = s.send(Prompt::with_graph(q, g.clone()));
            let reloaded = restored.send(Prompt::with_graph(q, g));
            assert_eq!(original.chain, reloaded.chain);
        });
    }

    #[test]
    fn run_chain_persists_graph_edits() {
        use chatgraph_graph::generators::{corrupt_kg, knowledge_graph, KgParams};
        with_session(|s| {
        let mut g = knowledge_graph(&KgParams::default(), 8);
        corrupt_kg(&mut g, 0.1, 0.05, 8);
        let before_edges = g.edge_count();
        s.set_graph(g);
        let chain = ApiChain::from_names(["detect_missing_edges", "add_edges"]);
        let mut mon = CollectingMonitor::new();
        let added = s.run_chain(&chain, &mut mon).unwrap().as_number().unwrap();
        assert!(added > 0.0);
        assert_eq!(
            s.graph().unwrap().edge_count(),
            before_edges + added as usize
        );
        });
    }

    #[test]
    fn store_backed_session_replays_bit_identical_chain_results() {
        use chatgraph_graph::generators::{corrupt_kg, knowledge_graph, KgParams};
        use chatgraph_store::graph_fp;

        let path = std::env::temp_dir().join(format!(
            "chatgraph-session-diff-{}.cgdb",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        let mut g0 = knowledge_graph(&KgParams::default(), 21);
        corrupt_kg(&mut g0, 0.1, 0.05, 21);
        let mutating = ApiChain::from_names(["detect_missing_edges", "add_edges"]);
        let readonly = ApiChain::from_names(["node_count"]);

        // In-memory reference: mutate, then query.
        let (mem_v1, mem_v2, mem_fp) = with_session(|s| {
            s.set_graph(g0.clone());
            let v1 = s.run_chain(&mutating, &mut CollectingMonitor::new()).unwrap();
            let v2 = s.run_chain(&readonly, &mut CollectingMonitor::new()).unwrap();
            (v1, v2, graph_fp(s.graph().unwrap()))
        });

        // Store-backed run of the identical mutating chain, checkpointed
        // and persisted, then abandoned (simulating a process exit).
        let (store_v1, store_fp, config) = with_session(|s| {
            s.open_store(&path).unwrap();
            s.set_graph(g0.clone());
            let v1 = s.run_chain(&mutating, &mut CollectingMonitor::new()).unwrap();
            s.persist_model().unwrap();
            s.checkpoint_store().unwrap();
            (v1, graph_fp(s.graph().unwrap()), s.config().clone())
        });
        assert_eq!(mem_v1, store_v1, "store-backed chain diverged from in-memory");
        assert_eq!(mem_fp, store_fp, "graphs diverged after the mutating chain");

        // Reopen from the file alone: the recovered session answers the
        // follow-up chain bit-identically to the in-memory one.
        let (mut restored, report) = ChatSession::from_store(config, &path).unwrap();
        assert_eq!(report.tail_dropped, 0);
        assert_eq!(graph_fp(restored.graph().unwrap()), mem_fp);
        let v2 = restored
            .run_chain(&readonly, &mut CollectingMonitor::new())
            .unwrap();
        assert_eq!(mem_v2, v2, "recovered session diverged on the follow-up chain");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn graph_replacement_advances_epoch() {
        with_session(|s| {
            let e0 = s.graph_epoch();
            s.send(Prompt::with_graph(
                "how big is G?",
                social_network(&SocialParams::default(), 3),
            ));
            let e1 = s.graph_epoch();
            assert!(e1 > e0, "upload must advance the epoch");
            // Re-uploading (even an identical graph) is a replacement too.
            s.send(Prompt::with_graph(
                "how big is G?",
                social_network(&SocialParams::default(), 3),
            ));
            assert!(s.graph_epoch() > e1, "re-upload must advance the epoch");
        });
    }

    /// Regression test for the shared-CSR staleness hazard: after a tenant
    /// replaces its graph mid-session, kernels must run against the new
    /// epoch's snapshot, never the pointer-keyed snapshot of the old one.
    #[test]
    fn replaced_graph_is_never_served_from_stale_csr() {
        with_session(|s| {
            let small = social_network(&SocialParams::default(), 3);
            let small_nodes = small.node_count();
            s.set_graph(small);
            let chain = ApiChain::from_names(["largest_component", "node_count"]);
            let mut mon = CollectingMonitor::new();
            // Warm the CSR cache on the small graph's epoch.
            s.run_chain(&chain, &mut mon).unwrap();
            let big = social_network(
                &SocialParams {
                    communities: 4,
                    community_size: 40,
                    p_intra: 0.3,
                    p_inter: 0.02,
                },
                5,
            );
            let big_nodes = big.node_count();
            assert_ne!(small_nodes, big_nodes);
            s.set_graph(big);
            let mut mon = CollectingMonitor::new();
            let n = s.run_chain(&ApiChain::from_names(["node_count"]), &mut mon)
                .unwrap()
                .as_number()
                .unwrap();
            assert_eq!(n as usize, big_nodes, "kernel served a stale snapshot");
            // The component kernel (CSR-backed) must also see the new epoch.
            let mut mon = CollectingMonitor::new();
            let comp = s
                .run_chain(
                    &ApiChain::from_names(["largest_component", "node_count"]),
                    &mut mon,
                )
                .unwrap()
                .as_number()
                .unwrap() as usize;
            assert!(comp <= big_nodes);
            assert!(comp > small_nodes, "component came from the old graph");
        });
    }
}
