//! The chat session: ChatGraph's user-facing loop (paper Fig. 2).
//!
//! A [`ChatSession`] owns the whole stack — registry, retriever, finetuned
//! graph-aware model — and mirrors the three panels of the demo UI:
//!
//! * panel ① (dialog): [`ChatSession::transcript`] accumulates turns;
//! * panel ② (suggested questions): [`ChatSession::suggest_questions`];
//! * panel ③ (input): [`ChatSession::send`] takes a [`Prompt`].
//!
//! `send` proposes an API chain *without executing it* — the paper's
//! scenario 4 requires the user to confirm (and possibly edit) the chain —
//! and [`ChatSession::run_chain`] then executes a (possibly edited) chain
//! against the uploaded graph with full monitoring.

use crate::config::ChatGraphConfig;
use crate::dataset::{generate_corpus, CorpusParams};
use crate::finetune::{finetune, FinetuneMethod, FinetuneReport};
use crate::generation::{candidate_apis, ChainGenerator};
use crate::graph_aware::GraphAwareLm;
use crate::prompt::Prompt;
use crate::retrieval::ApiRetriever;
use chatgraph_analyzer::diag::Diagnostics;
use chatgraph_apis::{
    registry, ApiChain, ApiRegistry, ChainError, ExecContext, Monitor, Scheduler, Value,
};
use chatgraph_graph::Graph;
use std::sync::Arc;

/// Why a session could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The configuration failed [`ChatGraphConfig::validate`].
    InvalidConfig(Vec<String>),
    /// A saved model could not be parsed.
    Model(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::InvalidConfig(problems) => {
                write!(f, "invalid config: {}", problems.join("; "))
            }
            SessionError::Model(e) => write!(f, "saved model is unusable: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// One transcript turn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Turn {
    /// The user's message.
    User(String),
    /// The system's reply.
    System(String),
}

/// The system's answer to one prompt.
#[derive(Debug, Clone)]
pub struct ChatResponse {
    /// The proposed API chain (awaiting confirmation).
    pub chain: ApiChain,
    /// The candidate APIs that were offered to the decoder.
    pub candidates: Vec<String>,
    /// The predicted graph type, when a graph was attached.
    pub graph_type: Option<String>,
    /// Static-analysis findings on the proposed chain (scenario 4: shown to
    /// the user alongside the confirmation request, before execution).
    pub diagnostics: Diagnostics,
    /// The reply text shown in the dialog panel.
    pub message: String,
}

/// A full ChatGraph session.
pub struct ChatSession {
    config: ChatGraphConfig,
    registry: ApiRegistry,
    retriever: ApiRetriever,
    lm: GraphAwareLm,
    generator: ChainGenerator,
    scheduler: Scheduler,
    /// The graph uploaded most recently (the session graph).
    pub graph: Option<Graph>,
    /// The molecule database for similarity search, shared with executions
    /// without copying.
    pub database: Arc<Vec<Graph>>,
    transcript: Vec<Turn>,
}

impl ChatSession {
    /// Builds a session: standard registry, retriever over it, and a model
    /// finetuned on the synthetic corpus (the offline stand-in for the
    /// paper's pre-finetuned checkpoints).
    pub fn bootstrap(
        config: ChatGraphConfig,
        corpus_size: usize,
    ) -> Result<(Self, FinetuneReport), SessionError> {
        config.validate().map_err(SessionError::InvalidConfig)?;
        let registry = registry::standard();
        let retriever = ApiRetriever::build(&registry, &config.retrieval);
        let mut lm = GraphAwareLm::new(&registry, &config);
        let corpus = generate_corpus(
            &CorpusParams {
                size: corpus_size,
                small_graphs: true,
            },
            config.seed,
        );
        let report = finetune(
            &mut lm,
            &registry,
            &retriever,
            &corpus,
            FinetuneMethod::Full,
            &config,
        );
        let generator = ChainGenerator {
            max_len: config.finetune.max_chain_len,
        };
        let scheduler = Scheduler::new(config.exec.workers)
            .with_memo_capacity(config.exec.memo_capacity)
            .with_kernel_chunk(config.exec.kernel_chunk)
            .with_supervisor(config.exec.supervisor_config());
        Ok((
            ChatSession {
                config,
                registry,
                retriever,
                lm,
                generator,
                scheduler,
                graph: None,
                database: Arc::new(Vec::new()),
                transcript: Vec::new(),
            },
            report,
        ))
    }

    /// Builds a session around a previously finetuned model (saved with
    /// [`ChatSession::save_model`]), skipping the finetuning pass.
    pub fn from_saved_model(
        config: ChatGraphConfig,
        model_json: &str,
    ) -> Result<Self, SessionError> {
        config.validate().map_err(SessionError::InvalidConfig)?;
        let registry = registry::standard();
        let retriever = ApiRetriever::build(&registry, &config.retrieval);
        let lm = GraphAwareLm::load_json(model_json)
            .map_err(|e| SessionError::Model(e.to_string()))?;
        let generator = ChainGenerator {
            max_len: config.finetune.max_chain_len,
        };
        let scheduler = Scheduler::new(config.exec.workers)
            .with_memo_capacity(config.exec.memo_capacity)
            .with_kernel_chunk(config.exec.kernel_chunk)
            .with_supervisor(config.exec.supervisor_config());
        Ok(ChatSession {
            config,
            registry,
            retriever,
            lm,
            generator,
            scheduler,
            graph: None,
            database: Arc::new(Vec::new()),
            transcript: Vec::new(),
        })
    }

    /// Serialises the finetuned model for [`ChatSession::from_saved_model`].
    pub fn save_model(&self) -> String {
        self.lm.save_json()
    }

    /// The configuration in use.
    pub fn config(&self) -> &ChatGraphConfig {
        &self.config
    }

    /// The API registry.
    pub fn registry(&self) -> &ApiRegistry {
        &self.registry
    }

    /// The retrieval module.
    pub fn retriever(&self) -> &ApiRetriever {
        &self.retriever
    }

    /// The dialog transcript (panel ①).
    pub fn transcript(&self) -> &[Turn] {
        &self.transcript
    }

    /// Attaches a molecule database for similarity search.
    pub fn set_database(&mut self, database: Vec<Graph>) {
        self.database = Arc::new(database);
    }

    /// Arms (or clears) deterministic fault injection on the chain
    /// scheduler — the REPL's `:faults` command and the test harness.
    pub fn set_fault_plan(&mut self, faults: Option<chatgraph_apis::FaultPlan>) {
        self.scheduler.set_fault_plan(faults);
    }

    /// The chain scheduler's supervisor configuration.
    pub fn supervisor(&self) -> &chatgraph_apis::SupervisorConfig {
        self.scheduler.supervisor()
    }

    /// Suggested questions for the current graph (panel ②), driven by the
    /// predicted graph type.
    pub fn suggest_questions(&self) -> Vec<String> {
        let kind = self
            .graph
            .as_ref()
            .map(chatgraph_apis::impls::structure::predict_type)
            .unwrap_or("generic");
        let suggestions: &[&str] = match kind {
            "social" => &[
                "Write a brief report for G",
                "What communities exist in G?",
                "Who are the most influential users?",
                "Is the network connected?",
            ],
            "molecule" => &[
                "Write a brief report for G",
                "How toxic is this molecule?",
                "What molecules are similar to G?",
                "What is the chemical formula of G?",
            ],
            "knowledge" => &[
                "Clean G",
                "Are there schema violations in G?",
                "What facts does G contain?",
            ],
            _ => &[
                "How big is this graph?",
                "Is the graph connected?",
            ],
        };
        suggestions.iter().map(|s| s.to_string()).collect()
    }

    /// Handles one prompt: stores the uploaded graph, retrieves candidates,
    /// generates a chain, and proposes it for confirmation.
    pub fn send(&mut self, prompt: Prompt) -> ChatResponse {
        self.transcript.push(Turn::User(prompt.text.clone()));
        if let Some(g) = prompt.graph {
            self.graph = Some(g);
        }
        let graph_type = self
            .graph
            .as_ref()
            .map(|g| chatgraph_apis::impls::structure::predict_type(g).to_owned());
        let candidates = candidate_apis(
            &self.registry,
            &self.retriever,
            &prompt.text,
            self.graph.as_ref(),
        );
        let chain = self.generator.generate_greedy_checked(
            &self.lm,
            &self.registry,
            &prompt.text,
            self.graph.as_ref(),
            &candidates,
        );
        // Scenario 4: analyse the proposal before the user confirms, so the
        // warnings (bad parameters, discarded outputs, confirmation-gated
        // steps) are visible while the chain can still be edited.
        let diagnostics = if chain.is_empty() {
            Diagnostics::new()
        } else {
            chatgraph_apis::analysis::analyze(&chain, &self.registry, self.graph.is_some())
        };
        let mut message = match (&graph_type, chain.is_empty()) {
            (_, true) => "I could not find a suitable API chain; please rephrase.".to_owned(),
            (Some(t), false) => format!(
                "G looks like a {t} graph. I propose the API chain: {chain}. Confirm to execute."
            ),
            (None, false) => format!(
                "I propose the API chain: {chain}. Confirm to execute."
            ),
        };
        if !diagnostics.is_empty() {
            message.push_str("\nAnalysis notes:\n");
            message.push_str(&diagnostics.render_text());
        }
        self.transcript.push(Turn::System(message.clone()));
        ChatResponse {
            chain,
            candidates,
            graph_type,
            diagnostics,
            message,
        }
    }

    /// Executes a (confirmed, possibly user-edited) chain against the
    /// session graph, streaming progress through `monitor`. The session
    /// graph is updated in place by edit APIs.
    ///
    /// Execution goes through the plan [`Scheduler`] configured by
    /// [`crate::config::ExecConfig`]: with `workers: 1` this is exactly the
    /// sequential executor; with more workers, independent read-only steps
    /// run concurrently over a shared graph snapshot, with identical
    /// results.
    pub fn run_chain(
        &mut self,
        chain: &ApiChain,
        monitor: &mut dyn Monitor,
    ) -> Result<Value, ChainError> {
        // `take` hands the session graph to the context without a deep
        // copy; edits are copy-on-write inside the executor.
        let graph = self.graph.take().unwrap_or_else(Graph::undirected);
        let mut ctx = ExecContext::new(graph)
            .with_database(Arc::clone(&self.database))
            .with_seed(self.config.seed);
        let result = self
            .scheduler
            .execute(&self.registry, chain, &mut ctx, monitor);
        // Persist mutations (scenario 3 cleans the session graph in place),
        // even when the chain failed part-way: completed edits happened.
        self.graph = Some(ctx.into_graph());
        if let Ok(value) = &result {
            self.transcript
                .push(Turn::System(format!("Executed {chain}: {}", value.summary())));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatgraph_apis::CollectingMonitor;
    use chatgraph_graph::generators::{
        molecule, social_network, MoleculeParams, SocialParams,
    };

    use crate::scenarios::test_support::with_session;

    #[test]
    fn bootstrap_trains_a_usable_model() {
        with_session(|s| {
        let g = social_network(&SocialParams::default(), 9);
        let resp = s.send(Prompt::with_graph("detect the communities of this social network", g));
        assert_eq!(resp.graph_type.as_deref(), Some("social"));
        assert!(
            resp.chain.api_names().contains(&"detect_communities"),
            "chain: {}",
            resp.chain
        );
        });
    }

    #[test]
    fn proposed_chains_carry_no_error_diagnostics() {
        with_session(|s| {
            let g = social_network(&SocialParams::default(), 5);
            let resp = s.send(Prompt::with_graph("write a brief report for G", g));
            // Checked decoding prunes type-flow errors, so whatever the model
            // proposes analyses clean at the Error level; warnings may remain.
            assert!(
                resp.diagnostics.first_error().is_none(),
                "{}",
                resp.diagnostics.render_text()
            );
        });
    }

    #[test]
    fn suggestions_track_graph_type() {
        with_session(|s| {
        let saved = s.graph.take();
        assert!(s.suggest_questions()[0].contains("big"));
        s.graph = Some(molecule(&MoleculeParams::default(), 1));
        assert!(s.suggest_questions().iter().any(|q| q.contains("toxic")));
        s.graph = Some(social_network(&SocialParams::default(), 1));
        assert!(s.suggest_questions().iter().any(|q| q.contains("communities")));
        s.graph = saved;
        });
    }

    #[test]
    fn send_then_run_chain_executes_and_logs() {
        with_session(|s| {
        let g = social_network(&SocialParams::default(), 4);
        let resp = s.send(Prompt::with_graph("how many communities does G have?", g));
        assert!(!resp.chain.is_empty(), "{resp:?}");
        let mut mon = CollectingMonitor::new();
        let out = s.run_chain(&resp.chain, &mut mon).unwrap();
        assert!(out.value_type() != chatgraph_apis::ValueType::Unit);
        assert!(s.transcript().len() >= 3);
        assert!(!mon.events.is_empty());
        });
    }

    #[test]
    fn text_only_prompt_is_answered_without_a_graph() {
        with_session(|s| {
            let saved = s.graph.take();
            let before = s.transcript().len();
            let resp = s.send(Prompt::text("how many nodes does the graph have?"));
            // No graph uploaded: no type prediction, but a proposal is made
            // from retrieval candidates alone.
            assert_eq!(resp.graph_type, None);
            assert!(!resp.message.is_empty());
            // Transcript grew by the user turn and the system reply, in order.
            let t = s.transcript();
            assert_eq!(t.len(), before + 2);
            assert!(matches!(t[t.len() - 2], Turn::User(_)));
            assert!(matches!(t[t.len() - 1], Turn::System(_)));
            s.graph = saved;
        });
    }

    #[test]
    fn saved_model_session_answers_identically() {
        with_session(|s| {
            let saved = s.save_model();
            let mut restored =
                ChatSession::from_saved_model(s.config().clone(), &saved).unwrap();
            let g = social_network(&SocialParams::default(), 6);
            let q = "detect the communities of this social network";
            let original = s.send(Prompt::with_graph(q, g.clone()));
            let reloaded = restored.send(Prompt::with_graph(q, g));
            assert_eq!(original.chain, reloaded.chain);
        });
    }

    #[test]
    fn run_chain_persists_graph_edits() {
        use chatgraph_graph::generators::{corrupt_kg, knowledge_graph, KgParams};
        with_session(|s| {
        let mut g = knowledge_graph(&KgParams::default(), 8);
        corrupt_kg(&mut g, 0.1, 0.05, 8);
        let before_edges = g.edge_count();
        s.graph = Some(g);
        let chain = ApiChain::from_names(["detect_missing_edges", "add_edges"]);
        let mut mon = CollectingMonitor::new();
        let added = s.run_chain(&chain, &mut mon).unwrap().as_number().unwrap();
        assert!(added > 0.0);
        assert_eq!(
            s.graph.as_ref().unwrap().edge_count(),
            before_edges + added as usize
        );
        });
    }
}
