//! The graph-aware LLM module (paper §II-B).
//!
//! Bundles the graph sequentialiser-backed feature extractor with the
//! trainable next-API model: the component that "enables the LLM to
//! comprehend graphs".

use crate::config::ChatGraphConfig;
use chatgraph_apis::ApiRegistry;
use chatgraph_graph::Graph;
use chatgraph_llm::{ApiLm, FeatureExtractor, SparseFeatures, Vocab};

/// The graph-aware language model: extractor + scorer over the API
/// vocabulary.
#[derive(Debug, Clone)]
pub struct GraphAwareLm {
    /// Feature extraction (prompt text ⊕ sequentialised graph ⊕ chain state).
    pub extractor: FeatureExtractor,
    /// The trainable next-token model.
    pub model: ApiLm,
}

impl GraphAwareLm {
    /// Builds an untrained model whose vocabulary is the registry's API set.
    pub fn new(registry: &ApiRegistry, config: &ChatGraphConfig) -> Self {
        let mut features = config.features.clone();
        features.cover_length = config.cover.max_length;
        features.multi_level = config.cover.multi_level;
        let extractor = FeatureExtractor::new(features.clone());
        let vocab = Vocab::new(registry.names());
        let model = ApiLm::new(vocab, features.dim);
        GraphAwareLm { extractor, model }
    }

    /// Precomputes the prompt + graph context features for one question.
    pub fn context(&self, prompt: &str, graph: Option<&Graph>) -> SparseFeatures {
        self.extractor.context(prompt, graph)
    }

    /// Features for one decoding step given a cached context.
    pub fn step_features(&self, context: &SparseFeatures, partial: &[String]) -> SparseFeatures {
        self.extractor.step(context, partial)
    }

    /// Token ids (plus `[EOS]`) for a set of candidate API names; unknown
    /// names are ignored.
    pub fn allowed_ids<S: AsRef<str>>(&self, candidates: &[S]) -> Vec<u32> {
        let vocab = self.model.vocab();
        let mut ids: Vec<u32> = candidates
            .iter()
            .filter_map(|n| vocab.id(n.as_ref()))
            .collect();
        ids.push(vocab.eos());
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Serialises the finetuned model (extractor config + weights) to JSON —
    /// the offline analogue of saving a finetuned checkpoint, so a session
    /// can skip re-finetuning on startup.
    pub fn save_json(&self) -> String {
        chatgraph_support::json::to_string(&(self.extractor.clone(), self.model.clone()))
    }

    /// Restores a model saved by [`GraphAwareLm::save_json`].
    pub fn load_json(text: &str) -> Result<Self, chatgraph_support::json::JsonError> {
        let (extractor, mut model): (FeatureExtractor, ApiLm) =
            chatgraph_support::json::from_str(text)?;
        model.reindex_vocab();
        Ok(GraphAwareLm { extractor, model })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatgraph_apis::registry;

    #[test]
    fn vocabulary_covers_registry() {
        let reg = registry::standard();
        let lm = GraphAwareLm::new(&reg, &ChatGraphConfig::default());
        assert_eq!(lm.model.vocab().len(), reg.len() + 2);
        for name in reg.names() {
            assert!(lm.model.vocab().id(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn allowed_ids_include_eos_and_skip_unknowns() {
        let reg = registry::standard();
        let lm = GraphAwareLm::new(&reg, &ChatGraphConfig::default());
        let ids = lm.allowed_ids(&["node_count", "bogus_api", "node_count"]);
        assert_eq!(ids.len(), 2); // node_count + EOS, deduped
        assert!(ids.contains(&lm.model.vocab().eos()));
    }

    #[test]
    fn feature_config_inherits_cover_settings() {
        let reg = registry::standard();
        let mut cfg = ChatGraphConfig::default();
        cfg.cover.max_length = 4;
        let lm = GraphAwareLm::new(&reg, &cfg);
        assert_eq!(lm.extractor.config().cover_length, 4);
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        use chatgraph_graph::generators::{social_network, SocialParams};
        let reg = registry::standard();
        let mut lm = GraphAwareLm::new(&reg, &ChatGraphConfig::default());
        let g = social_network(&SocialParams::default(), 1);
        let ctx = lm.context("find communities", Some(&g));
        let x = lm.step_features(&ctx, &[]);
        let target = lm.model.vocab().id("detect_communities").unwrap();
        for _ in 0..10 {
            lm.model.train_step(&x, target, 0.5, 1.0);
        }
        let loaded = GraphAwareLm::load_json(&lm.save_json()).unwrap();
        assert_eq!(loaded.model.logits(&x), lm.model.logits(&x));
        // The reindexed vocabulary still resolves names.
        assert_eq!(
            loaded.model.vocab().id("detect_communities"),
            Some(target)
        );
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(GraphAwareLm::load_json("not json").is_err());
    }
}
