//! Chain decoding at inference time.
//!
//! Generation iteratively extends a partial chain (paper §II-C): at each
//! step the graph-aware model scores the candidate APIs surfaced by the
//! retrieval module (plus `[EOS]`), and the sampler picks one. Restricting
//! decoding to retrieved candidates is what keeps the prediction space small
//! — the role §II-A assigns to API retrieval, "critical for performance".

use crate::graph_aware::GraphAwareLm;
use crate::retrieval::ApiRetriever;
use chatgraph_apis::{ApiCategory, ApiChain, ApiRegistry};
use chatgraph_graph::Graph;
use chatgraph_llm::{Sampler, SamplingConfig};

/// Assembles the candidate API set for a prompt: the retrieval module's
/// top-k hits, the APIs of the predicted graph-type category (scenario 1:
/// "if G is a social network, social-specific APIs will be invoked"), and
/// the report sinks. Sorted and deduplicated.
pub fn candidate_apis(
    registry: &ApiRegistry,
    retriever: &ApiRetriever,
    prompt: &str,
    graph: Option<&Graph>,
) -> Vec<String> {
    let mut out: Vec<String> = retriever
        .retrieve(prompt)
        .into_iter()
        .map(|h| h.name)
        .collect();
    let mut add_category = |cat: ApiCategory| {
        out.extend(registry.by_category(cat).iter().map(|d| d.name.clone()));
    };
    if let Some(g) = graph {
        match chatgraph_apis::impls::structure::predict_type(g) {
            "social" => add_category(ApiCategory::Social),
            "molecule" => {
                add_category(ApiCategory::Molecule);
                add_category(ApiCategory::Similarity);
            }
            "knowledge" => {
                add_category(ApiCategory::Knowledge);
                add_category(ApiCategory::Edit);
            }
            _ => add_category(ApiCategory::Structure),
        }
    }
    add_category(ApiCategory::Report);
    out.sort();
    out.dedup();
    out
}

/// Decodes API chains from a trained [`GraphAwareLm`].
#[derive(Debug, Clone)]
pub struct ChainGenerator {
    /// Maximum chain length (steps before forced stop).
    pub max_len: usize,
}

impl Default for ChainGenerator {
    fn default() -> Self {
        ChainGenerator { max_len: 6 }
    }
}

impl ChainGenerator {
    /// Greedy decoding restricted to `candidates`.
    pub fn generate_greedy(
        &self,
        lm: &GraphAwareLm,
        prompt: &str,
        graph: Option<&Graph>,
        candidates: &[String],
    ) -> ApiChain {
        let mut sampler = Sampler::new(
            SamplingConfig {
                temperature: 0.0,
                top_k: 1,
            },
            0,
        );
        self.generate(lm, prompt, graph, candidates, &mut sampler)
    }

    /// Greedy decoding with per-step type-flow pruning (see
    /// [`ChainGenerator::generate_checked`]).
    pub fn generate_greedy_checked(
        &self,
        lm: &GraphAwareLm,
        registry: &ApiRegistry,
        prompt: &str,
        graph: Option<&Graph>,
        candidates: &[String],
    ) -> ApiChain {
        let mut sampler = Sampler::new(
            SamplingConfig {
                temperature: 0.0,
                top_k: 1,
            },
            0,
        );
        self.generate_checked(lm, registry, prompt, graph, candidates, &mut sampler)
    }

    /// Sampled decoding restricted to `candidates`.
    pub fn generate(
        &self,
        lm: &GraphAwareLm,
        prompt: &str,
        graph: Option<&Graph>,
        candidates: &[String],
        sampler: &mut Sampler,
    ) -> ApiChain {
        self.decode(lm, None, prompt, graph, candidates, sampler)
    }

    /// Sampled decoding with static-analysis pruning: before each step, the
    /// candidate set is filtered through
    /// [`chatgraph_apis::analysis::can_extend`], so extensions that would
    /// introduce a type-flow error (analyzer codes CG003/CG004) are never
    /// offered to the sampler. `[EOS]` always remains available, so pruning
    /// can only end chains early, never derail them.
    pub fn generate_checked(
        &self,
        lm: &GraphAwareLm,
        registry: &ApiRegistry,
        prompt: &str,
        graph: Option<&Graph>,
        candidates: &[String],
        sampler: &mut Sampler,
    ) -> ApiChain {
        self.decode(lm, Some(registry), prompt, graph, candidates, sampler)
    }

    fn decode(
        &self,
        lm: &GraphAwareLm,
        prune_against: Option<&ApiRegistry>,
        prompt: &str,
        graph: Option<&Graph>,
        candidates: &[String],
        sampler: &mut Sampler,
    ) -> ApiChain {
        let context = lm.context(prompt, graph);
        let has_graph = graph.is_some();
        let mut allowed = lm.allowed_ids(candidates);
        let mut names: Vec<String> = Vec::new();
        for _ in 0..self.max_len {
            if let Some(registry) = prune_against {
                let last = names.last().map(String::as_str);
                let step_candidates: Vec<&String> = candidates
                    .iter()
                    .filter(|c| chatgraph_apis::analysis::can_extend(registry, last, c, has_graph))
                    .collect();
                allowed = lm.allowed_ids(&step_candidates);
            }
            let x = lm.step_features(&context, &names);
            let token = sampler.sample(&lm.model, &x, &allowed);
            if token == lm.model.vocab().eos() || token == lm.model.vocab().bos() {
                break;
            }
            let Some(name) = lm.model.vocab().token(token) else {
                break;
            };
            names.push(name.to_owned());
        }
        ApiChain::from_names(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChatGraphConfig;
    use chatgraph_apis::registry;
    use chatgraph_llm::SparseFeatures;

    fn lm_preferring(api: &str) -> GraphAwareLm {
        let reg = registry::standard();
        let mut lm = GraphAwareLm::new(&reg, &ChatGraphConfig::default());
        // Train the bias feature set (empty-ish context) to emit `api` then EOS.
        let ctx = lm.context("question", None);
        let target = lm.model.vocab().id(api).unwrap();
        let eos = lm.model.vocab().eos();
        for _ in 0..60 {
            let x0 = lm.step_features(&ctx, &[]);
            lm.model.train_step(&x0, target, 0.5, 1.0);
            let x1 = lm.step_features(&ctx, &[api.to_owned()]);
            lm.model.train_step(&x1, eos, 0.5, 1.0);
        }
        lm
    }

    #[test]
    fn greedy_decodes_trained_chain() {
        let lm = lm_preferring("node_count");
        let gen = ChainGenerator::default();
        let chain = gen.generate_greedy(&lm, "question", None, &["node_count".to_owned()]);
        assert_eq!(chain.api_names(), vec!["node_count"]);
    }

    #[test]
    fn candidates_restrict_output() {
        let lm = lm_preferring("node_count");
        let gen = ChainGenerator::default();
        // node_count is not among the candidates, so it cannot be emitted.
        let chain = gen.generate_greedy(
            &lm,
            "question",
            None,
            &["edge_count".to_owned(), "graph_stats".to_owned()],
        );
        for api in chain.api_names() {
            assert!(api == "edge_count" || api == "graph_stats");
        }
    }

    #[test]
    fn max_len_bounds_untrained_decoding() {
        let reg = registry::standard();
        let lm = GraphAwareLm::new(&reg, &ChatGraphConfig::default());
        let gen = ChainGenerator { max_len: 3 };
        let names: Vec<String> = reg.names().iter().map(|s| s.to_string()).collect();
        let mut sampler = Sampler::new(SamplingConfig { temperature: 2.0, top_k: 0 }, 5);
        let chain = gen.generate(&lm, "anything", None, &names, &mut sampler);
        assert!(chain.len() <= 3);
    }

    #[test]
    fn checked_decoding_only_emits_well_typed_chains() {
        use chatgraph_graph::generators::{social_network, SocialParams};
        let reg = registry::standard();
        let lm = GraphAwareLm::new(&reg, &ChatGraphConfig::default());
        let gen = ChainGenerator { max_len: 4 };
        let names: Vec<String> = reg.names().iter().map(|s| s.to_string()).collect();
        let g = social_network(&SocialParams::default(), 1);
        for seed in 0..10 {
            // An untrained model at high temperature emits near-uniform noise;
            // pruning must still keep every non-empty chain well-typed, both
            // with and without a session graph.
            let mut sampler = Sampler::new(SamplingConfig { temperature: 2.0, top_k: 0 }, seed);
            let chain = gen.generate_checked(&lm, &reg, "anything", Some(&g), &names, &mut sampler);
            if !chain.is_empty() {
                assert!(chain.validate(&reg, true).is_ok(), "{chain}");
            }
            let mut sampler = Sampler::new(SamplingConfig { temperature: 2.0, top_k: 0 }, seed);
            let chain = gen.generate_checked(&lm, &reg, "anything", None, &names, &mut sampler);
            if !chain.is_empty() {
                assert!(chain.validate(&reg, false).is_ok(), "{chain}");
            }
        }
    }

    #[test]
    fn untrained_model_uniform_logits_are_finite() {
        let reg = registry::standard();
        let lm = GraphAwareLm::new(&reg, &ChatGraphConfig::default());
        let x = SparseFeatures([(1u32, 1.0f32)].into_iter().collect());
        for l in lm.model.logits(&x) {
            assert!(l.is_finite());
        }
    }
}

#[cfg(test)]
mod candidate_tests {
    use super::*;
    use crate::config::ChatGraphConfig;
    use crate::retrieval::ApiRetriever;
    use chatgraph_apis::registry;
    use chatgraph_graph::generators::{
        knowledge_graph, molecule, social_network, KgParams, MoleculeParams, SocialParams,
    };

    fn setup() -> (chatgraph_apis::ApiRegistry, ApiRetriever) {
        let reg = registry::standard();
        let retriever = ApiRetriever::build(&reg, &ChatGraphConfig::default().retrieval);
        (reg, retriever)
    }

    #[test]
    fn candidates_track_graph_family() {
        let (reg, retriever) = setup();
        let social = social_network(&SocialParams::default(), 1);
        let cands = candidate_apis(&reg, &retriever, "analyse this", Some(&social));
        assert!(cands.iter().any(|c| c == "detect_communities"));
        assert!(cands.iter().any(|c| c == "generate_report"));

        let mol = molecule(&MoleculeParams::default(), 1);
        let cands = candidate_apis(&reg, &retriever, "analyse this", Some(&mol));
        assert!(cands.iter().any(|c| c == "predict_toxicity"));
        assert!(cands.iter().any(|c| c == "similarity_search"));

        let kg = knowledge_graph(&KgParams::default(), 1);
        let cands = candidate_apis(&reg, &retriever, "analyse this", Some(&kg));
        assert!(cands.iter().any(|c| c == "detect_incorrect_edges"));
        assert!(cands.iter().any(|c| c == "remove_edges"));
    }

    #[test]
    fn candidates_without_graph_still_include_retrieved_and_report() {
        let (reg, retriever) = setup();
        let cands = candidate_apis(&reg, &retriever, "how many nodes are there", None);
        assert!(cands.iter().any(|c| c == "generate_report"));
        assert!(!cands.is_empty());
        // Sorted and deduplicated.
        let mut sorted = cands.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(cands, sorted);
    }
}
