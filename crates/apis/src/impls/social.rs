//! Social-network analysis APIs (demo scenario 1's social branch).

use super::input_graph;
use crate::descriptor::{ApiCategory, ApiDescriptor};
use crate::registry::ApiRegistry;
use crate::value::{Value, ValueType};
use chatgraph_analyzer::chain::ParamSpec;
use chatgraph_graph::algo::{bridges, centrality, community};
use chatgraph_graph::kernels;
use chatgraph_graph::Graph;

fn name_of(g: &Graph, v: chatgraph_graph::NodeId) -> String {
    g.node_attrs(v)
        .ok()
        .and_then(|a| a.get("name"))
        .and_then(|x| x.as_text().map(str::to_owned))
        .unwrap_or_else(|| v.to_string())
}

fn top_table(g: &Graph, scores: &[f64], k: usize, score_name: &str) -> crate::value::Table {
    let mut t = crate::value::Table::new(["rank", "node", score_name]);
    for (rank, (v, s)) in centrality::top_k(g, scores, k).into_iter().enumerate() {
        t.push_row([
            (rank + 1).to_string(),
            name_of(g, v),
            format!("{s:.4}"),
        ]);
    }
    t
}

/// Registers the social APIs.
pub fn register(reg: &mut ApiRegistry) {
    use ApiCategory::Social;
    use ValueType::*;

    reg.register(
        ApiDescriptor::new(
            "detect_communities",
            "detect the communities or groups of a social network using label propagation",
            Social, Graph, Table,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let comms = community::label_propagation(&g, ctx.seed);
            let mut t = crate::value::Table::new(["community", "size", "sample members"]);
            for (i, grp) in comms.groups().iter().enumerate() {
                let sample: Vec<String> = grp.iter().take(3).map(|&v| name_of(&g, v)).collect();
                t.push_row([i.to_string(), grp.len().to_string(), sample.join(", ")]);
            }
            Ok(Value::Table(t))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "community_count",
            "count how many communities the social network contains",
            Social, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            Ok(Value::Number(
                community::label_propagation(&g, ctx.seed).num_communities() as f64,
            ))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "modularity_score",
            "measure the modularity quality of the detected community structure",
            Social, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let comms = community::label_propagation(&g, ctx.seed);
            Ok(Value::Number(community::modularity(&g, &comms)))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "top_pagerank",
            "rank the most important or influential nodes by pagerank score",
            Social, Graph, Table,
        )
        .with_params([ParamSpec::int("k", 1, 100, 5)]),
        Box::new(|ctx, input, call| {
            let g = input_graph(input, ctx);
            let k = call.try_param_usize("k", 5)?;
            let csr = ctx.kernels.csr(&g);
            let policy = ctx.kernels.policy.clone();
            let pr = ctx
                .kernels
                .time("pagerank", || kernels::pagerank(&csr, 0.85, 50, &policy));
            Ok(Value::Table(top_table(&g, &pr, k, "pagerank")))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "top_betweenness",
            "find bridge or broker nodes with the highest betweenness centrality",
            Social, Graph, Table,
        )
        .with_params([ParamSpec::int("k", 1, 100, 5)]),
        Box::new(|ctx, input, call| {
            let g = input_graph(input, ctx);
            let k = call.try_param_usize("k", 5)?;
            let bc = centrality::betweenness(&g);
            Ok(Value::Table(top_table(&g, &bc, k, "betweenness")))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "top_degree",
            "list the nodes with the most connections by degree centrality",
            Social, Graph, Table,
        )
        .with_params([ParamSpec::int("k", 1, 100, 5)]),
        Box::new(|ctx, input, call| {
            let g = input_graph(input, ctx);
            let k = call.try_param_usize("k", 5)?;
            let dc = centrality::degree_centrality(&g);
            Ok(Value::Table(top_table(&g, &dc, k, "degree centrality")))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "find_influencers",
            "identify influencer nodes combining degree and pagerank importance",
            Social, Graph, NodeList,
        )
        .with_params([ParamSpec::int("k", 1, 100, 5)]),
        Box::new(|ctx, input, call| {
            let g = input_graph(input, ctx);
            let k = call.try_param_usize("k", 5)?;
            let csr = ctx.kernels.csr(&g);
            let policy = ctx.kernels.policy.clone();
            let pr = ctx
                .kernels
                .time("pagerank", || kernels::pagerank(&csr, 0.85, 50, &policy));
            Ok(Value::NodeList(
                centrality::top_k(&g, &pr, k).into_iter().map(|(v, _)| v).collect(),
            ))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "top_closeness",
            "rank the most central nodes by closeness to everyone else",
            Social, Graph, Table,
        )
        .with_params([ParamSpec::int("k", 1, 100, 5)]),
        Box::new(|ctx, input, call| {
            let g = input_graph(input, ctx);
            let k = call.try_param_usize("k", 5)?;
            let csr = ctx.kernels.csr(&g);
            let policy = ctx.kernels.policy.clone();
            let cc = ctx
                .kernels
                .time("closeness", || kernels::closeness(&csr, &policy));
            Ok(Value::Table(top_table(&g, &cc, k, "closeness")))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "find_bridges",
            "find the weak link edges whose removal would disconnect parts of the network",
            Social, Graph, Table,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let bs = bridges::bridges(&g);
            let mut t = crate::value::Table::new(["from", "to"]);
            for e in bs {
                let (a, b) = g.edge_endpoints(e).map_err(|e| e.to_string())?;
                t.push_row([name_of(&g, a), name_of(&g, b)]);
            }
            Ok(Value::Table(t))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "articulation_points",
            "find the cut nodes whose removal would disconnect the network",
            Social, Graph, NodeList,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            Ok(Value::NodeList(bridges::articulation_points(&g)))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "connectivity_report",
            "analyse the connectivity of the network: components, largest component size, diameter and average path length",
            Social, Graph, Table,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let csr = ctx.kernels.csr(&g);
            let policy = ctx.kernels.policy.clone();
            let (cc, diam, apl) = ctx.kernels.time("connectivity", || {
                (
                    kernels::connected_components(&csr, &policy),
                    kernels::diameter(&csr, &policy),
                    kernels::average_path_length(&csr, &policy),
                )
            });
            let mut t = crate::value::Table::new(["metric", "value"]);
            t.push_row(["components", &cc.count.to_string()]);
            t.push_row(["largest component", &cc.largest_size().to_string()]);
            t.push_row([
                "connected",
                if cc.count <= 1 { "yes" } else { "no" },
            ]);
            t.push_row([
                "diameter",
                &diam.map(|d| d.to_string()).unwrap_or_else(|| "n/a".into()),
            ]);
            t.push_row([
                "avg path length",
                &apl.map(|d| format!("{d:.2}")).unwrap_or_else(|| "n/a".into()),
            ]);
            Ok(Value::Table(t))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ApiCall;
    use crate::executor::ExecContext;
    use crate::registry;
    use chatgraph_graph::generators::{social_network, SocialParams};

    fn run(name: &str, call: ApiCall) -> Value {
        let reg = registry::standard();
        let g = social_network(&SocialParams::default(), 5);
        let mut ctx = ExecContext::new(g).with_seed(5);
        reg.call(name, &mut ctx, Value::Unit, &call).unwrap()
    }

    #[test]
    fn community_detection_finds_planted_structure() {
        let out = run("detect_communities", ApiCall::new("detect_communities"));
        let t = out.as_table().unwrap();
        assert!(t.rows.len() >= 3, "{t:?}");
        // Largest community should be around the planted size of 30.
        let largest: usize = t.rows[0][1].parse().unwrap();
        assert!((15..=60).contains(&largest), "largest = {largest}");
        let count = run("community_count", ApiCall::new("community_count"));
        assert!(count.as_number().unwrap() >= 3.0);
    }

    #[test]
    fn modularity_is_positive_on_planted_graph() {
        let out = run("modularity_score", ApiCall::new("modularity_score"));
        assert!(out.as_number().unwrap() > 0.2);
    }

    #[test]
    fn top_k_tables_respect_k() {
        for api in ["top_pagerank", "top_betweenness", "top_degree"] {
            let out = run(api, ApiCall::new(api).with_param("k", "3"));
            assert_eq!(out.as_table().unwrap().rows.len(), 3, "{api}");
        }
    }

    #[test]
    fn influencer_list_is_node_list() {
        let out = run("find_influencers", ApiCall::new("find_influencers").with_param("k", "4"));
        match out {
            Value::NodeList(ns) => assert_eq!(ns.len(), 4),
            other => panic!("expected node list, got {other:?}"),
        }
    }

    #[test]
    fn closeness_table_respects_k() {
        let out = run("top_closeness", ApiCall::new("top_closeness").with_param("k", "2"));
        assert_eq!(out.as_table().unwrap().rows.len(), 2);
    }

    #[test]
    fn bridges_and_articulation_on_barbell() {
        use chatgraph_graph::GraphBuilder;
        let reg = registry::standard();
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-").edge("b", "c", "-").edge("c", "a", "-")
            .edge("c", "d", "-")
            .edge("d", "e", "-").edge("e", "f", "-").edge("f", "d", "-")
            .build();
        let mut ctx = ExecContext::new(g);
        let out = reg
            .call("find_bridges", &mut ctx, Value::Unit, &ApiCall::new("x"))
            .unwrap();
        assert_eq!(out.as_table().unwrap().rows.len(), 1);
        let pts = reg
            .call("articulation_points", &mut ctx, Value::Unit, &ApiCall::new("x"))
            .unwrap();
        match pts {
            Value::NodeList(ns) => assert_eq!(ns.len(), 2),
            other => panic!("expected node list, got {other:?}"),
        }
    }

    #[test]
    fn connectivity_report_has_five_metrics() {
        let out = run("connectivity_report", ApiCall::new("connectivity_report"));
        assert_eq!(out.as_table().unwrap().rows.len(), 5);
    }

    #[test]
    fn names_are_used_when_available() {
        let out = run("top_degree", ApiCall::new("top_degree").with_param("k", "1"));
        let t = out.as_table().unwrap();
        assert!(t.rows[0][1].starts_with("user"), "{:?}", t.rows[0]);
    }
}
