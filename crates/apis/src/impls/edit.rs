//! Graph-edit APIs (the mutation half of demo scenario 3).
//!
//! Edit APIs operate on the *session graph* in the execution context and are
//! flagged `requires_confirmation`, so the executor routes them through the
//! monitor before anything is changed.

use super::input_graph;
use crate::descriptor::{ApiCategory, ApiDescriptor};
use crate::registry::ApiRegistry;
use crate::value::{Value, ValueType};
use chatgraph_analyzer::chain::ParamSpec;
use chatgraph_graph::io;

/// Registers the edit APIs.
pub fn register(reg: &mut ApiRegistry) {
    use ApiCategory::Edit;
    use ValueType::*;

    reg.register(
        ApiDescriptor::new(
            "remove_edges",
            "remove the given edges from the graph to delete incorrect facts",
            Edit, EdgeList, Number,
        )
        .with_confirmation()
        .with_mutation(),
        Box::new(|ctx, input, _| {
            let edges = input
                .as_edge_list()
                .ok_or("remove_edges expects an edge list")?
                .to_vec();
            let mut removed = 0usize;
            for (s, d, rel) in edges {
                if let Some(e) = ctx.graph.find_edge(s, d) {
                    if ctx.graph.edge_label(e).map(|l| l == rel).unwrap_or(false) {
                        ctx.graph_mut().remove_edge(e).map_err(|e| e.to_string())?;
                        removed += 1;
                    }
                }
            }
            Ok(Value::Number(removed as f64))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "add_edges",
            "add the given edges to the graph to insert missing facts",
            Edit, EdgeList, Number,
        )
        .with_confirmation()
        .with_mutation(),
        Box::new(|ctx, input, _| {
            let edges = input
                .as_edge_list()
                .ok_or("add_edges expects an edge list")?
                .to_vec();
            let mut added = 0usize;
            for (s, d, rel) in edges {
                if ctx.graph.contains_node(s)
                    && ctx.graph.contains_node(d)
                    && ctx.graph.find_edge(s, d).is_none()
                {
                    ctx.graph_mut().add_edge(s, d, rel).map_err(|e| e.to_string())?;
                    added += 1;
                }
            }
            Ok(Value::Number(added as f64))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "relabel_nodes",
            "rename every node with a given label to a new label in the graph",
            Edit, Graph, Number,
        )
        .with_confirmation()
        .with_mutation()
        .with_params([ParamSpec::text("from"), ParamSpec::text("to")]),
        Box::new(|ctx, _input, call| {
            let from = call
                .params
                .get("from")
                .ok_or("relabel_nodes requires a 'from' parameter")?
                .clone();
            let to = call
                .params
                .get("to")
                .ok_or("relabel_nodes requires a 'to' parameter")?
                .clone();
            let targets: Vec<_> = ctx
                .graph
                .node_ids()
                .filter(|&v| ctx.graph.node_label(v).is_ok_and(|l| l == from))
                .collect();
            for &v in &targets {
                ctx.graph_mut()
                    .set_node_label(v, to.clone())
                    .map_err(|e| e.to_string())?;
            }
            Ok(Value::Number(targets.len() as f64))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "export_graph",
            "serialise the cleaned graph to an edge list text file for output",
            Edit, Graph, Text,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            io::to_edge_list(&g).map(Value::Text).map_err(|e| e.to_string())
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ApiCall;
    use crate::executor::ExecContext;
    use crate::registry;
    use chatgraph_graph::GraphBuilder;

    fn ctx() -> ExecContext {
        ExecContext::new(
            GraphBuilder::directed()
                .node("a", "A")
                .node("b", "B")
                .node("c", "C")
                .edge("a", "b", "r")
                .build(),
        )
    }

    #[test]
    fn remove_edges_mutates_session_graph() {
        let reg = registry::standard();
        let mut ctx = ctx();
        let a = ctx.graph.node_ids().next().unwrap();
        let b = ctx.graph.node_ids().nth(1).unwrap();
        let out = reg
            .call(
                "remove_edges",
                &mut ctx,
                Value::EdgeList(vec![(a, b, "r".into())]),
                &ApiCall::new("remove_edges"),
            )
            .unwrap();
        assert_eq!(out.as_number(), Some(1.0));
        assert_eq!(ctx.graph.edge_count(), 0);
    }

    #[test]
    fn remove_edges_skips_label_mismatch() {
        let reg = registry::standard();
        let mut ctx = ctx();
        let a = ctx.graph.node_ids().next().unwrap();
        let b = ctx.graph.node_ids().nth(1).unwrap();
        let out = reg
            .call(
                "remove_edges",
                &mut ctx,
                Value::EdgeList(vec![(a, b, "WRONG".into())]),
                &ApiCall::new("remove_edges"),
            )
            .unwrap();
        assert_eq!(out.as_number(), Some(0.0));
        assert_eq!(ctx.graph.edge_count(), 1);
    }

    #[test]
    fn add_edges_skips_duplicates_and_dead_nodes() {
        let reg = registry::standard();
        let mut ctx = ctx();
        let ids: Vec<_> = ctx.graph.node_ids().collect();
        let out = reg
            .call(
                "add_edges",
                &mut ctx,
                Value::EdgeList(vec![
                    (ids[0], ids[1], "r".into()),                       // duplicate
                    (ids[1], ids[2], "s".into()),                       // new
                    (chatgraph_graph::NodeId(99), ids[2], "t".into()),  // dead src
                ]),
                &ApiCall::new("add_edges"),
            )
            .unwrap();
        assert_eq!(out.as_number(), Some(1.0));
        assert_eq!(ctx.graph.edge_count(), 2);
    }

    #[test]
    fn wrong_input_type_is_rejected() {
        let reg = registry::standard();
        let mut ctx = ctx();
        let err = reg
            .call("remove_edges", &mut ctx, Value::Number(1.0), &ApiCall::new("x"))
            .unwrap_err();
        assert!(err.contains("edge list"));
    }

    #[test]
    fn relabel_nodes_counts_changes() {
        let reg = registry::standard();
        let mut ctx = ctx();
        let out = reg
            .call(
                "relabel_nodes",
                &mut ctx,
                Value::Unit,
                &ApiCall::new("relabel_nodes")
                    .with_param("from", "A")
                    .with_param("to", "Z"),
            )
            .unwrap();
        assert_eq!(out.as_number(), Some(1.0));
        let a = ctx.graph.node_ids().next().unwrap();
        assert_eq!(ctx.graph.node_label(a).unwrap(), "Z");
    }

    #[test]
    fn relabel_requires_params() {
        let reg = registry::standard();
        let mut ctx = ctx();
        assert!(reg
            .call("relabel_nodes", &mut ctx, Value::Unit, &ApiCall::new("x"))
            .is_err());
    }

    #[test]
    fn export_emits_parseable_edge_list() {
        let reg = registry::standard();
        let mut ctx = ctx();
        let out = reg
            .call("export_graph", &mut ctx, Value::Unit, &ApiCall::new("x"))
            .unwrap();
        let text = out.as_text().unwrap();
        let parsed = chatgraph_graph::io::parse_edge_list(text).unwrap();
        assert_eq!(parsed.node_count(), 3);
        assert_eq!(parsed.edge_count(), 1);
    }
}
