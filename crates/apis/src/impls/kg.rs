//! Knowledge-graph inference APIs (demo scenario 3: graph cleaning).
//!
//! "ChatGraph first invokes the knowledge inference APIs to detect the
//! incorrect edges and the missing edges in G and asks the user for
//! confirmation. After that, the graph edit APIs are invoked to edit the
//! edges in G."
//!
//! Inference exploits the fixed relation schema of the KG generator:
//! type checking (domain/range per relation) finds schema violations, and the
//! composition rule `nationality = located_in ∘ lives_in` both falsifies
//! existing `nationality` facts and derives missing ones.

use super::input_graph;
use crate::descriptor::{ApiCategory, ApiDescriptor};
use crate::registry::ApiRegistry;
use crate::value::{Value, ValueType};
use chatgraph_graph::generators::RELATION_SCHEMA;
use chatgraph_graph::{Graph, NodeId};
use std::collections::HashMap;

/// Edges violating the relation schema (wrong domain or range type), as
/// `(src, dst, relation)`.
pub fn schema_violations(g: &Graph) -> Vec<(NodeId, NodeId, String)> {
    let schema: HashMap<&str, (&str, &str)> = RELATION_SCHEMA
        .iter()
        .map(|&(r, d, rng)| (r, (d, rng)))
        .collect();
    let mut out = Vec::new();
    for e in g.edge_ids() {
        let Ok(rel) = g.edge_label(e) else { continue };
        let Ok((src, dst)) = g.edge_endpoints(e) else { continue };
        match schema.get(rel) {
            Some(&(dom, rng)) => {
                if !g.node_label(src).is_ok_and(|l| l == dom)
                    || !g.node_label(dst).is_ok_and(|l| l == rng)
                {
                    out.push((src, dst, rel.to_owned()));
                }
            }
            None => out.push((src, dst, rel.to_owned())),
        }
    }
    out
}

/// The `nationality` facts derivable from the composition rule, per person:
/// `person → country of the city the person lives in`.
fn derived_nationalities(g: &Graph) -> HashMap<NodeId, NodeId> {
    let mut lives_in: HashMap<NodeId, NodeId> = HashMap::new();
    let mut located_in: HashMap<NodeId, NodeId> = HashMap::new();
    for e in g.edge_ids() {
        let Ok((s, d)) = g.edge_endpoints(e) else { continue };
        match g.edge_label(e) {
            Ok("lives_in") => {
                lives_in.insert(s, d);
            }
            Ok("located_in") => {
                located_in.insert(s, d);
            }
            _ => {}
        }
    }
    lives_in
        .into_iter()
        .filter_map(|(p, city)| located_in.get(&city).map(|&country| (p, country)))
        .collect()
}

/// Incorrect edges: schema violations plus `nationality` facts contradicted
/// by the composition rule. Returned as edges to *remove*.
pub fn incorrect_edges(g: &Graph) -> Vec<(NodeId, NodeId, String)> {
    let mut out = schema_violations(g);
    let derived = derived_nationalities(g);
    for e in g.edge_ids() {
        if !g.edge_label(e).is_ok_and(|l| l == "nationality") {
            continue;
        }
        let Ok((p, country)) = g.edge_endpoints(e) else { continue };
        if let Some(&expected) = derived.get(&p) {
            if expected != country {
                out.push((p, country, "nationality".to_owned()));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Missing edges: derivable `nationality` facts absent from the graph.
/// Returned as edges to *add*.
pub fn missing_edges(g: &Graph) -> Vec<(NodeId, NodeId, String)> {
    let derived = derived_nationalities(g);
    let mut out: Vec<(NodeId, NodeId, String)> = derived
        .into_iter()
        .filter(|&(p, country)| {
            !g.neighbors(p)
                .any(|(d, e)| d == country && g.edge_label(e).is_ok_and(|l| l == "nationality"))
        })
        .map(|(p, c)| (p, c, "nationality".to_owned()))
        .collect();
    out.sort();
    out
}

/// Registers the knowledge-inference APIs.
pub fn register(reg: &mut ApiRegistry) {
    use ApiCategory::Knowledge;
    use ValueType::*;

    reg.register(
        ApiDescriptor::new(
            "validate_schema",
            "validate every relation edge of the knowledge graph against the schema and list violations",
            Knowledge, Graph, Table,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let violations = schema_violations(&g);
            let mut t = crate::value::Table::new(["src", "relation", "dst"]);
            for (s, d, rel) in violations {
                t.push_row([s.to_string(), rel, d.to_string()]);
            }
            Ok(Value::Table(t))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "detect_incorrect_edges",
            "detect incorrect or noisy fact edges in the knowledge graph that should be removed",
            Knowledge, Graph, EdgeList,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            Ok(Value::EdgeList(incorrect_edges(&g)))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "detect_missing_edges",
            "infer missing fact edges of the knowledge graph that should be added",
            Knowledge, Graph, EdgeList,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            Ok(Value::EdgeList(missing_edges(&g)))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "kg_statistics",
            "summarise the knowledge graph by counting entities and facts per type and relation",
            Knowledge, Graph, Table,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let mut t = crate::value::Table::new(["kind", "name", "count"]);
            for (label, n) in g.label_histogram() {
                t.push_row(["entity".to_owned(), label, n.to_string()]);
            }
            let mut rels: std::collections::BTreeMap<String, usize> = Default::default();
            for e in g.edge_ids() {
                if let Ok(rel) = g.edge_label(e) {
                    *rels.entry(rel.to_owned()).or_default() += 1;
                }
            }
            for (rel, n) in rels {
                t.push_row(["relation".to_owned(), rel, n.to_string()]);
            }
            Ok(Value::Table(t))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatgraph_graph::generators::{corrupt_kg, knowledge_graph, KgParams};

    #[test]
    fn clean_kg_has_no_findings() {
        let g = knowledge_graph(&KgParams::default(), 11);
        assert!(schema_violations(&g).is_empty());
        assert!(incorrect_edges(&g).is_empty());
        assert!(missing_edges(&g).is_empty());
    }

    #[test]
    fn detects_exactly_the_injected_corruption() {
        let mut g = knowledge_graph(&KgParams::default(), 11);
        let truth = corrupt_kg(&mut g, 0.10, 0.08, 11);

        let detected_wrong = incorrect_edges(&g);
        let detected_missing = missing_edges(&g);

        // Every injected wrong edge is detected.
        for (s, d, rel) in &truth.injected_wrong {
            assert!(
                detected_wrong.iter().any(|(a, b, r)| a == s && b == d && r == rel),
                "missed injected wrong edge ({s}, {d})"
            );
        }
        // Every removed fact is re-derived.
        for (s, d, rel) in &truth.removed {
            assert!(
                detected_missing.iter().any(|(a, b, r)| a == s && b == d && r == rel),
                "failed to re-derive removed edge ({s}, {d})"
            );
        }
        // No false positives: detection counts match the ground truth.
        assert_eq!(detected_wrong.len(), truth.injected_wrong.len());
        assert_eq!(detected_missing.len(), truth.removed.len());
    }

    #[test]
    fn schema_violation_detection() {
        let mut g = knowledge_graph(&KgParams::default(), 2);
        // Add a lives_in edge pointing at a Country (wrong range type).
        let person = g
            .node_ids()
            .find(|&v| g.node_label(v).unwrap() == "Person")
            .unwrap();
        let country = g
            .node_ids()
            .find(|&v| g.node_label(v).unwrap() == "Country")
            .unwrap();
        // Remove the existing lives_in first to keep one per person.
        let e = g
            .neighbors(person)
            .find(|&(_, e)| g.edge_label(e).unwrap() == "lives_in")
            .map(|(_, e)| e)
            .unwrap();
        g.remove_edge(e).unwrap();
        g.add_edge(person, country, "lives_in").unwrap();
        let v = schema_violations(&g);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, person);
        // The broken lives_in also surfaces through incorrect_edges.
        assert!(incorrect_edges(&g).contains(&(person, country, "lives_in".to_owned())));
    }

    #[test]
    fn unknown_relation_is_flagged() {
        let mut g = knowledge_graph(&KgParams { persons: 3, ..KgParams::default() }, 5);
        let a = g.node_ids().next().unwrap();
        let b = g.node_ids().nth(1).unwrap();
        g.add_edge(a, b, "frobnicates").unwrap();
        assert!(schema_violations(&g)
            .iter()
            .any(|(_, _, r)| r == "frobnicates"));
    }
}
