//! Graph comparison / similarity-search APIs (demo scenario 2).
//!
//! "What molecules are similar to G" → GED-based search over the molecule
//! database attached to the execution context; the paper's Fig. 5 outputs the
//! top-2 similar molecules.

use super::input_graph;
use crate::descriptor::{ApiCategory, ApiDescriptor};
use crate::registry::ApiRegistry;
use crate::value::{Value, ValueType};
use chatgraph_analyzer::chain::ParamSpec;
use chatgraph_ged::{approx_ged, exact_ged_with_limit, CostModel};
use chatgraph_graph::algo::isomorphism::{find_embeddings, IsoOptions};
use chatgraph_graph::{io, Graph};

/// Scores the database against `query`, returning `(index, distance)`
/// ascending. Distance is the bipartite GED upper bound normalised by the
/// combined size, so different-sized molecules are comparable.
///
/// Standalone entry point: sizes the thread pool from the machine. API
/// handlers go through [`rank_database_with`] so the worker count follows
/// the scheduler's kernel policy and the query size comes from the
/// epoch-cached CSR snapshot.
pub fn rank_database(query: &Graph, database: &[Graph]) -> Vec<(usize, f64)> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    rank_database_with(query, query.node_count(), workers, database)
}

/// [`rank_database`] with the per-candidate loop invariants hoisted:
/// `query_n` is the query's live node count (handlers read it from the
/// cached CSR) and `workers` bounds the scoring threads (handlers pass the
/// kernel policy's worker count, which the scheduler clamps to 1 inside
/// parallel segments so the pool is never oversubscribed).
///
/// GED per candidate is independent work, so the database is scored on
/// `std::thread::scope` threads; results are deterministic regardless of
/// thread count.
pub fn rank_database_with(
    query: &Graph,
    query_n: usize,
    workers: usize,
    database: &[Graph],
) -> Vec<(usize, f64)> {
    let cost = CostModel::uniform();
    let threads = workers.max(1).min(database.len().max(1));
    let chunk = database.len().div_ceil(threads.max(1)).max(1);
    let mut scored: Vec<(usize, f64)> = Vec::with_capacity(database.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = database
            .chunks(chunk)
            .enumerate()
            .map(|(ci, graphs)| {
                let cost = &cost;
                scope.spawn(move || {
                    graphs
                        .iter()
                        .enumerate()
                        .map(|(j, g)| {
                            let i = ci * chunk + j;
                            let ged = approx_ged(query, g, cost).upper_bound;
                            let norm = (query_n + g.node_count()).max(1) as f64;
                            (i, ged / norm)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => scored.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    scored
}

/// Registers the similarity APIs.
pub fn register(reg: &mut ApiRegistry) {
    use ApiCategory::Similarity;
    use ValueType::*;

    reg.register(
        ApiDescriptor::new(
            "similarity_search",
            "search the molecule database for the graphs most similar to the query graph",
            Similarity, Graph, Table,
        )
        .with_params([ParamSpec::int("k", 1, 100, 2)]),
        Box::new(|ctx, input, call| {
            let g = input_graph(input, ctx);
            if ctx.database.is_empty() {
                return Err("similarity_search requires a graph database in the context".into());
            }
            let k = call.try_param_usize("k", 2)?;
            let csr = ctx.kernels.csr(&g);
            let workers = ctx.kernels.policy.workers;
            let ranked = ctx.kernels.time("ged_rank", || {
                rank_database_with(&g, csr.n(), workers, &ctx.database)
            });
            let mut t = crate::value::Table::new(["rank", "graph", "nodes", "normalised GED"]);
            for (rank, (i, d)) in ranked.into_iter().take(k).enumerate() {
                t.push_row([
                    (rank + 1).to_string(),
                    ctx.database[i].name().to_owned(),
                    ctx.database[i].node_count().to_string(),
                    format!("{d:.4}"),
                ]);
            }
            Ok(Value::Table(t))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "most_similar_graph",
            "retrieve the single most similar graph from the database as a graph",
            Similarity, Graph, Graph,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            if ctx.database.is_empty() {
                return Err("most_similar_graph requires a graph database in the context".into());
            }
            let csr = ctx.kernels.csr(&g);
            let workers = ctx.kernels.policy.workers;
            let best = ctx.kernels.time("ged_rank", || {
                rank_database_with(&g, csr.n(), workers, &ctx.database)
            })[0]
                .0;
            Ok(Value::Graph(std::sync::Arc::new(ctx.database[best].clone())))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "graph_edit_distance",
            "compute the graph edit distance between the query graph and a database graph",
            Similarity, Graph, Number,
        )
        .with_params([ParamSpec::int("target", 0, 9999, 0)]),
        Box::new(|ctx, input, call| {
            let g = input_graph(input, ctx);
            let target = call.try_param_usize("target", 0)?;
            let other = ctx
                .database
                .get(target)
                .ok_or_else(|| format!("database has no graph at index {target}"))?;
            Ok(Value::Number(
                approx_ged(&g, other, &CostModel::uniform()).upper_bound,
            ))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "graph_edit_distance_exact",
            "compute the exact graph edit distance to a database graph for small molecules",
            Similarity, Graph, Number,
        )
        .with_params([
            ParamSpec::int("target", 0, 9999, 0),
            ParamSpec::int("budget", 1, 100_000_000, 200_000),
        ]),
        Box::new(|ctx, input, call| {
            let g = input_graph(input, ctx);
            let target = call.try_param_usize("target", 0)?;
            let budget = call.try_param_usize("budget", 200_000)?;
            let other = ctx
                .database
                .get(target)
                .ok_or_else(|| format!("database has no graph at index {target}"))?;
            exact_ged_with_limit(&g, other, &CostModel::uniform(), budget)
                .map(Value::Number)
                .ok_or_else(|| {
                    "exact GED exceeded its search budget; use graph_edit_distance instead".into()
                })
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "count_pattern_matches",
            "count occurrences of a structural pattern subgraph inside the graph",
            Similarity, Graph, Number,
        )
        .with_params([ParamSpec::text("pattern")]),
        Box::new(|ctx, input, call| {
            let g = input_graph(input, ctx);
            let pattern_text = call
                .params
                .get("pattern")
                .ok_or("count_pattern_matches requires a 'pattern' parameter (edge-list text)")?;
            let pattern = io::parse_edge_list(&pattern_text.replace(';', "\n"))
                .map_err(|e| format!("bad pattern: {e}"))?;
            let embeddings = find_embeddings(&pattern, &g, &IsoOptions::default());
            Ok(Value::Number(embeddings.len() as f64))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ApiCall;
    use crate::executor::ExecContext;
    use crate::registry;
    use chatgraph_graph::generators::{molecule, molecule_database, MoleculeParams};

    fn db_ctx() -> ExecContext {
        let db = molecule_database(20, &MoleculeParams::default(), 77);
        // Query: an exact copy of db molecule 7, so rank 1 is known.
        let query = db[7].clone();
        ExecContext::new(query).with_database(db)
    }

    #[test]
    fn identical_molecule_ranks_first() {
        let reg = registry::standard();
        let mut ctx = db_ctx();
        let out = reg
            .call(
                "similarity_search",
                &mut ctx,
                Value::Unit,
                &ApiCall::new("similarity_search").with_param("k", "2"),
            )
            .unwrap();
        let t = out.as_table().unwrap();
        assert_eq!(t.rows.len(), 2, "paper's Fig. 5 outputs the top two");
        assert_eq!(t.rows[0][1], "db-mol-7");
        assert_eq!(t.rows[0][3], "0.0000");
    }

    #[test]
    fn most_similar_graph_returns_graph() {
        let reg = registry::standard();
        let mut ctx = db_ctx();
        let out = reg
            .call("most_similar_graph", &mut ctx, Value::Unit, &ApiCall::new("x"))
            .unwrap();
        match out {
            Value::Graph(g) => assert_eq!(g.name(), "db-mol-7"),
            other => panic!("expected graph, got {other:?}"),
        }
    }

    #[test]
    fn empty_database_is_an_error() {
        let reg = registry::standard();
        let mut ctx = ExecContext::new(molecule(&MoleculeParams::default(), 1));
        let err = reg
            .call("similarity_search", &mut ctx, Value::Unit, &ApiCall::new("x"))
            .unwrap_err();
        assert!(err.contains("database"));
    }

    #[test]
    fn ged_to_self_is_zero() {
        let reg = registry::standard();
        let mut ctx = db_ctx();
        let out = reg
            .call(
                "graph_edit_distance",
                &mut ctx,
                Value::Unit,
                &ApiCall::new("x").with_param("target", "7"),
            )
            .unwrap();
        assert_eq!(out.as_number(), Some(0.0));
    }

    #[test]
    fn ged_out_of_range_target_errors() {
        let reg = registry::standard();
        let mut ctx = db_ctx();
        let err = reg
            .call(
                "graph_edit_distance",
                &mut ctx,
                Value::Unit,
                &ApiCall::new("x").with_param("target", "999"),
            )
            .unwrap_err();
        assert!(err.contains("999"));
    }

    #[test]
    fn exact_ged_matches_approx_on_identity() {
        let reg = registry::standard();
        let mut ctx = db_ctx();
        let out = reg
            .call(
                "graph_edit_distance_exact",
                &mut ctx,
                Value::Unit,
                &ApiCall::new("x").with_param("target", "7"),
            )
            .unwrap();
        assert_eq!(out.as_number(), Some(0.0));
    }

    #[test]
    fn exact_ged_budget_exhaustion_is_an_error() {
        let reg = registry::standard();
        let mut ctx = db_ctx();
        let err = reg
            .call(
                "graph_edit_distance_exact",
                &mut ctx,
                Value::Unit,
                &ApiCall::new("x").with_param("target", "3").with_param("budget", "1"),
            )
            .unwrap_err();
        assert!(err.contains("budget"));
    }

    #[test]
    fn pattern_matching_counts_embeddings() {
        let reg = registry::standard();
        let g = chatgraph_graph::GraphBuilder::undirected()
            .node("a", "C").node("b", "O").node("c", "C")
            .edge("a", "b", "single")
            .edge("b", "c", "single")
            .build();
        let mut ctx = ExecContext::new(g);
        let out = reg
            .call(
                "count_pattern_matches",
                &mut ctx,
                Value::Unit,
                &ApiCall::new("x").with_param("pattern", "node 0 C;node 1 O;edge 0 1 b"),
            )
            .unwrap();
        assert_eq!(out.as_number(), Some(2.0));
    }

    #[test]
    fn missing_pattern_param_errors() {
        let reg = registry::standard();
        let mut ctx = db_ctx();
        let err = reg
            .call("count_pattern_matches", &mut ctx, Value::Unit, &ApiCall::new("x"))
            .unwrap_err();
        assert!(err.contains("pattern"));
    }

    #[test]
    fn parallel_ranking_matches_sequential_reference() {
        let db = molecule_database(23, &MoleculeParams::default(), 5);
        let q = molecule(&MoleculeParams::default(), 61);
        let parallel = rank_database(&q, &db);
        // Sequential reference computed inline.
        let cost = chatgraph_ged::CostModel::uniform();
        let mut reference: Vec<(usize, f64)> = db
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let ged = chatgraph_ged::approx_ged(&q, g, &cost).upper_bound;
                (i, ged / (q.node_count() + g.node_count()).max(1) as f64)
            })
            .collect();
        reference.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        assert_eq!(parallel, reference);
    }

    #[test]
    fn ranking_is_size_normalised() {
        // A tiny query should not automatically rank tiny DB graphs first on
        // raw GED alone; normalisation keeps scores in [0, 1]-ish range.
        let db = molecule_database(10, &MoleculeParams::default(), 3);
        let q = molecule(&MoleculeParams { atoms: 8, rings: 1, double_bond_prob: 0.1 }, 99);
        for (_, d) in rank_database(&q, &db) {
            // Nodes are normalised away; edges can push the ratio above 1,
            // but it stays bounded by the max edges-per-node of molecules.
            assert!((0.0..=3.0).contains(&d), "normalised distance out of range: {d}");
        }
    }
}
