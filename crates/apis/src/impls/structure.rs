//! Generic structural-analysis APIs.

use super::input_graph;
use crate::descriptor::{ApiCategory, ApiDescriptor};
use crate::registry::ApiRegistry;
use crate::value::{Value, ValueType};
use chatgraph_graph::algo::kcore;
use chatgraph_graph::generators::RELATION_SCHEMA;
use chatgraph_graph::kernels;
use chatgraph_graph::Graph;

/// Heavy-atom element symbols recognised by the molecule classifier.
const ELEMENT_SYMBOLS: &[&str] = &["C", "N", "O", "S", "P", "H", "F", "Cl", "Br"];

/// Predicts the domain of a graph: `social`, `molecule`, `knowledge`, or
/// `generic`. This is the router of demo scenario 1 ("ChatGraph first
/// predicts the type of G").
pub fn predict_type(g: &Graph) -> &'static str {
    let hist = g.label_histogram();
    if hist.is_empty() {
        return "generic";
    }
    let kg_relations: std::collections::HashSet<&str> =
        RELATION_SCHEMA.iter().map(|r| r.0).collect();
    let has_kg_edges = g
        .edge_ids()
        .any(|e| g.edge_label(e).is_ok_and(|l| kg_relations.contains(l)));
    if g.is_directed() && has_kg_edges {
        return "knowledge";
    }
    if hist.iter().all(|(l, _)| ELEMENT_SYMBOLS.contains(&l.as_str())) {
        return "molecule";
    }
    if hist.iter().any(|(l, _)| l == "Person" || l == "User") {
        return "social";
    }
    "generic"
}

/// Registers the structure APIs.
pub fn register(reg: &mut ApiRegistry) {
    use ApiCategory::Structure;
    use ValueType::*;

    reg.register(
        ApiDescriptor::new(
            "predict_graph_type",
            "predict whether the uploaded graph is a social network, a chemical molecule, a knowledge graph, or generic",
            Structure, Graph, Text,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            Ok(Value::Text(predict_type(&g).to_owned()))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "graph_stats",
            "compute summary statistics of the graph: node and edge counts, density, degrees, components, triangles and clustering",
            Structure, Graph, Table,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let csr = ctx.kernels.csr(&g);
            let policy = ctx.kernels.policy.clone();
            let s = ctx
                .kernels
                .time("graph_stats", || kernels::graph_stats(&g, &csr, &policy));
            let mut t = crate::value::Table::new(["statistic", "value"]);
            t.push_row(["nodes", &s.nodes.to_string()]);
            t.push_row(["edges", &s.edges.to_string()]);
            t.push_row(["density", &format!("{:.4}", s.density)]);
            t.push_row(["min degree", &s.min_degree.to_string()]);
            t.push_row(["max degree", &s.max_degree.to_string()]);
            t.push_row(["avg degree", &format!("{:.2}", s.avg_degree)]);
            t.push_row(["components", &s.components.to_string()]);
            t.push_row(["largest component", &s.largest_component.to_string()]);
            t.push_row(["triangles", &s.triangles.to_string()]);
            t.push_row(["clustering", &format!("{:.4}", s.clustering)]);
            t.push_row(["distinct labels", &s.distinct_labels.to_string()]);
            Ok(Value::Table(t))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "node_count",
            "count the number of nodes or vertices in the graph",
            Structure, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            Ok(Value::Number(input_graph(input, ctx).node_count() as f64))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "edge_count",
            "count the number of edges or links in the graph",
            Structure, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            Ok(Value::Number(input_graph(input, ctx).edge_count() as f64))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "graph_density",
            "compute the edge density of the graph as a fraction of possible edges",
            Structure, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let csr = ctx.kernels.csr(&g);
            let (n, m) = (csr.n(), csr.m());
            let possible = if csr.is_directed() {
                n.saturating_mul(n.saturating_sub(1))
            } else {
                n.saturating_mul(n.saturating_sub(1)) / 2
            };
            Ok(Value::Number(if possible == 0 {
                0.0
            } else {
                m as f64 / possible as f64
            }))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "graph_diameter",
            "compute the diameter, the longest shortest path between any two nodes",
            Structure, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let csr = ctx.kernels.csr(&g);
            let policy = ctx.kernels.policy.clone();
            let d = ctx
                .kernels
                .time("diameter", || kernels::diameter(&csr, &policy));
            Ok(Value::Number(d.map(|d| d as f64).unwrap_or(f64::NAN)))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "average_path_length",
            "compute the average shortest path length between reachable node pairs",
            Structure, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let csr = ctx.kernels.csr(&g);
            let policy = ctx.kernels.policy.clone();
            let apl = ctx.kernels.time("average_path_length", || {
                kernels::average_path_length(&csr, &policy)
            });
            Ok(Value::Number(apl.unwrap_or(f64::NAN)))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "clustering_coefficient",
            "compute the global clustering coefficient or transitivity of the graph",
            Structure, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let csr = ctx.kernels.csr(&g);
            let policy = ctx.kernels.policy.clone();
            Ok(Value::Number(ctx.kernels.time("clustering", || {
                kernels::global_clustering_coefficient(&csr, &policy)
            })))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "triangle_count",
            "count the number of triangles in the graph",
            Structure, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let csr = ctx.kernels.csr(&g);
            let policy = ctx.kernels.policy.clone();
            Ok(Value::Number(ctx.kernels.time("triangle_count", || {
                kernels::triangle_count(&csr, &policy) as f64
            })))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "connected_components",
            "count the connected components of the graph",
            Structure, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let csr = ctx.kernels.csr(&g);
            let policy = ctx.kernels.policy.clone();
            Ok(Value::Number(ctx.kernels.time("components", || {
                kernels::connected_components(&csr, &policy).count as f64
            })))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "is_connected",
            "check whether the graph is connected so every node can reach every other",
            Structure, Graph, Bool,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let csr = ctx.kernels.csr(&g);
            let policy = ctx.kernels.policy.clone();
            Ok(Value::Bool(ctx.kernels.time("components", || {
                kernels::is_connected(&csr, &policy)
            })))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "largest_component",
            "extract the largest connected component as a new graph",
            Structure, Graph, Graph,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let csr = ctx.kernels.csr(&g);
            let policy = ctx.kernels.policy.clone();
            let cc = ctx.kernels.time("components", || {
                kernels::connected_components(&csr, &policy)
            });
            let largest = cc
                .groups()
                .into_iter()
                .max_by_key(|grp| grp.len())
                .unwrap_or_default();
            let (sub, _) = g.induced_subgraph(&largest);
            Ok(Value::Graph(std::sync::Arc::new(sub)))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "degree_histogram",
            "compute the degree distribution histogram of the graph",
            Structure, Graph, Table,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let h = kernels::degree_histogram(&ctx.kernels.csr(&g));
            let mut t = crate::value::Table::new(["degree", "nodes"]);
            for (d, c) in h.iter().enumerate().filter(|(_, c)| **c > 0) {
                t.push_row([d.to_string(), c.to_string()]);
            }
            Ok(Value::Table(t))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "kcore_decomposition",
            "compute the k-core decomposition assigning each node its core number",
            Structure, Graph, Table,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let cores = kcore::core_numbers(&g);
            let mut counts: std::collections::BTreeMap<usize, usize> = Default::default();
            for c in cores.into_iter().flatten() {
                *counts.entry(c).or_default() += 1;
            }
            let mut t = crate::value::Table::new(["core", "nodes"]);
            for (k, c) in counts {
                t.push_row([k.to_string(), c.to_string()]);
            }
            Ok(Value::Table(t))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "graph_degeneracy",
            "compute the degeneracy, the maximum core number of the graph",
            Structure, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            Ok(Value::Number(kcore::degeneracy(&g) as f64))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ApiCall;
    use crate::executor::ExecContext;
    use crate::registry;
    use chatgraph_graph::generators::{
        knowledge_graph, molecule, social_network, KgParams, MoleculeParams, SocialParams,
    };
    use chatgraph_graph::GraphBuilder;

    fn call(reg: &registry::ApiRegistry, name: &str, g: Graph) -> Value {
        let mut ctx = ExecContext::new(g);
        reg.call(name, &mut ctx, Value::Unit, &ApiCall::new(name)).unwrap()
    }

    #[test]
    fn classifier_recognises_all_families() {
        assert_eq!(
            predict_type(&molecule(&MoleculeParams::default(), 1)),
            "molecule"
        );
        assert_eq!(
            predict_type(&social_network(&SocialParams::default(), 1)),
            "social"
        );
        assert_eq!(
            predict_type(&knowledge_graph(&KgParams::default(), 1)),
            "knowledge"
        );
        let generic = GraphBuilder::undirected().edge("x", "y", "-").build();
        assert_eq!(predict_type(&generic), "generic");
        assert_eq!(predict_type(&Graph::undirected()), "generic");
    }

    #[test]
    fn counts_and_flags() {
        let reg = registry::standard();
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .build();
        assert_eq!(call(&reg, "node_count", g.clone()).as_number(), Some(3.0));
        assert_eq!(call(&reg, "edge_count", g.clone()).as_number(), Some(2.0));
        assert_eq!(call(&reg, "graph_diameter", g.clone()).as_number(), Some(2.0));
        assert_eq!(call(&reg, "triangle_count", g.clone()).as_number(), Some(0.0));
        assert_eq!(call(&reg, "is_connected", g.clone()), Value::Bool(true));
        assert_eq!(call(&reg, "graph_degeneracy", g).as_number(), Some(1.0));
    }

    #[test]
    fn stats_table_contains_all_rows() {
        let reg = registry::standard();
        let g = social_network(&SocialParams::default(), 2);
        let t = call(&reg, "graph_stats", g);
        let t = t.as_table().unwrap();
        assert_eq!(t.rows.len(), 11);
        assert_eq!(t.headers, vec!["statistic", "value"]);
    }

    #[test]
    fn largest_component_extraction() {
        let reg = registry::standard();
        let g = GraphBuilder::undirected()
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("x", "y", "-")
            .build();
        let out = call(&reg, "largest_component", g);
        match out {
            Value::Graph(sub) => assert_eq!(sub.node_count(), 3),
            other => panic!("expected graph, got {other:?}"),
        }
    }

    #[test]
    fn empty_graph_diameter_is_nan() {
        let reg = registry::standard();
        let out = call(&reg, "graph_diameter", Graph::undirected());
        assert!(out.as_number().unwrap().is_nan());
    }

    #[test]
    fn degree_histogram_skips_empty_bins() {
        let reg = registry::standard();
        let g = GraphBuilder::undirected()
            .edge("c", "a", "-")
            .edge("c", "b", "-")
            .build();
        let out = call(&reg, "degree_histogram", g);
        let t = out.as_table().unwrap();
        // degrees present: 1 (two nodes) and 2 (one node); no 0 row
        assert_eq!(t.rows.len(), 2);
    }
}
