//! Concrete API implementations, grouped by category.

pub mod edit;
pub mod kg;
pub mod molecule;
pub mod report;
pub mod similarity;
pub mod social;
pub mod structure;

use crate::executor::ExecContext;
use crate::registry::ApiRegistry;
use crate::value::Value;
use chatgraph_graph::Graph;
use std::sync::Arc;

/// Registers the full standard catalogue.
pub fn register_all(reg: &mut ApiRegistry) {
    structure::register(reg);
    social::register(reg);
    molecule::register(reg);
    similarity::register(reg);
    kg::register(reg);
    edit::register(reg);
    report::register(reg);
}

/// Resolves the graph an API should analyse: the piped-in graph when the
/// previous step produced one, otherwise the session graph. Returns a
/// shared handle — handlers read through it (auto-deref), nothing is
/// deep-copied.
pub(crate) fn input_graph(input: Value, ctx: &ExecContext) -> Arc<Graph> {
    match input {
        Value::Graph(g) => g,
        _ => Arc::clone(&ctx.graph),
    }
}
