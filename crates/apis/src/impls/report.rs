//! Report-generation APIs (the tail of most chains).
//!
//! Scenario 1 ends with "a report is generated based on the results of the
//! APIs": `generate_report` folds every finding recorded by the executor into
//! a multi-section [`crate::value::Report`].

use crate::descriptor::{ApiCategory, ApiDescriptor};
use crate::registry::ApiRegistry;
use crate::value::{Report, Value, ValueType};

fn render_finding(api: &str, value: &Value) -> (String, String) {
    let heading = api.replace('_', " ");
    let body = match value {
        Value::Table(t) => t.to_text(),
        Value::Report(r) => r.to_text(),
        Value::Text(t) => t.clone(),
        other => other.summary(),
    };
    (heading, body)
}

/// Registers the report APIs.
pub fn register(reg: &mut ApiRegistry) {
    use ApiCategory::Report as ReportCat;
    use ValueType::*;

    reg.register(
        ApiDescriptor::new(
            "generate_report",
            "write a brief report combining all analysis results gathered so far",
            ReportCat, Any, Report,
        ),
        Box::new(|ctx, _input, _| {
            let mut report = crate::value::Report::new(format!(
                "Report for graph '{}'",
                ctx.graph.name()
            ));
            report.add_section(
                "Overview",
                format!(
                    "The graph has {} nodes and {} edges.",
                    ctx.graph.node_count(),
                    ctx.graph.edge_count()
                ),
            );
            for (api, value) in ctx
                .findings
                .iter()
                .filter(|(api, _)| api != "generate_report")
            {
                let (heading, body) = render_finding(api, value);
                report.add_section(heading, body);
            }
            Ok(Value::Report(report))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "summarize_result",
            "summarise the previous analysis result in one short sentence of text",
            ReportCat, Any, Text,
        ),
        Box::new(|ctx, input, _| {
            let text = match (&input, ctx.findings.last()) {
                (Value::Unit, Some((api, v))) => {
                    format!("{}: {}", api.replace('_', " "), v.summary())
                }
                _ => input.summary(),
            };
            Ok(Value::Text(text))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "list_findings",
            "list every api invoked so far together with a summary of its output",
            ReportCat, Any, Table,
        ),
        Box::new(|ctx, _input, _| {
            let mut t = crate::value::Table::new(["step", "api", "result"]);
            for (i, (api, v)) in ctx.findings.iter().enumerate() {
                t.push_row([(i + 1).to_string(), api.clone(), v.summary()]);
            }
            Ok(Value::Table(t))
        }),
    );
}

/// Renders a [`Report`] for the chat transcript (helper shared with the core
/// crate's session layer).
pub fn render_report(report: &Report) -> String {
    report.to_text()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{ApiCall, ApiChain};
    use crate::executor::{execute_chain, ExecContext};
    use crate::monitor::SilentMonitor;
    use crate::registry;
    use chatgraph_graph::generators::{social_network, SocialParams};

    #[test]
    fn report_collects_all_findings() {
        let reg = registry::standard();
        let chain = ApiChain::from_names([
            "node_count",
            "detect_communities",
            "connectivity_report",
            "generate_report",
        ]);
        let mut ctx = ExecContext::new(social_network(&SocialParams::default(), 3));
        let out = execute_chain(&reg, &chain, &mut ctx, &mut SilentMonitor).unwrap();
        let report = out.as_report().unwrap();
        // Overview + 3 findings (generate_report excludes itself).
        assert_eq!(report.sections.len(), 4);
        let text = report.to_text();
        assert!(text.contains("## node count"));
        assert!(text.contains("## detect communities"));
        assert!(text.contains("nodes and"));
    }

    #[test]
    fn summarize_uses_last_finding_when_input_is_unit() {
        let reg = registry::standard();
        let mut ctx = ExecContext::new(social_network(&SocialParams::default(), 3));
        ctx.findings.push(("node_count".into(), Value::Number(120.0)));
        let out = reg
            .call("summarize_result", &mut ctx, Value::Unit, &ApiCall::new("x"))
            .unwrap();
        assert_eq!(out.as_text(), Some("node count: 120.0000"));
    }

    #[test]
    fn summarize_prefers_piped_input() {
        let reg = registry::standard();
        let mut ctx = ExecContext::new(social_network(&SocialParams::default(), 3));
        let out = reg
            .call(
                "summarize_result",
                &mut ctx,
                Value::Text("hello".into()),
                &ApiCall::new("x"),
            )
            .unwrap();
        assert_eq!(out.as_text(), Some("hello"));
    }

    #[test]
    fn list_findings_numbers_steps() {
        let reg = registry::standard();
        let chain = ApiChain::from_names(["node_count", "edge_count", "list_findings"]);
        let mut ctx = ExecContext::new(social_network(&SocialParams::default(), 3));
        let out = execute_chain(&reg, &chain, &mut ctx, &mut SilentMonitor).unwrap();
        let t = out.as_table().unwrap();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "1");
        assert_eq!(t.rows[0][1], "node_count");
    }
}
